"""Tests for the convergence-curve aggregation."""

import pytest

from repro.experiments.convergence import ConvergenceCurve, convergence_curves
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark


@pytest.fixture(scope="module")
def curves():
    queries = generate_benchmark(
        DEFAULT_SPEC, n_values=(10,), queries_per_n=3, seed=2
    )
    return convergence_curves(
        queries,
        methods=("IAI", "RANDOM"),
        max_factor=2.0,
        n_points=8,
        units_per_n2=5,
        seed=2,
    )


class TestConvergenceCurves:
    def test_one_curve_per_method(self, curves):
        assert set(curves) == {"IAI", "RANDOM"}

    def test_grid_shape(self, curves):
        curve = curves["IAI"]
        assert len(curve.factors) == 8
        assert curve.factors[-1] == pytest.approx(2.0)
        assert len(curve.mean_scaled) == 8

    def test_monotone_nonincreasing(self, curves):
        for curve in curves.values():
            values = curve.mean_scaled
            assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_final_at_least_one(self, curves):
        """The scaling base is the best across methods: minima is 1."""
        finals = [curve.final() for curve in curves.values()]
        assert min(finals) >= 1.0 - 1e-9

    def test_points_accessor(self, curves):
        points = curves["IAI"].points()
        assert points[0][0] == pytest.approx(2.0 / 8)

    def test_rejects_single_point(self):
        queries = generate_benchmark(
            DEFAULT_SPEC, n_values=(10,), queries_per_n=1, seed=2
        )
        with pytest.raises(ValueError):
            convergence_curves(queries, methods=("II",), n_points=1)

    def test_curve_type(self, curves):
        assert isinstance(curves["IAI"], ConvergenceCurve)


class TestOutlierCapConfig:
    def test_infinite_cap_allows_big_means(self):
        """Ablating the coercion rule lets extreme values through."""
        import math

        from repro.experiments.runner import ExperimentConfig, run_experiment

        queries = generate_benchmark(
            DEFAULT_SPEC, n_values=(10,), queries_per_n=3, seed=9
        )
        capped_config = ExperimentConfig(
            methods=("RANDOM",),
            time_factors=(0.5,),
            units_per_n2=5,
            replicates=1,
            seed=9,
            reference_methods=("IAI",),
        )
        uncapped_config = ExperimentConfig(
            methods=("RANDOM",),
            time_factors=(0.5,),
            units_per_n2=5,
            replicates=1,
            seed=9,
            reference_methods=("IAI",),
            outlier_cap=math.inf,
        )
        capped = run_experiment(queries, capped_config)
        uncapped = run_experiment(queries, uncapped_config)
        assert uncapped.at("RANDOM", 0.5) >= capped.at("RANDOM", 0.5)
        assert capped.at("RANDOM", 0.5) <= 10.0
