"""End-to-end integration tests across the whole stack.

Generate a query, optimize it with several methods, generate matching
data, execute the chosen plans, and cross-check measurements against
estimates and costs.
"""

import pytest

from repro import (
    DEFAULT_SPEC,
    DiskCostModel,
    MainMemoryCostModel,
    generate_query,
    optimize,
)
from repro.engine.datagen import generate_database
from repro.engine.executor import execute_order
from repro.plans.validity import is_valid_order


@pytest.fixture(scope="module")
def query():
    return generate_query(DEFAULT_SPEC, n_joins=10, seed=1234)


class TestOptimizeThenExecute:
    @pytest.mark.slow
    def test_optimized_plan_executes(self, query):
        result = optimize(query, method="IAI", time_factor=2, units_per_n2=10, seed=0)
        tables = generate_database(query.graph, seed=9, max_rows=300)
        execution = execute_order(result.order, query.graph, tables)
        assert execution.n_rows >= 0
        assert len(execution.intermediate_sizes) == query.n_joins

    @pytest.mark.slow
    def test_optimized_beats_pessimal_in_measured_work(self, query):
        """The optimizer's plan produces less measured intermediate volume
        than the worst augmentation start (sanity of the whole chain)."""
        graph = query.graph
        best = optimize(query, method="IAI", time_factor=3, units_per_n2=10, seed=0)
        from repro.core.augmentation import AugmentationCriterion, augment_order

        candidates = [
            augment_order(graph, first, AugmentationCriterion.MAX_DEGREE)
            for first in range(graph.n_relations)
        ]
        model = MainMemoryCostModel()
        worst = max(candidates, key=lambda o: model.plan_cost(o, graph))
        tables = generate_database(graph, seed=9, max_rows=200)
        measured_best = sum(
            execute_order(best.order, graph, tables).intermediate_sizes
        )
        measured_worst = sum(
            execute_order(worst, graph, tables).intermediate_sizes
        )
        assert measured_best <= measured_worst * 1.5

    def test_methods_agree_on_easy_query(self):
        """On a tiny query every serious method lands near the same cost."""
        query = generate_query(DEFAULT_SPEC, n_joins=4, seed=77)
        costs = {
            method: optimize(
                query, method=method, time_factor=9, units_per_n2=30, seed=0
            ).cost
            for method in ("II", "IAI", "AGI", "SA")
        }
        best = min(costs.values())
        assert all(cost <= best * 1.6 for cost in costs.values())


class TestCostModelSwap:
    def test_both_models_produce_valid_plans(self, query):
        for model in (MainMemoryCostModel(), DiskCostModel()):
            result = optimize(
                query, method="IAI", model=model, time_factor=2, units_per_n2=10
            )
            assert is_valid_order(result.order, query.graph)

    def test_models_price_with_their_own_units(self, query):
        memory = optimize(
            query, model=MainMemoryCostModel(), time_factor=2, units_per_n2=10
        )
        disk = optimize(
            query, model=DiskCostModel(), time_factor=2, units_per_n2=10
        )
        # The two models use different units; their costs should differ.
        assert memory.cost != pytest.approx(disk.cost)


class TestPublicApi:
    def test_quickstart_docstring_flow(self):
        import repro

        q = repro.generate_query(repro.DEFAULT_SPEC, n_joins=12, seed=7)
        result = repro.optimize(q, method="IAI", time_factor=1, units_per_n2=5, seed=1)
        assert result.cost > 0
        tree = result.join_tree()
        assert "hash join" in tree.explain()

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
