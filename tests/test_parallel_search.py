"""Differential determinism harness for ``repro.parallel``.

The orchestrator's contract: for any seed, ``workers=N`` returns an
``OptimizationResult`` that compares equal — plan, cost, budget spent,
evaluation count, trajectory — to ``workers=1``, including when worker
processes are killed mid-restart.  Every test here is differential: the
parallel run is checked against the serial run of the exact same
configuration, never against golden values.
"""

from __future__ import annotations

import math

import pytest

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.cli import main
from repro.core.budget import Budget
from repro.core.combinations import available_method_names, compare_methods
from repro.core.optimizer import optimize
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.parallel import (
    DEFAULT_RESTARTS,
    SharedBound,
    multi_start_optimize,
)
from repro.robustness.resilience import FailureLog
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query

MODELS = {"memory": MainMemoryCostModel, "disk": DiskCostModel}

#: Every registered method once ("AUG"/"KBZ" are aliases of AUG3/KBZ3).
ALL_METHODS = [
    name for name in available_method_names() if name not in ("AUG", "KBZ")
]


def _query(n_joins: int = 5, seed: int = 13):
    return generate_query(DEFAULT_SPEC, n_joins=n_joins, seed=seed)


def _two_component_graph() -> JoinGraph:
    relations = [Relation(f"R{i}", 50 * (i + 2)) for i in range(6)]
    predicates = [
        JoinPredicate(0, 1, 10, 12),
        JoinPredicate(1, 2, 8, 9),
        JoinPredicate(3, 4, 5, 6),
        JoinPredicate(4, 5, 7, 11),
    ]
    return JoinGraph(relations, predicates)


class TestBitIdentityAcrossWorkers:
    @pytest.mark.slow
    @pytest.mark.parametrize("model_name", sorted(MODELS))
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_method_under_both_models(self, model_name, method):
        query = _query(n_joins=5, seed=13)
        kwargs = dict(
            method=method,
            time_factor=1.0,
            seed=5,
            restarts=2,
        )
        serial = optimize(
            query, model=MODELS[model_name](), workers=1, **kwargs
        )
        parallel = optimize(
            query, model=MODELS[model_name](), workers=2, **kwargs
        )
        assert serial == parallel

    @pytest.mark.slow
    @pytest.mark.parametrize("graph_seed", range(20))
    def test_twenty_random_graphs(self, graph_seed):
        query = _query(n_joins=4 + graph_seed % 7, seed=100 + graph_seed)
        method = ("II", "IAI", "SA", "KBI")[graph_seed % 4]
        kwargs = dict(
            method=method, time_factor=1.5, seed=graph_seed, restarts=3
        )
        serial = optimize(query, workers=1, **kwargs)
        parallel = optimize(query, workers=4, **kwargs)
        assert serial == parallel

    def test_default_restart_count_is_worker_independent(self):
        # workers=4 with no explicit restart count must match workers=1:
        # the default is a constant, never derived from the worker count.
        query = _query(n_joins=5, seed=2)
        serial = optimize(query, method="II", seed=9, workers=1)
        parallel = optimize(query, method="II", seed=9, workers=4)
        assert serial == parallel
        assert DEFAULT_RESTARTS == 8

    def test_restarts_alone_triggers_orchestration(self):
        query = _query(n_joins=5, seed=2)
        orchestrated = optimize(query, method="II", seed=9, restarts=3)
        legacy = optimize(query, method="II", seed=9)
        parallel = optimize(query, method="II", seed=9, restarts=3, workers=2)
        assert orchestrated == parallel
        # The orchestrated path runs different (derived-seed) restarts
        # than the legacy single trajectory — it must not masquerade.
        assert orchestrated.n_evaluations != legacy.n_evaluations

    def test_per_join_accounting(self):
        query = _query(n_joins=6, seed=4)
        kwargs = dict(
            method="IAI",
            seed=11,
            time_factor=1.5,
            restarts=3,
            budget_accounting="per-join",
        )
        assert optimize(query, workers=1, **kwargs) == optimize(
            query, workers=3, **kwargs
        )

    def test_full_reference_evaluator(self):
        query = _query(n_joins=5, seed=6)
        kwargs = dict(
            method="II", seed=1, time_factor=1.0, restarts=2,
            incremental=False,
        )
        assert optimize(query, workers=1, **kwargs) == optimize(
            query, workers=2, **kwargs
        )

    def test_disconnected_graph(self):
        graph = _two_component_graph()
        kwargs = dict(method="II", seed=3, time_factor=1.5, restarts=3)
        assert optimize(graph, workers=1, **kwargs) == optimize(
            graph, workers=3, **kwargs
        )

    def test_explicit_budget_is_shared_deterministically(self):
        query = _query(n_joins=6, seed=8)
        results = []
        for workers in (1, 3):
            budget = Budget(limit=500.0)
            results.append(
                optimize(
                    query,
                    method="II",
                    seed=2,
                    budget=budget,
                    workers=workers,
                    restarts=4,
                )
            )
            assert budget.spent == results[-1].units_spent
        assert results[0] == results[1]

    def test_resilient_with_workers_rejected(self):
        with pytest.raises(ValueError, match="resilient"):
            optimize(_query(), resilient=True, workers=2)
        with pytest.raises(ValueError, match="resilient"):
            optimize(_query(), resilient=True, restarts=4)

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            optimize(_query(), workers=0)
        with pytest.raises(ValueError, match="restarts"):
            optimize(_query(), restarts=0)


class TestCrashRecovery:
    def test_crashed_worker_recovers_to_identical_result(self):
        query = _query(n_joins=6, seed=21)
        serial, serial_report = multi_start_optimize(
            query, method="II", seed=3, workers=1, restarts=4
        )
        crashed, crash_report = multi_start_optimize(
            query,
            method="II",
            seed=3,
            workers=3,
            restarts=4,
            crash_indices=(1,),
        )
        assert serial == crashed
        assert not serial_report.failures
        assert crash_report.failures
        assert all(
            failure.action == "re-executed serially in parent"
            for failure in crash_report.failures
        )
        assert serial_report.outcomes == crash_report.outcomes

    def test_multiple_crashes_still_identical(self):
        query = _query(n_joins=5, seed=30)
        clean, _ = multi_start_optimize(
            query, method="IAI", seed=7, workers=1, restarts=4
        )
        crashed, report = multi_start_optimize(
            query,
            method="IAI",
            seed=7,
            workers=2,
            restarts=4,
            crash_indices=(0, 3),
        )
        assert clean == crashed
        assert report.crashed

    def test_crash_hook_is_inert_outside_pool_workers(self):
        # With one worker nothing runs in a pool, so the injected crash
        # must not fire (the hook guards on the pool-worker flag).
        query = _query(n_joins=5, seed=30)
        clean, _ = multi_start_optimize(
            query, method="II", seed=1, workers=1, restarts=3
        )
        marked, report = multi_start_optimize(
            query,
            method="II",
            seed=1,
            workers=1,
            restarts=3,
            crash_indices=(0, 1, 2),
        )
        assert clean == marked
        assert not report.failures


class TestSharedBound:
    def test_monotone_min(self):
        bound = SharedBound()
        assert bound.get() == math.inf
        assert bound.publish(10.0)
        assert not bound.publish(12.0)
        assert bound.get() == 10.0
        assert bound.publish(3.5)
        assert bound.get() == 3.5

    def test_non_finite_publications_ignored(self):
        bound = SharedBound()
        assert not bound.publish(math.nan)
        assert not bound.publish(math.inf)
        assert bound.get() == math.inf
        bound.publish(1.0)
        assert not bound.publish(math.nan)
        assert bound.get() == 1.0

    def test_visible_across_processes(self):
        import multiprocessing as mp

        bound = SharedBound()
        context = mp.get_context("fork")
        process = context.Process(target=_publish_half, args=(bound.raw,))
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 0
        assert bound.get() == 0.5

    def test_report_tracks_global_best(self):
        query = _query(n_joins=6, seed=17)
        for workers in (1, 3):
            result, report = multi_start_optimize(
                query, method="II", seed=4, workers=workers, restarts=3
            )
            best_restart = min(
                (cost for _, cost, _ in report.outcomes if cost is not None),
                default=math.inf,
            )
            assert report.best_bound == min(report.prepass_cost, best_restart)
            assert result.cost == report.best_bound


class TestDeterministicMerge:
    def test_outcomes_reported_in_index_order(self):
        query = _query(n_joins=5, seed=9)
        _, report = multi_start_optimize(
            query, method="II", seed=6, workers=2, restarts=4
        )
        assert [index for index, _, _ in report.outcomes] == [0, 1, 2, 3]

    def test_winner_is_minimum_cost(self):
        query = _query(n_joins=6, seed=9)
        result, report = multi_start_optimize(
            query, method="SA", seed=6, workers=2, restarts=4
        )
        costs = [cost for _, cost, _ in report.outcomes if cost is not None]
        assert result.cost == min(costs + [report.prepass_cost])

    def test_trajectory_is_monotone_decreasing_envelope(self):
        query = _query(n_joins=6, seed=22)
        result = optimize(query, method="II", seed=5, workers=3, restarts=4)
        units = [u for u, _ in result.trajectory]
        costs = [c for _, c in result.trajectory]
        assert units == sorted(units)
        assert costs == sorted(costs, reverse=True)
        assert len(set(costs)) == len(costs)

    def test_deterministic_method_restarts_agree(self):
        # A deterministic heuristic gives every restart the same cost;
        # the tie must resolve to the lowest index, i.e. the merged
        # result equals the serial merge exactly.
        query = _query(n_joins=5, seed=3)
        serial, serial_report = multi_start_optimize(
            query, method="AUG3", seed=0, workers=1, restarts=3
        )
        parallel, parallel_report = multi_start_optimize(
            query, method="AUG3", seed=0, workers=3, restarts=3
        )
        assert serial == parallel
        restart_costs = {
            cost for _, cost, _ in serial_report.outcomes if cost is not None
        }
        assert len(restart_costs) == 1
        assert serial_report.outcomes == parallel_report.outcomes


class TestComparisonAndExperimentPaths:
    def test_compare_methods_parity(self):
        query = _query(n_joins=6, seed=11)
        kwargs = dict(methods=("II", "IAI", "KBZ3"), seed=2, time_factor=1.5)
        serial = compare_methods(query, **kwargs)
        log = FailureLog()
        parallel = compare_methods(
            query, workers=3, failure_log=log, **kwargs
        )
        assert serial == parallel
        assert not log

    def test_run_experiment_parity(self):
        from repro.experiments.runner import ExperimentConfig, run_experiment

        queries = [
            generate_query(DEFAULT_SPEC, n_joins=5, seed=s, name=f"q{s}")
            for s in (1, 2)
        ]
        config = ExperimentConfig(
            methods=("II", "KBZ3"), time_factors=(1.5,), replicates=2, seed=5
        )
        serial = run_experiment(queries, config)
        parallel = run_experiment(queries, config, workers=4)
        assert serial.mean_scaled == parallel.mean_scaled
        assert serial.per_query_scaled == parallel.per_query_scaled
        assert serial.outlier_counts == parallel.outlier_counts


class TestCLIWorkers:
    def _run(self, capsys, argv):
        code = main(argv)
        out = capsys.readouterr().out
        assert code == 0
        return out

    def test_optimize_output_identical_across_workers(self, capsys):
        base = [
            "optimize", "--joins", "5", "--seed", "3",
            "--time-factor", "1.5", "--restarts", "3",
        ]
        serial = self._run(capsys, base + ["--workers", "1"])
        parallel = self._run(capsys, base + ["--workers", "2"])
        assert serial == parallel

    def test_compare_output_identical_across_workers(self, capsys):
        base = [
            "compare", "--joins", "5", "--seed", "1",
            "--time-factor", "1.5", "--methods", "II", "KBZ3",
        ]
        serial = self._run(capsys, base + ["--workers", "1"])
        parallel = self._run(capsys, base + ["--workers", "2"])
        assert serial == parallel

    def test_sql_accepts_workers(self, tmp_path, capsys):
        catalog = tmp_path / "catalog.json"
        catalog.write_text(
            '{"tables": {'
            '"a": {"cardinality": 1000, "columns": {"x": {"distinct": 100}}},'
            '"b": {"cardinality": 2000, "columns": {"x": {"distinct": 200}}}'
            "}}"
        )
        base = [
            "sql", "SELECT * FROM a, b WHERE a.x = b.x",
            "--catalog", str(catalog), "--restarts", "2",
        ]
        serial = self._run(capsys, base + ["--workers", "1"])
        parallel = self._run(capsys, base + ["--workers", "2"])
        assert serial == parallel

    def test_resilient_workers_conflict_is_usage_error(self, capsys):
        code = main(
            ["optimize", "--joins", "5", "--workers", "2", "--resilient"]
        )
        assert code == 2
        assert "resilient" in capsys.readouterr().err


def _publish_half(raw_bound) -> None:
    SharedBound(raw_bound).publish(0.5)
