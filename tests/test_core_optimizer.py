"""Tests for the top-level optimize() entry point."""

import pytest

from repro.catalog.join_graph import Query
from repro.core.budget import Budget
from repro.core.optimizer import OptimizationResult, available_methods, optimize
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.plans.validity import is_valid_order

from tests.conftest import two_component_graph


class TestOptimize:
    def test_accepts_query_and_graph(self, small_query):
        from_query = optimize(small_query, time_factor=0.5, units_per_n2=5, seed=0)
        from_graph = optimize(
            small_query.graph, time_factor=0.5, units_per_n2=5, seed=0
        )
        assert from_query.cost == from_graph.cost

    def test_default_method_is_iai(self, small_query):
        result = optimize(small_query, time_factor=0.5, units_per_n2=5)
        assert result.method == "IAI"

    def test_explicit_budget_wins_over_factor(self, small_query):
        budget = Budget(limit=200)
        result = optimize(small_query, budget=budget, time_factor=9.0)
        assert result.units_spent <= 200

    def test_works_with_disk_model(self, small_query):
        result = optimize(
            small_query, model=DiskCostModel(), time_factor=0.5, units_per_n2=5
        )
        assert result.cost > 0

    def test_result_contains_trajectory(self, small_query):
        result = optimize(small_query, time_factor=1.0, units_per_n2=5)
        assert result.trajectory
        spents = [s for s, _ in result.trajectory]
        assert spents == sorted(spents)

    def test_best_cost_within(self, small_query):
        result = optimize(small_query, time_factor=3.0, units_per_n2=5)
        assert result.best_cost_within(0) is None
        final = result.best_cost_within(float("inf"))
        assert final == pytest.approx(result.cost)
        halfway = result.best_cost_within(result.units_spent / 2)
        assert halfway is None or halfway >= final

    def test_join_tree_matches_order(self, small_query):
        result = optimize(small_query, time_factor=0.5, units_per_n2=5)
        tree = result.join_tree()
        assert tree.order == result.order

    def test_available_methods_nonempty(self):
        methods = available_methods()
        assert "IAI" in methods and "SA" in methods


class TestDisconnectedQueries:
    def test_optimizes_components_separately(self):
        graph = two_component_graph()
        result = optimize(graph, method="II", time_factor=5, units_per_n2=10, seed=1)
        assert is_valid_order(result.order, graph)

    def test_components_contiguous_in_order(self):
        graph = two_component_graph()
        result = optimize(graph, method="II", time_factor=5, units_per_n2=10, seed=1)
        positions = list(result.order)
        component_of = {}
        for cid, component in enumerate(graph.components):
            for vertex in component:
                component_of[vertex] = cid
        labels = [component_of[p] for p in positions]
        # Once a component ends, it never reappears.
        changes = sum(1 for a, b in zip(labels, labels[1:]) if a != b)
        assert changes == len(graph.components) - 1

    def test_cost_includes_cross_products(self):
        graph = two_component_graph()
        result = optimize(graph, method="II", time_factor=5, units_per_n2=10, seed=1)
        model = MainMemoryCostModel()
        assert result.cost == pytest.approx(model.plan_cost(result.order, graph))

    def test_result_type(self):
        graph = two_component_graph()
        result = optimize(graph, method="AGI", time_factor=5, units_per_n2=10)
        assert isinstance(result, OptimizationResult)
