"""Edge cases and failure injection across the stack."""

import pytest

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.core.budget import Budget
from repro.core.optimizer import optimize
from repro.core.state import Evaluator
from repro.cost.base import CostModel
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query


def two_relation_graph():
    return JoinGraph(
        [Relation("A", 10), Relation("B", 20)],
        [JoinPredicate(0, 1, 5, 10)],
    )


class TestTinyQueries:
    def test_single_join_query(self):
        query = generate_query(DEFAULT_SPEC, n_joins=1, seed=0)
        result = optimize(query, method="IAI", time_factor=1, units_per_n2=5)
        assert len(result.order) == 2
        assert result.cost > 0

    @pytest.mark.parametrize("method", ["II", "SA", "AGI", "KBI", "RANDOM"])
    def test_two_relations_every_method(self, method):
        graph = two_relation_graph()
        result = optimize(graph, method=method, time_factor=1, units_per_n2=10)
        assert is_valid_order(result.order, graph)

    def test_two_singleton_components(self):
        graph = JoinGraph([Relation("A", 10), Relation("B", 20)], [])
        result = optimize(graph, method="II", time_factor=1, units_per_n2=10)
        # Pure cross product; smaller relation first.
        assert result.order == JoinOrder([0, 1])
        assert result.cost > 0

    def test_singleton_plus_pair_components(self):
        graph = JoinGraph(
            [Relation("A", 10), Relation("B", 20), Relation("C", 5)],
            [JoinPredicate(0, 1, 5, 10)],
        )
        result = optimize(graph, method="II", time_factor=2, units_per_n2=10)
        assert is_valid_order(result.order, graph)
        assert sorted(result.order) == [0, 1, 2]


class _FailingModel(CostModel):
    """Raises after a fixed number of join evaluations."""

    name = "failing"

    def __init__(self, fail_after: int) -> None:
        self.fail_after = fail_after
        self.calls = 0

    def join_cost(self, outer_size, inner_size, result_size):
        self.calls += 1
        if self.calls > self.fail_after:
            raise RuntimeError("injected cost-model failure")
        return outer_size + inner_size + result_size


class TestFailureInjection:
    def test_cost_model_failure_propagates(self, small_query):
        """A broken cost model fails loudly, not silently."""
        model = _FailingModel(fail_after=50)
        with pytest.raises(RuntimeError, match="injected"):
            optimize(
                small_query, method="II", model=model, time_factor=1, units_per_n2=10
            )

    def test_evaluator_usable_after_model_failure(self, chain):
        model = _FailingModel(fail_after=4)
        evaluator = Evaluator(chain, model, Budget(limit=1e6))
        evaluator.evaluate(JoinOrder([0, 1, 2, 3, 4]))
        with pytest.raises(RuntimeError):
            evaluator.evaluate(JoinOrder([4, 3, 2, 1, 0]))
        # The first (successful) evaluation is still the recorded best.
        assert evaluator.best is not None
        model.fail_after = 10**9
        evaluator.evaluate(JoinOrder([2, 1, 0, 3, 4]))
        # The failed evaluation is not counted; the two successes are.
        assert evaluator.n_evaluations == 2


class TestExtremeStatistics:
    def test_huge_cardinalities_no_overflow(self):
        graph = JoinGraph(
            [Relation("A", 10**12), Relation("B", 10**12)],
            [JoinPredicate(0, 1, 1, 1)],  # cross-product-like selectivity
        )
        cost = MainMemoryCostModel().plan_cost(JoinOrder([0, 1]), graph)
        assert cost > 0
        assert cost < float("inf")

    def test_distinct_of_one_means_selectivity_one(self):
        predicate = JoinPredicate(0, 1, 1, 1)
        assert predicate.selectivity == 1.0

    def test_fully_selective_relation(self):
        relation = Relation("A", 1000).with_selections(0.001, 0.001)
        assert relation.cardinality == 1.0

    def test_dense_cyclic_graph_optimizes(self):
        relations = [Relation(f"R{i}", 100 + i) for i in range(6)]
        predicates = [
            JoinPredicate(a, b, 50, 50)
            for a in range(6)
            for b in range(a + 1, 6)
        ]
        graph = JoinGraph(relations, predicates)
        result = optimize(graph, method="IAI", time_factor=1, units_per_n2=10)
        assert is_valid_order(result.order, graph)


class TestLocalImprovementFullWindow:
    def test_cluster_equals_relations(self, star):
        from repro.core.local_improvement import local_improve
        from repro.core.state import Evaluation

        evaluator = Evaluator(star, MainMemoryCostModel(), Budget(limit=1e9))
        order = JoinOrder([0, 1, 2, 3, 4])
        start = Evaluation(order, evaluator.evaluate(order))
        improved = local_improve(
            start, evaluator, cluster_size=star.n_relations, overlap=0
        )
        # Exhaustive over the whole window: this is the global optimum.
        from repro.plans.validity import valid_orders

        best = min(
            MainMemoryCostModel().plan_cost(o, star) for o in valid_orders(star)
        )
        assert improved.cost == pytest.approx(best)
