"""Tests for query/benchmark JSON serialization."""

import json

import pytest

from repro.catalog.serialization import (
    load_benchmark,
    load_query,
    query_from_dict,
    query_to_dict,
    save_benchmark,
    save_query,
)
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark
from repro.workloads.generator import generate_query


@pytest.fixture
def query():
    return generate_query(DEFAULT_SPEC, n_joins=10, seed=5)


class TestRoundTrip:
    def test_dict_round_trip_preserves_statistics(self, query):
        restored = query_from_dict(query_to_dict(query))
        original = query.graph
        rebuilt = restored.graph
        assert rebuilt.n_relations == original.n_relations
        for i in range(original.n_relations):
            assert rebuilt.cardinality(i) == original.cardinality(i)
            assert rebuilt.relation(i).name == original.relation(i).name
        assert len(rebuilt.predicates) == len(original.predicates)
        for a, b in zip(original.predicates, rebuilt.predicates):
            assert (a.left, a.right) == (b.left, b.right)
            assert a.selectivity == b.selectivity

    def test_metadata_and_seed_preserved(self, query):
        restored = query_from_dict(query_to_dict(query))
        assert restored.seed == query.seed
        assert restored.metadata == query.metadata
        assert restored.name == query.name

    def test_selections_preserved(self, query):
        restored = query_from_dict(query_to_dict(query))
        for i in range(query.graph.n_relations):
            assert (
                restored.graph.relation(i).selections
                == query.graph.relation(i).selections
            )

    def test_optimization_identical_after_round_trip(self, query, tmp_path):
        from repro.core.optimizer import optimize

        path = tmp_path / "query.json"
        save_query(query, path)
        restored = load_query(path)
        a = optimize(query, method="AGI", time_factor=1, units_per_n2=5, seed=1)
        b = optimize(restored, method="AGI", time_factor=1, units_per_n2=5, seed=1)
        assert a.cost == b.cost
        assert a.order == b.order


class TestFiles:
    def test_save_load_query(self, query, tmp_path):
        path = tmp_path / "q.json"
        save_query(query, path)
        assert load_query(path).graph.n_relations == query.graph.n_relations

    def test_file_is_valid_json(self, query, tmp_path):
        path = tmp_path / "q.json"
        save_query(query, path)
        document = json.loads(path.read_text())
        assert document["format_version"] == 1

    def test_save_load_benchmark(self, tmp_path):
        queries = generate_benchmark(
            DEFAULT_SPEC, n_values=(10,), queries_per_n=3, seed=1
        )
        path = tmp_path / "bench.json"
        save_benchmark(queries, path)
        restored = load_benchmark(path)
        assert len(restored) == 3
        assert [q.name for q in restored] == [q.name for q in queries]


class TestErrors:
    def test_unknown_query_version(self, query):
        data = query_to_dict(query)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version 99"):
            query_from_dict(data)

    def test_unknown_benchmark_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 0, "queries": []}))
        with pytest.raises(ValueError, match="version 0"):
            load_benchmark(path)
