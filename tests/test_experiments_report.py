"""Tests for plain-text result rendering."""

from repro.experiments.report import render_experiment, render_matrix, render_series
from repro.experiments.runner import ExperimentConfig, ExperimentResult


def make_result():
    config = ExperimentConfig(methods=("IAI", "II"), time_factors=(1.0, 9.0))
    return ExperimentResult(
        config=config,
        n_queries=4,
        mean_scaled={
            "IAI": {1.0: 1.5, 9.0: 1.1},
            "II": {1.0: 2.5, 9.0: 1.4},
        },
        outlier_counts={"IAI": {1.0: 0, 9.0: 0}, "II": {1.0: 1, 9.0: 0}},
        per_query_scaled={
            "IAI": {1.0: [1.4, 1.6, 1.5, 1.5], 9.0: [1.0, 1.2, 1.1, 1.1]},
            "II": {1.0: [2.0, 3.0, 2.5, 2.5], 9.0: [1.3, 1.5, 1.4, 1.4]},
        },
    )


class TestRenderMatrix:
    def test_contains_labels_and_values(self):
        text = render_matrix(
            "Demo",
            row_labels=["r1", "r2"],
            column_labels=["c1", "c2"],
            values=[[1.0, 2.0], [3.25, 4.5]],
            row_header="Rows",
        )
        assert "Demo" in text
        assert "r1" in text and "c2" in text
        assert "3.25" in text
        assert "4.50" in text

    def test_columns_aligned(self):
        text = render_matrix("T", ["a"], ["x", "y"], [[1.0, 2.0]])
        lines = text.splitlines()
        header, row = lines[2], lines[4]
        assert header.rindex("y") == row.rindex("0") or len(header) == len(row)


class TestRenderExperiment:
    def test_has_all_methods_and_factors(self):
        text = render_experiment("Figure 4 (mini)", make_result())
        assert "Figure 4 (mini)" in text
        assert "IAI" in text and "II" in text
        assert "1N^2" in text and "9N^2" in text
        assert "1.10" in text


class TestRenderSeries:
    def test_one_line_per_method(self):
        text = render_series("Series", make_result())
        assert "IAI" in text and "II" in text
        assert "9: 1.10" in text


class TestRenderAsciiChart:
    def _series(self):
        return {
            "IAI": [(1.0, 2.0), (2.0, 1.5), (3.0, 1.0)],
            "SA": [(1.0, 3.0), (2.0, 2.8), (3.0, 2.5)],
        }

    def test_contains_marks_and_legend(self):
        from repro.experiments.report import render_ascii_chart

        text = render_ascii_chart("Chart", self._series())
        assert "Chart" in text
        assert "I=IAI" in text and "S=SA" in text
        assert "I" in text and "S" in text

    def test_axis_bounds_rendered(self):
        from repro.experiments.report import render_ascii_chart

        text = render_ascii_chart("Chart", self._series())
        assert "3.00" in text  # y max
        assert "1.00" in text  # y min

    def test_empty_rejected(self):
        from repro.experiments.report import render_ascii_chart

        import pytest as _pytest

        with _pytest.raises(ValueError):
            render_ascii_chart("Chart", {})

    def test_single_point_series(self):
        from repro.experiments.report import render_ascii_chart

        text = render_ascii_chart("Chart", {"X": [(1.0, 1.0)]})
        assert "X" in text
