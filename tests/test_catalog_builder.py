"""Tests for the fluent query builder."""

import pytest

from repro.catalog.builder import QueryBuilder


class TestQueryBuilder:
    def test_build_simple_query(self):
        builder = QueryBuilder("pair")
        a = builder.relation("A", 100)
        b = builder.relation("B", 50)
        builder.join(a, b, left_distinct=10, right_distinct=25)
        query = builder.build()
        assert query.n_joins == 1
        assert query.graph.edge(a, b).selectivity == pytest.approx(1 / 25)

    def test_relation_indices_sequential(self):
        builder = QueryBuilder()
        assert builder.relation("A", 10) == 0
        assert builder.relation("B", 10) == 1

    def test_selections_applied(self):
        builder = QueryBuilder()
        a = builder.relation("A", 1000, selections=(0.1,))
        builder.relation("B", 10)
        builder.join(a, 1)
        query = builder.build()
        assert query.graph.cardinality(a) == pytest.approx(100.0)

    def test_distinct_defaults_to_cardinality(self):
        builder = QueryBuilder()
        a = builder.relation("A", 100)
        b = builder.relation("B", 40)
        builder.join(a, b)
        predicate = builder.build().graph.edge(a, b)
        assert predicate.left_distinct == 100
        assert predicate.right_distinct == 40
        assert predicate.selectivity == pytest.approx(1 / 100)

    def test_join_returns_builder_for_chaining(self):
        builder = QueryBuilder()
        builder.relation("A", 10)
        builder.relation("B", 10)
        builder.relation("C", 10)
        result = builder.join(0, 1).join(1, 2)
        assert result is builder
        assert result.build().n_joins == 2

    def test_named_query(self):
        builder = QueryBuilder("my-query")
        builder.relation("A", 10)
        assert builder.build().name == "my-query"
