"""Tests for iterative improvement."""

import random

import pytest

from repro.core.budget import Budget
from repro.core.iterative import (
    default_patience,
    improvement_run,
    multi_start_improvement,
)
from repro.core.moves import MoveSet
from repro.core.state import Evaluator
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder
from repro.plans.validity import random_valid_order, valid_orders

from tests.conftest import star_graph


def make_evaluator(graph, limit=1e6):
    return Evaluator(graph, MainMemoryCostModel(), Budget(limit=limit))


class TestDefaultPatience:
    def test_floors_at_16(self):
        assert default_patience(3) == 16

    def test_scales_with_relations(self):
        assert default_patience(50) == 100


class TestImprovementRun:
    def test_never_worse_than_start(self, chain):
        evaluator = make_evaluator(chain)
        start = JoinOrder([4, 3, 2, 1, 0])
        start_cost = MainMemoryCostModel().plan_cost(start, chain)
        local = improvement_run(start, evaluator, MoveSet(), random.Random(0))
        assert local.cost <= start_cost

    def test_reaches_global_optimum_on_tiny_star(self):
        graph = star_graph([1000, 10, 20, 30])
        best = min(
            MainMemoryCostModel().plan_cost(order, graph)
            for order in valid_orders(graph)
        )
        evaluator = make_evaluator(graph)
        local = improvement_run(
            JoinOrder([0, 1, 2, 3]),
            evaluator,
            MoveSet(),
            random.Random(3),
            patience=200,
        )
        assert local.cost == pytest.approx(best)

    def test_respects_budget(self, medium_query):
        from repro.core.budget import BudgetExhausted

        evaluator = Evaluator(
            medium_query.graph, MainMemoryCostModel(), Budget(limit=100)
        )
        rng = random.Random(0)
        start = random_valid_order(medium_query.graph, rng)
        with pytest.raises(BudgetExhausted):
            improvement_run(start, evaluator, MoveSet(), rng, patience=10_000)
        assert evaluator.budget.spent == 100

    def test_result_is_local_minimum_ish(self, star):
        """With high patience, the result is a true local minimum."""
        evaluator = make_evaluator(star)
        move_set = MoveSet()
        local = improvement_run(
            JoinOrder([0, 1, 2, 3, 4]),
            evaluator,
            move_set,
            random.Random(1),
            patience=500,
        )
        model = MainMemoryCostModel()
        for neighbor in move_set.neighbors(local.order, star):
            assert model.plan_cost(neighbor, star) >= local.cost - 1e-9

    def test_reuses_start_cost_when_given(self, chain):
        evaluator = make_evaluator(chain)
        start = JoinOrder([0, 1, 2, 3, 4])
        cost = evaluator.evaluate(start)
        n_before = evaluator.n_evaluations
        improvement_run(
            start,
            evaluator,
            MoveSet(),
            random.Random(0),
            patience=1,
            start_cost=cost,
        )
        # Only the neighbor evaluation happened, not a re-evaluation of start.
        assert evaluator.n_evaluations == n_before + 1


class TestMultiStart:
    def test_returns_best_of_runs(self, star):
        evaluator = make_evaluator(star, limit=2000)
        rng = random.Random(5)
        starts = (random_valid_order(star, rng) for _ in iter(int, 1))
        best = multi_start_improvement(starts, evaluator, MoveSet(), rng)
        assert best is not None
        assert best.cost == evaluator.best.cost

    def test_stops_on_budget(self, medium_query):
        evaluator = Evaluator(
            medium_query.graph, MainMemoryCostModel(), Budget(limit=500)
        )
        rng = random.Random(5)
        starts = (
            random_valid_order(medium_query.graph, rng) for _ in iter(int, 1)
        )
        best = multi_start_improvement(starts, evaluator, MoveSet(), rng)
        assert best is not None
        assert evaluator.budget.exhausted

    def test_empty_starts_returns_none(self, chain):
        evaluator = make_evaluator(chain)
        assert (
            multi_start_improvement(iter(()), evaluator, MoveSet(), random.Random(0))
            is None
        )
