"""Tests for the seeded q-error estimation-error model."""

import math
import random

import pytest

from repro.robustness.estimates import (
    DISTRIBUTIONS,
    LOG_NORMAL,
    LOG_UNIFORM,
    ErrorModel,
    q_error,
)
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query


@pytest.fixture
def query():
    return generate_query(DEFAULT_SPEC, n_joins=12, seed=11)


class TestQError:
    def test_perfect_estimate_scores_one(self):
        assert q_error(42.0, 42.0) == 1.0

    def test_symmetric_in_direction(self):
        assert q_error(10.0, 100.0) == q_error(100.0, 10.0) == 10.0

    @pytest.mark.parametrize("estimate,truth", [(0.0, 1.0), (1.0, 0.0), (-2.0, 3.0)])
    def test_rejects_non_positive(self, estimate, truth):
        with pytest.raises(ValueError):
            q_error(estimate, truth)


class TestErrorModelValidation:
    def test_rejects_q_below_one(self):
        with pytest.raises(ValueError):
            ErrorModel(q=0.5)

    def test_rejects_non_finite_q(self):
        with pytest.raises(ValueError):
            ErrorModel(q=math.inf)

    def test_rejects_unknown_distribution(self):
        with pytest.raises(ValueError):
            ErrorModel(q=2.0, distribution="gaussian")

    def test_known_distributions_accepted(self):
        for distribution in DISTRIBUTIONS:
            ErrorModel(q=2.0, distribution=distribution)


class TestDeterminism:
    def test_repeated_perturbation_identical(self, query):
        model = ErrorModel(q=5.0, seed=3)
        first = model.perturb(query.graph)
        second = model.perturb(query.graph)
        assert [r.base_cardinality for r in first.relations] == [
            r.base_cardinality for r in second.relations
        ]
        assert [
            (p.left_distinct, p.right_distinct) for p in first.predicates
        ] == [(p.left_distinct, p.right_distinct) for p in second.predicates]

    def test_seed_changes_the_draws(self, query):
        a = ErrorModel(q=5.0, seed=0).perturb(query.graph)
        b = ErrorModel(q=5.0, seed=1).perturb(query.graph)
        assert [r.base_cardinality for r in a.relations] != [
            r.base_cardinality for r in b.relations
        ]

    def test_switches_keep_the_stream_aligned(self, query):
        """Disabling selectivity perturbation must not shift the
        cardinality draws (switches skip applying, never drawing)."""
        full = ErrorModel(q=5.0, seed=3).perturb(query.graph)
        ablated = ErrorModel(
            q=5.0, seed=3, perturb_selectivities=False
        ).perturb(query.graph)
        assert [r.base_cardinality for r in full.relations] == [
            r.base_cardinality for r in ablated.relations
        ]


class TestPerturbation:
    def test_q_one_is_identity_on_cardinalities(self, query):
        for distribution in DISTRIBUTIONS:
            perturbed = ErrorModel(q=1.0, distribution=distribution).perturb(
                query.graph
            )
            for i in range(query.graph.n_relations):
                assert perturbed.relation(i).base_cardinality == max(
                    2, query.graph.relation(i).base_cardinality
                )

    def test_structure_and_selections_preserved(self, query):
        graph = query.graph
        perturbed = ErrorModel(q=10.0, seed=2).perturb(graph)
        assert perturbed.n_relations == graph.n_relations
        assert len(perturbed.predicates) == len(graph.predicates)
        for a, b in zip(graph.predicates, perturbed.predicates):
            assert (a.left, a.right) == (b.left, b.right)
        for i in range(graph.n_relations):
            assert perturbed.relation(i).selections == graph.relation(i).selections

    def test_loguniform_factors_hard_bounded(self, query):
        graph = query.graph
        q = 3.0
        perturbed = ErrorModel(q=q, seed=1, distribution=LOG_UNIFORM).perturb(graph)
        for i in range(graph.n_relations):
            original = graph.relation(i).base_cardinality
            new = perturbed.relation(i).base_cardinality
            assert original / q - 1 <= new <= original * q + 1

    def test_lognormal_q_is_about_the_95th_percentile(self):
        model = ErrorModel(q=4.0)
        rng = random.Random(9)
        factors = [model.factor(rng) for _ in range(2000)]
        within = sum(1 for f in factors if 1 / model.q <= f <= model.q)
        # ln f ~ N(0, ln(q)/2): ~95.4% of draws land within [1/q, q].
        assert 0.90 < within / len(factors) < 0.99
        assert any(f > model.q or f < 1 / model.q for f in factors)

    def test_distinct_capped_by_perturbed_cardinality(self, query):
        perturbed = ErrorModel(q=10.0, seed=4).perturb(query.graph)
        for predicate in perturbed.predicates:
            for side in predicate.endpoints:
                assert (
                    predicate.distinct_values(side)
                    <= perturbed.relation(side).cardinality
                )

    def test_cardinality_switch_off(self, query):
        perturbed = ErrorModel(
            q=10.0, seed=4, perturb_cardinalities=False
        ).perturb(query.graph)
        for i in range(query.graph.n_relations):
            assert (
                perturbed.relation(i).base_cardinality
                == query.graph.relation(i).base_cardinality
            )

    def test_selectivity_switch_off(self, query):
        graph = query.graph
        perturbed = ErrorModel(
            q=10.0, seed=4, perturb_selectivities=False
        ).perturb(graph)
        for old, new in zip(graph.predicates, perturbed.predicates):
            # Unperturbed, up to the clamp by the perturbed cardinality.
            for side in old.endpoints:
                cap = perturbed.relation(side).cardinality
                assert new.distinct_values(side) == min(
                    cap, max(1.0, old.distinct_values(side))
                )

    def test_n_draws(self, query):
        graph = query.graph
        model = ErrorModel(q=2.0)
        assert model.n_draws(graph) == graph.n_relations + 2 * len(graph.predicates)

    def test_to_json_dict(self):
        model = ErrorModel(q=5.0, seed=7, distribution=LOG_NORMAL)
        payload = model.to_json_dict()
        assert payload["q"] == 5.0
        assert payload["seed"] == 7
        assert payload["distribution"] == LOG_NORMAL
        assert payload["perturb_cardinalities"] is True
