"""Cross-validation of the three physical join implementations."""

import random

import pytest

from repro.engine.operators import hash_join, merge_join, nested_loop_join
from repro.engine.table import Table


def random_table(name: str, rows: int, key_range: int, seed: int) -> Table:
    rng = random.Random(seed)
    return Table.from_dict(
        name,
        {
            f"{name}_key": [rng.randrange(key_range) for _ in range(rows)],
            f"{name}_val": list(range(rows)),
        },
    )


def result_set(table: Table, left: str, right: str):
    return sorted(
        zip(table.column(f"{left}_val").values, table.column(f"{right}_val").values)
    )


class TestJoinMethodEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_three_agree(self, seed):
        a = random_table("a", 60, 15, seed)
        b = random_table("b", 45, 15, seed + 100)
        columns = [("a_key", "b_key")]
        expected = result_set(hash_join(a, b, columns), "a", "b")
        assert result_set(nested_loop_join(a, b, columns), "a", "b") == expected
        assert result_set(merge_join(a, b, columns), "a", "b") == expected

    def test_agree_on_empty_result(self):
        a = Table.from_dict("a", {"a_key": [1, 2], "a_val": [0, 1]})
        b = Table.from_dict("b", {"b_key": [3, 4], "b_val": [0, 1]})
        columns = [("a_key", "b_key")]
        assert hash_join(a, b, columns).n_rows == 0
        assert nested_loop_join(a, b, columns).n_rows == 0
        assert merge_join(a, b, columns).n_rows == 0

    def test_agree_on_duplicates(self):
        """Runs of equal keys on both sides multiply out correctly."""
        a = Table.from_dict("a", {"a_key": [7, 7, 7], "a_val": [0, 1, 2]})
        b = Table.from_dict("b", {"b_key": [7, 7], "b_val": [0, 1]})
        columns = [("a_key", "b_key")]
        assert hash_join(a, b, columns).n_rows == 6
        assert nested_loop_join(a, b, columns).n_rows == 6
        assert merge_join(a, b, columns).n_rows == 6

    def test_multi_column_agreement(self):
        a = Table.from_dict(
            "a", {"a_k1": [1, 1, 2], "a_k2": [5, 6, 5], "a_val": [0, 1, 2]}
        )
        b = Table.from_dict(
            "b", {"b_k1": [1, 2, 1], "b_k2": [5, 5, 6], "b_val": [0, 1, 2]}
        )
        columns = [("a_k1", "b_k1"), ("a_k2", "b_k2")]
        expected = result_set(hash_join(a, b, columns), "a", "b")
        assert result_set(nested_loop_join(a, b, columns), "a", "b") == expected
        assert result_set(merge_join(a, b, columns), "a", "b") == expected


class TestNestedLoopCrossProduct:
    def test_cross_product(self):
        a = Table.from_dict("a", {"a_val": [1, 2]})
        b = Table.from_dict("b", {"b_val": [3, 4, 5]})
        assert nested_loop_join(a, b, []).n_rows == 6


class TestMergeJoinConstraints:
    def test_requires_join_columns(self):
        a = Table.from_dict("a", {"a_val": [1]})
        b = Table.from_dict("b", {"b_val": [2]})
        with pytest.raises(ValueError, match="at least one join column"):
            merge_join(a, b, [])

    def test_rejects_shared_names(self):
        a = Table.from_dict("a", {"k": [1]})
        b = Table.from_dict("b", {"k": [1]})
        with pytest.raises(ValueError, match="share column names"):
            merge_join(a, b, [("k", "k")])
