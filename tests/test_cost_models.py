"""Tests for the main-memory and disk cost models."""

import pytest

from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder
from repro.plans.validity import valid_orders


class TestMainMemoryModel:
    def test_join_cost_formula(self):
        model = MainMemoryCostModel(build_cost=2, probe_cost=3, output_cost=5)
        assert model.join_cost(10, 20, 30) == pytest.approx(
            2 * 20 + 3 * 10 + 5 * 30
        )

    def test_rejects_nonpositive_constants(self):
        with pytest.raises(ValueError):
            MainMemoryCostModel(build_cost=0)

    def test_plan_cost_positive(self, chain):
        model = MainMemoryCostModel()
        assert model.plan_cost(JoinOrder([0, 1, 2, 3, 4]), chain) > 0

    def test_plan_cost_order_dependent(self, star):
        model = MainMemoryCostModel()
        costs = {model.plan_cost(o, star) for o in valid_orders(star)}
        assert len(costs) > 1

    def test_plan_cost_detail_sums_to_total(self, chain):
        model = MainMemoryCostModel()
        order = JoinOrder([0, 1, 2, 3, 4])
        detail = model.plan_cost_detail(order, chain)
        assert detail.total == pytest.approx(model.plan_cost(order, chain))
        assert len(detail.join_costs) == chain.n_joins

    def test_prefix_costs_cumulative(self, chain):
        model = MainMemoryCostModel()
        detail = model.plan_cost_detail(JoinOrder([0, 1, 2, 3, 4]), chain)
        prefix = detail.prefix_costs
        assert prefix[-1] == pytest.approx(detail.total)
        assert all(a <= b for a, b in zip(prefix, prefix[1:]))

    def test_str_names_model(self):
        assert str(MainMemoryCostModel()) == "memory"


class TestDiskModel:
    def test_pages_ceil(self):
        model = DiskCostModel(tuples_per_page=32)
        assert model.pages(1) == 1
        assert model.pages(32) == 1
        assert model.pages(33) == 2

    def test_no_partitioning_when_inner_fits(self):
        model = DiskCostModel(memory_pages=64)
        assert model.partition_passes(64) == 0

    def test_one_pass_when_slightly_over(self):
        model = DiskCostModel(memory_pages=64)
        assert model.partition_passes(65) == 1

    def test_multi_pass_for_huge_inner(self):
        model = DiskCostModel(memory_pages=4)
        # fanout 3, memory 4 pages: 4 * 3^k >= pages.
        assert model.partition_passes(13) == 2

    def test_in_memory_join_io(self):
        model = DiskCostModel(memory_pages=64, tuples_per_page=10, cpu_weight=1e-9)
        # 100 and 200 tuples -> 10 + 20 pages, both fit, result small.
        cost = model.join_cost(100, 200, 10)
        assert cost == pytest.approx(30, rel=0.01)

    def test_partitioned_join_costs_three_reads(self):
        model = DiskCostModel(memory_pages=4, tuples_per_page=10, cpu_weight=1e-9)
        # Inner 80 tuples -> 8 pages > 4: one partitioning pass.
        cost = model.join_cost(40, 80, 1)
        assert cost == pytest.approx(3 * (4 + 8), rel=0.01)

    def test_large_result_charged_for_materialisation(self):
        model = DiskCostModel(memory_pages=4, tuples_per_page=10, cpu_weight=1e-9)
        small = model.join_cost(40, 40, 10)
        large = model.join_cost(40, 40, 10_000)
        assert large > small + 2 * model.pages(10_000) - 5

    def test_rejects_tiny_memory(self):
        with pytest.raises(ValueError):
            DiskCostModel(memory_pages=1)

    def test_plan_cost_positive(self, chain):
        model = DiskCostModel()
        assert model.plan_cost(JoinOrder([0, 1, 2, 3, 4]), chain) > 0

    def test_models_can_disagree_on_ordering(self, medium_query):
        """The two models price the same plan differently (sanity)."""
        memory = MainMemoryCostModel()
        disk = DiskCostModel()
        order = JoinOrder(list(range(medium_query.graph.n_relations)))
        from repro.plans.validity import is_valid_order

        if is_valid_order(order, medium_query.graph):
            assert memory.plan_cost(order, medium_query.graph) != pytest.approx(
                disk.plan_cost(order, medium_query.graph)
            )
