"""Tests for random query generation."""

import pytest

from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order
from repro.workloads.benchmarks import DEFAULT_SPEC, benchmark_spec
from repro.workloads.generator import generate_query


class TestGenerateQuery:
    def test_relation_count(self):
        query = generate_query(DEFAULT_SPEC, n_joins=10, seed=0)
        assert query.graph.n_relations == 11
        assert query.n_joins == 10

    def test_connected(self):
        for seed in range(10):
            query = generate_query(DEFAULT_SPEC, n_joins=15, seed=seed)
            assert query.graph.is_connected

    def test_identity_permutation_valid(self):
        """Step 1 guarantees (0 1 2 ... N) is a valid permutation."""
        for seed in range(10):
            query = generate_query(DEFAULT_SPEC, n_joins=12, seed=seed)
            order = JoinOrder(list(range(query.graph.n_relations)))
            assert is_valid_order(order, query.graph)

    def test_deterministic(self):
        a = generate_query(DEFAULT_SPEC, n_joins=10, seed=5)
        b = generate_query(DEFAULT_SPEC, n_joins=10, seed=5)
        assert [r.cardinality for r in a.graph.relations] == [
            r.cardinality for r in b.graph.relations
        ]
        assert [
            (p.left, p.right, p.selectivity) for p in a.graph.predicates
        ] == [(p.left, p.right, p.selectivity) for p in b.graph.predicates]

    def test_seed_changes_query(self):
        a = generate_query(DEFAULT_SPEC, n_joins=10, seed=1)
        b = generate_query(DEFAULT_SPEC, n_joins=10, seed=2)
        assert [r.base_cardinality for r in a.graph.relations] != [
            r.base_cardinality for r in b.graph.relations
        ]

    def test_rejects_zero_joins(self):
        with pytest.raises(ValueError):
            generate_query(DEFAULT_SPEC, n_joins=0, seed=0)

    def test_cardinalities_in_spec_range(self):
        query = generate_query(DEFAULT_SPEC, n_joins=30, seed=3)
        for relation in query.graph.relations:
            assert 2 <= relation.base_cardinality < 10_000

    def test_selections_bounded(self):
        query = generate_query(DEFAULT_SPEC, n_joins=30, seed=3)
        assert all(len(r.selections) <= 2 for r in query.graph.relations)

    def test_distinct_values_bounded_by_cardinality(self):
        query = generate_query(DEFAULT_SPEC, n_joins=30, seed=4)
        for predicate in query.graph.predicates:
            for side in predicate.endpoints:
                assert (
                    predicate.distinct_values(side)
                    <= query.graph.cardinality(side)
                )

    def test_metadata_recorded(self):
        query = generate_query(DEFAULT_SPEC, n_joins=10, seed=0)
        assert query.metadata["n_joins"] == 10
        assert query.metadata["spec"] == "default"


class TestGraphBiases:
    @staticmethod
    def _max_degree(query):
        graph = query.graph
        return max(graph.degree(i) for i in range(graph.n_relations))

    def test_star_bias_creates_hubs(self):
        star_spec = benchmark_spec(8)
        hubs = [
            self._max_degree(generate_query(star_spec, 30, seed))
            for seed in range(12)
        ]
        flat = [
            self._max_degree(generate_query(DEFAULT_SPEC, 30, seed))
            for seed in range(12)
        ]
        assert sum(hubs) / len(hubs) > sum(flat) / len(flat)

    def test_chain_bias_keeps_degrees_low(self):
        chain_spec = benchmark_spec(9)
        chains = [
            self._max_degree(generate_query(chain_spec, 30, seed))
            for seed in range(12)
        ]
        flat = [
            self._max_degree(generate_query(DEFAULT_SPEC, 30, seed))
            for seed in range(12)
        ]
        assert sum(chains) / len(chains) < sum(flat) / len(flat)

    def test_dense_spec_has_more_predicates(self):
        dense_spec = benchmark_spec(7)
        dense = [
            len(generate_query(dense_spec, 30, seed).graph.predicates)
            for seed in range(8)
        ]
        flat = [
            len(generate_query(DEFAULT_SPEC, 30, seed).graph.predicates)
            for seed in range(8)
        ]
        assert sum(dense) > sum(flat)
