"""Tests for the SG88 baseline methods (RANDOM, WALK)."""

import pytest

from repro.core.optimizer import optimize
from repro.plans.validity import is_valid_order


class TestRandomSampling:
    def test_produces_valid_plan(self, small_query):
        result = optimize(
            small_query, method="RANDOM", time_factor=1, units_per_n2=5, seed=1
        )
        assert is_valid_order(result.order, small_query.graph)

    def test_uses_whole_budget(self, small_query):
        n = small_query.n_joins
        result = optimize(
            small_query, method="RANDOM", time_factor=1, units_per_n2=5, seed=1
        )
        assert result.units_spent == pytest.approx(1 * n * n * 5)

    def test_more_samples_never_worse(self, small_query):
        short = optimize(
            small_query, method="RANDOM", time_factor=0.5, units_per_n2=5, seed=4
        )
        long = optimize(
            small_query, method="RANDOM", time_factor=5, units_per_n2=5, seed=4
        )
        assert long.cost <= short.cost

    def test_evaluation_count_matches_budget(self, small_query):
        n = small_query.n_joins
        result = optimize(
            small_query, method="RANDOM", time_factor=1, units_per_n2=5, seed=2
        )
        assert result.n_evaluations == int(1 * n * n * 5 // n)


class TestPerturbationWalk:
    def test_produces_valid_plan(self, small_query):
        result = optimize(
            small_query, method="WALK", time_factor=1, units_per_n2=5, seed=1
        )
        assert is_valid_order(result.order, small_query.graph)

    def test_deterministic(self, small_query):
        a = optimize(small_query, method="WALK", time_factor=1, units_per_n2=5, seed=3)
        b = optimize(small_query, method="WALK", time_factor=1, units_per_n2=5, seed=3)
        assert a.cost == b.cost and a.order == b.order

    def test_walk_differs_from_sampling(self, small_query):
        walk = optimize(
            small_query, method="WALK", time_factor=1, units_per_n2=5, seed=3
        )
        sampling = optimize(
            small_query, method="RANDOM", time_factor=1, units_per_n2=5, seed=3
        )
        assert walk.trajectory != sampling.trajectory


class TestBaselinesLoseToII:
    def test_ii_beats_baselines_given_time(self, medium_query):
        """SG88's core finding at miniature scale."""
        costs = {
            method: optimize(
                medium_query, method=method, time_factor=5, units_per_n2=10, seed=0
            ).cost
            for method in ("II", "RANDOM", "WALK")
        }
        assert costs["II"] <= costs["RANDOM"]
        assert costs["II"] <= costs["WALK"]
