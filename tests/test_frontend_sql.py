"""Tests for the SQL-ish text frontend."""

import pytest

from repro.frontend.catalog import ColumnStats, StatsCatalog
from repro.frontend.sql import ParseError, parse_query


@pytest.fixture
def catalog():
    cat = StatsCatalog()
    cat.add_table(
        "orders",
        1_000_000,
        {
            "customer_id": ColumnStats(distinct=50_000),
            "product_id": ColumnStats(distinct=10_000),
            "status": ColumnStats(distinct=5),
        },
    )
    cat.add_table(
        "customers",
        50_000,
        {
            "id": ColumnStats(distinct=50_000),
            "region_id": ColumnStats(distinct=50),
        },
    )
    cat.add_table("regions", 50, {"id": ColumnStats(distinct=50)})
    cat.add_table("products", 10_000, {"id": ColumnStats(distinct=10_000)})
    return cat


class TestCatalog:
    def test_lookup_case_insensitive(self, catalog):
        assert catalog.table("ORDERS").cardinality == 1_000_000

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(ValueError, match="already registered"):
            catalog.add_table("orders", 10)

    def test_unknown_table(self, catalog):
        with pytest.raises(KeyError, match="unknown table"):
            catalog.table("nope")

    def test_unknown_column_defaults_to_key(self, catalog):
        stats = catalog.table("regions").column("mystery")
        assert stats.distinct == 50

    def test_equality_selectivity_default(self):
        assert ColumnStats(distinct=4).selectivity == pytest.approx(0.25)

    def test_equality_selectivity_override(self):
        stats = ColumnStats(distinct=4, equality_selectivity=0.5)
        assert stats.selectivity == 0.5


class TestParseJoins:
    SQL = """
        SELECT o.product_id, r.id
        FROM orders o, customers c, regions r, products p
        WHERE o.customer_id = c.id
          AND c.region_id = r.id
          AND o.product_id = p.id
    """

    def test_relations_and_joins(self, catalog):
        query = parse_query(self.SQL, catalog)
        assert query.graph.n_relations == 4
        assert query.n_joins == 3
        assert len(query.graph.predicates) == 3

    def test_join_selectivity_from_distinct(self, catalog):
        query = parse_query(self.SQL, catalog)
        graph = query.graph
        # orders(0) |><| customers(1) on customer_id(50k) = id(50k).
        assert graph.edge(0, 1).selectivity == pytest.approx(1 / 50_000)
        # customers(1) |><| regions(2): max(50, 50).
        assert graph.edge(1, 2).selectivity == pytest.approx(1 / 50)

    def test_aliases_name_relations(self, catalog):
        query = parse_query(self.SQL, catalog)
        names = [r.name for r in query.graph.relations]
        assert names == ["o", "c", "r", "p"]

    def test_optimizable(self, catalog):
        from repro.core.optimizer import optimize

        query = parse_query(self.SQL, catalog)
        result = optimize(query, method="IAI", time_factor=2, units_per_n2=10)
        assert result.cost > 0

    def test_metadata_records_sql(self, catalog):
        query = parse_query(self.SQL, catalog)
        assert "SELECT" in query.metadata["sql"]
        assert query.metadata["projections"] == [
            ("o", "product_id"),
            ("r", "id"),
        ]


class TestParseSelections:
    def test_equality_selection(self, catalog):
        query = parse_query(
            "SELECT * FROM orders o WHERE o.status = 'open'", catalog
        )
        relation = query.graph.relations[0]
        assert relation.selections[0].selectivity == pytest.approx(1 / 5)
        assert relation.cardinality == pytest.approx(200_000)

    def test_inequality_selection_magic_number(self, catalog):
        query = parse_query(
            "SELECT * FROM orders o WHERE o.status > 3", catalog
        )
        assert query.graph.relations[0].selections[0].selectivity == pytest.approx(
            1 / 3
        )

    def test_not_equal_selection(self, catalog):
        query = parse_query(
            "SELECT * FROM orders o WHERE o.status <> 1", catalog
        )
        assert query.graph.relations[0].selections[0].selectivity == pytest.approx(
            0.9
        )

    def test_star_projection(self, catalog):
        query = parse_query("SELECT * FROM regions r", catalog)
        assert query.metadata["projections"] is None


class TestParallelPredicateFolding:
    def test_two_predicates_fold_into_one_edge(self, catalog):
        sql = """
            SELECT * FROM orders o, customers c
            WHERE o.customer_id = c.id AND o.product_id = c.region_id
        """
        query = parse_query(sql, catalog)
        assert len(query.graph.predicates) == 1
        predicate = query.graph.predicates[0]
        # Combined selectivity = 1/50000 * 1/10000.
        assert predicate.selectivity == pytest.approx(1 / (50_000 * 10_000))


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql, message",
        [
            ("FROM orders o", "expected SELECT"),
            ("SELECT * orders o", "expected FROM"),
            ("SELECT * FROM orders o WHERE o.a < c.b", "only equi-joins"),
            ("SELECT * FROM orders o WHERE o.a = x.b", "unknown table or alias"),
            ("SELECT * FROM orders o, orders o WHERE o.a = o.b", "duplicate table alias"),
            ("SELECT * FROM orders o WHERE o.a = o.b", "self-join"),
            ("SELECT * FROM orders o WHERE o.a =", "unexpected end"),
            ("SELECT * FROM orders o extra_tokens o.a", "trailing|expected"),
        ],
    )
    def test_rejects(self, catalog, sql, message):
        with pytest.raises(ParseError, match=message):
            parse_query(sql, catalog)

    def test_unknown_table_is_key_error(self, catalog):
        with pytest.raises(KeyError):
            parse_query("SELECT * FROM ghosts g", catalog)

    def test_bad_character(self, catalog):
        with pytest.raises(ParseError, match="tokenize"):
            parse_query("SELECT * FROM orders o WHERE o.a = %%%", catalog)
