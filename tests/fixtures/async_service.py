"""ASYNC001 demonstration fixture (never imported by product code).

``tests/test_analysis_interproc.py`` runs detlint over this file and
asserts the *flagged* coroutines trip ASYNC001 — including the blocking
call hidden two synchronous frames down — while the *clean* variants,
which await instead of blocking, do not.  The file is kept importable
(no side effects at import time) so the fixture doubles as living
documentation of the rule.
"""

from __future__ import annotations

import asyncio
import time


def _load_plan_text(path: str) -> str:
    # Synchronous file IO: fine from sync code, poison under async.
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _throttle() -> None:
    time.sleep(0.01)


def _throttled_read(path: str) -> str:
    _throttle()
    return _load_plan_text(path)


async def serve_plan_blocking(path: str) -> str:
    """FLAGGED: blocks the event loop through a synchronous helper."""
    return _throttled_read(path)


async def sleepy_heartbeat() -> None:
    """FLAGGED: a direct time.sleep in a coroutine."""
    time.sleep(0.5)


async def serve_plan_clean(path: str) -> str:
    """Clean: the blocking read is pushed onto a worker thread."""
    return await asyncio.to_thread(_throttled_read, path)


async def clean_heartbeat() -> None:
    """Clean: awaits the async sleep instead of stalling the loop."""
    await asyncio.sleep(0.5)
