"""Tests for incumbent-lineage reconstruction (repro.obs.provenance)."""

from __future__ import annotations

import pytest

from repro.core.optimizer import optimize
from repro.obs import (
    RecordingTracer,
    TraceEvent,
    build_provenance,
    provenance_json,
    render_provenance,
    write_trace,
)
from repro.obs.provenance import (
    SOURCE_PREPASS,
    events_for_last_run,
)
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query


@pytest.fixture(scope="module")
def query():
    return generate_query(DEFAULT_SPEC, n_joins=8, seed=7)


def test_chain_is_strictly_improving_and_ends_at_result(query) -> None:
    tracer = RecordingTracer()
    result = optimize(query, method="IAI", seed=11, trace=tracer)
    provenance = build_provenance(tracer.events)
    costs = [step.cost for step in provenance.steps]
    assert costs, "no incumbent updates reconstructed"
    assert costs == sorted(costs, reverse=True)
    assert len(set(costs)) == len(costs), "chain repeats a cost"
    assert costs[-1] == result.cost
    assert provenance.final_cost == result.cost
    assert provenance.final_units == result.units_spent
    # Improvements link consecutive steps exactly.
    for earlier, later in zip(provenance.steps, provenance.steps[1:]):
        assert later.improvement == pytest.approx(earlier.cost - later.cost)
    assert provenance.steps[0].improvement is None


def test_attached_to_result_only_when_tracing(query) -> None:
    untraced = optimize(query, method="SA", seed=4)
    assert untraced.provenance is None
    tracer = RecordingTracer()
    traced = optimize(query, method="SA", seed=4, trace=tracer)
    assert traced.provenance is not None
    assert traced.provenance == build_provenance(tracer.events)
    # The field is excluded from equality: traced == untraced holds.
    assert traced == untraced


def test_workers_invariant_and_byte_stable(query) -> None:
    reports = {}
    for workers in (1, 3):
        tracer = RecordingTracer()
        result = optimize(
            query,
            method="II",
            seed=5,
            workers=workers,
            restarts=3,
            trace=tracer,
        )
        provenance = build_provenance(tracer.events)
        assert result.provenance == provenance
        reports[workers] = provenance_json(provenance)
    assert reports[1] == reports[3]


def test_parallel_steps_attribute_worker_and_restart(query) -> None:
    tracer = RecordingTracer()
    optimize(query, method="II", seed=5, workers=2, restarts=3, trace=tracer)
    provenance = build_provenance(tracer.events)
    attributed = [s for s in provenance.steps if s.worker is not None]
    assert attributed, "no incumbent step attributed to a restart"
    for step in attributed:
        # `worker` is the orchestrator's merge attribution (one of the
        # 3 fanned-out restarts); `restart` is II's own inner random
        # restart counter within that stream.
        assert step.worker in {0, 1, 2}
        assert step.restart is not None and step.restart >= 0
    text = render_provenance(provenance)
    assert "[restart 0]" in text


def test_prepass_floor_can_seed_the_chain() -> None:
    events = [
        TraceEvent(seq=0, clock=0.0, kind="run_start", data={"method": "II"}),
        TraceEvent(
            seq=1,
            clock=1.0,
            kind="bound",
            data={"kind": "prepass_floor", "value": 50.0},
        ),
        TraceEvent(seq=2, clock=2.0, kind="best", data={"cost": 80.0}),
        TraceEvent(seq=3, clock=3.0, kind="best", data={"cost": 40.0}),
        TraceEvent(seq=4, clock=4.0, kind="run_end", data={"cost": 40.0}),
    ]
    provenance = build_provenance(events)
    assert [step.cost for step in provenance.steps] == [50.0, 40.0]
    assert provenance.steps[0].source == SOURCE_PREPASS


def test_last_run_only_slices_multi_run_traces(query) -> None:
    tracer = RecordingTracer()
    optimize(query, method="II", seed=1, trace=tracer)
    first_cost = build_provenance(tracer.events).final_cost
    second = optimize(query, method="SA", seed=2, trace=tracer)
    provenance = build_provenance(tracer.events)
    assert provenance.final_cost == second.cost
    for step in provenance.steps:
        assert step.method == "SA"
    # The helper finds the balanced span even with nested sub-runs.
    span = events_for_last_run(tracer.events)
    assert span[0].kind == "run_start"
    assert span[0].data.get("method") == "SA"
    assert first_cost is not None


def test_explain_trace_cli(query, tmp_path, capsys) -> None:
    from repro.cli import main as repro_main

    tracer = RecordingTracer()
    optimize(query, method="IAI", seed=11, trace=tracer)
    path = str(tmp_path / "run.jsonl")
    write_trace(tracer.events, path)
    assert repro_main(["explain-trace", path]) == 0
    out = capsys.readouterr().out
    assert "plan provenance" in out
    assert "final: cost" in out
    assert repro_main(["explain-trace", path, "--format", "json"]) == 0
    out = capsys.readouterr().out
    import json

    parsed = json.loads(out)
    assert parsed["steps"]


def test_explain_trace_cli_missing_file(tmp_path, capsys) -> None:
    from repro.cli import main as repro_main

    assert repro_main(["explain-trace", str(tmp_path / "no.jsonl")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "Traceback" not in err


def test_render_mentions_chain_and_final(query) -> None:
    tracer = RecordingTracer()
    optimize(query, method="II", seed=8, trace=tracer)
    text = render_provenance(build_provenance(tracer.events))
    assert "incumbent update" in text
    assert "final: cost" in text
