"""Tests for the budget-charging evaluator."""

import pytest

from repro.core.budget import Budget, BudgetExhausted
from repro.core.state import Evaluator
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder


@pytest.fixture
def evaluator(chain):
    return Evaluator(chain, MainMemoryCostModel(), Budget(limit=100))


class TestEvaluate:
    def test_charges_n_joins_units(self, evaluator, chain):
        evaluator.evaluate(JoinOrder([0, 1, 2, 3, 4]))
        assert evaluator.budget.spent == chain.n_joins

    def test_counts_evaluations(self, evaluator):
        evaluator.evaluate(JoinOrder([0, 1, 2, 3, 4]))
        evaluator.evaluate(JoinOrder([4, 3, 2, 1, 0]))
        assert evaluator.n_evaluations == 2

    def test_matches_model_cost(self, evaluator, chain):
        order = JoinOrder([0, 1, 2, 3, 4])
        cost = evaluator.evaluate(order)
        assert cost == pytest.approx(MainMemoryCostModel().plan_cost(order, chain))

    def test_raises_when_budget_out(self, chain):
        evaluator = Evaluator(chain, MainMemoryCostModel(), Budget(limit=7))
        evaluator.evaluate(JoinOrder([0, 1, 2, 3, 4]))  # 4 units
        with pytest.raises(BudgetExhausted):
            evaluator.evaluate(JoinOrder([4, 3, 2, 1, 0]))  # would be 8


class TestBestTracking:
    def test_best_is_minimum(self, evaluator):
        cost_a = evaluator.evaluate(JoinOrder([0, 1, 2, 3, 4]))
        cost_b = evaluator.evaluate(JoinOrder([4, 3, 2, 1, 0]))
        assert evaluator.best.cost == min(cost_a, cost_b)

    def test_trajectory_records_improvements_only(self, evaluator):
        evaluator.evaluate(JoinOrder([0, 1, 2, 3, 4]))
        first_len = len(evaluator.trajectory)
        evaluator.evaluate(JoinOrder([0, 1, 2, 3, 4]))  # same cost: no entry
        assert len(evaluator.trajectory) == first_len

    def test_trajectory_costs_decrease(self, evaluator):
        for order in (
            JoinOrder([0, 1, 2, 3, 4]),
            JoinOrder([4, 3, 2, 1, 0]),
            JoinOrder([2, 1, 0, 3, 4]),
            JoinOrder([2, 3, 4, 1, 0]),
        ):
            evaluator.evaluate(order)
        costs = [cost for _, cost in evaluator.trajectory]
        assert costs == sorted(costs, reverse=True)
        spents = [spent for spent, _ in evaluator.trajectory]
        assert spents == sorted(spents)

    def test_best_cost_within(self, evaluator):
        evaluator.evaluate(JoinOrder([0, 1, 2, 3, 4]))
        evaluator.evaluate(JoinOrder([4, 3, 2, 1, 0]))
        final = evaluator.best.cost
        assert evaluator.best_cost_within(1e9) == final
        assert evaluator.best_cost_within(0.0) is None
        first_spent, first_cost = evaluator.trajectory[0]
        assert evaluator.best_cost_within(first_spent) == first_cost
