"""Unit tests for the repro.obs metrics registry and trace writer."""

from __future__ import annotations

import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    Metrics,
    TraceEvent,
    TraceFormatError,
    read_metrics,
    read_trace,
    write_metrics,
    write_trace,
)


# ---------------------------------------------------------------------------
# Histogram


def test_histogram_observe_and_mean() -> None:
    histogram = Histogram()
    for value in (0.5, 5.0, 50.0):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.total == 55.5
    assert histogram.mean == pytest.approx(18.5)
    assert histogram.minimum == 0.5
    assert histogram.maximum == 50.0


def test_histogram_buckets_must_end_with_inf() -> None:
    with pytest.raises(ValueError):
        Histogram(buckets=(1.0, 10.0))


def test_histogram_merge_requires_same_buckets() -> None:
    left = Histogram()
    right = Histogram(buckets=(1.0, math.inf))
    with pytest.raises(ValueError):
        left.merge(right)


def test_histogram_merge_adds_bucketwise() -> None:
    left, right = Histogram(), Histogram()
    left.observe(1.0)
    right.observe(100.0)
    right.observe(0.001)
    left.merge(right)
    assert left.count == 3
    assert left.minimum == 0.001
    assert left.maximum == 100.0
    assert sum(left.counts) == 3


def test_default_buckets_are_powers_of_ten_plus_inf() -> None:
    assert DEFAULT_BUCKETS[-1] == math.inf
    assert DEFAULT_BUCKETS[0] == pytest.approx(1e-3)
    assert all(b > a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))


# ---------------------------------------------------------------------------
# Metrics registry


def test_metrics_merge_semantics() -> None:
    left, right = Metrics(), Metrics()
    left.inc("evaluations", 3)
    left.gauge("best_cost", 10.0)
    left.observe("depth", 2.0)
    right.inc("evaluations", 4)
    right.gauge("best_cost", 7.0)
    right.observe("depth", 6.0)
    left.merge(right)
    assert left.counter("evaluations") == 7.0
    assert left.gauges["best_cost"] == 7.0  # last-writer wins
    assert left.histograms["depth"].count == 2


def test_metrics_snapshot_round_trip() -> None:
    metrics = Metrics()
    metrics.inc("b_counter")
    metrics.inc("a_counter", 2.5)
    metrics.gauge("g", -1.0)
    metrics.observe("h", 4.0)
    snapshot = metrics.snapshot()
    assert list(snapshot["counters"]) == ["a_counter", "b_counter"]
    rebuilt = Metrics.from_snapshot(snapshot)
    assert rebuilt.snapshot() == snapshot


def test_metrics_from_snapshot_rejects_foreign_buckets() -> None:
    snapshot = {
        "histograms": {"h": {"count": 1, "sum": 1.0, "min": 1.0, "max": 1.0,
                             "buckets": {"7.5": 1}}},
    }
    with pytest.raises(ValueError):
        Metrics.from_snapshot(snapshot)


def test_metrics_json_file_round_trip(tmp_path) -> None:
    metrics = Metrics()
    metrics.inc("evaluations", 12)
    metrics.gauge("best_cost", 3.5)
    path = tmp_path / "metrics.json"
    write_metrics(metrics, str(path))
    assert read_metrics(str(path)).snapshot() == metrics.snapshot()


# ---------------------------------------------------------------------------
# Trace writer format errors


def test_iter_trace_rejects_missing_header(tmp_path) -> None:
    path = tmp_path / "bad.jsonl"
    path.write_text('{"seq": 0, "clock": 0.0, "kind": "move"}\n')
    with pytest.raises(TraceFormatError):
        read_trace(str(path))


def test_iter_trace_rejects_future_version(tmp_path) -> None:
    path = tmp_path / "future.jsonl"
    path.write_text('{"kind": "trace_header", "version": 999, "meta": {}}\n')
    with pytest.raises(TraceFormatError):
        read_trace(str(path))


def test_write_trace_preserves_event_payload(tmp_path) -> None:
    events = [
        TraceEvent(seq=0, clock=0.0, kind="run_start", data={"seed": 1}),
        TraceEvent(seq=1, clock=2.5, kind="move",
                   data={"outcome": "accepted", "cost": 9.0}, worker=3),
    ]
    path = tmp_path / "t.jsonl"
    write_trace(events, str(path))
    loaded = read_trace(str(path))
    assert list(loaded) == events
    assert loaded[1].worker == 3
    assert loaded[1].data["outcome"] == "accepted"
