"""Tests for join predicates."""

import pytest

from repro.catalog.predicates import JoinPredicate


class TestJoinPredicate:
    def test_selectivity_is_reciprocal_of_max_distinct(self):
        predicate = JoinPredicate(0, 1, left_distinct=100, right_distinct=40)
        assert predicate.selectivity == pytest.approx(1 / 100)

    def test_selectivity_symmetric_in_sides(self):
        a = JoinPredicate(0, 1, 100, 40)
        b = JoinPredicate(0, 1, 40, 100)
        assert a.selectivity == b.selectivity

    def test_distinct_values_by_endpoint(self):
        predicate = JoinPredicate(2, 5, 10, 20)
        assert predicate.distinct_values(2) == 10
        assert predicate.distinct_values(5) == 20

    def test_distinct_values_unknown_endpoint(self):
        with pytest.raises(KeyError):
            JoinPredicate(2, 5, 10, 20).distinct_values(3)

    def test_other_endpoint(self):
        predicate = JoinPredicate(2, 5, 10, 20)
        assert predicate.other(2) == 5
        assert predicate.other(5) == 2

    def test_other_unknown_endpoint(self):
        with pytest.raises(KeyError):
            JoinPredicate(2, 5, 10, 20).other(7)

    def test_endpoints(self):
        assert JoinPredicate(2, 5, 10, 20).endpoints == frozenset({2, 5})

    def test_rejects_self_join(self):
        with pytest.raises(ValueError, match="self-join"):
            JoinPredicate(3, 3, 10, 10)

    def test_rejects_nonpositive_distinct(self):
        with pytest.raises(ValueError):
            JoinPredicate(0, 1, 0, 10)
