"""Differential tests for the repro.obs trace layer.

The central contract: tracing is *observation only*.  Enabling a trace
must change neither the returned plan nor any RNG draw — a traced run is
bit-identical to an untraced one — and the trace itself must be a pure
function of the seed (two same-seed runs serialize to identical bytes).
"""

from __future__ import annotations

import filecmp
import json

import pytest

from repro.core.combinations import PAPER_METHODS
from repro.core.optimizer import OptimizationResult, optimize
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.obs import (
    NULL_TRACER,
    RecordingTracer,
    TraceEvent,
    diff_traces,
    iter_trace,
    read_trace,
    read_trace_meta,
    summarize_events,
    write_trace,
)
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query

MODELS = {
    "memory": MainMemoryCostModel,
    "disk": DiskCostModel,
}


@pytest.fixture(scope="module")
def query():
    return generate_query(DEFAULT_SPEC, n_joins=8, seed=7)


def result_fingerprint(result: OptimizationResult) -> tuple:
    """Every result field whose value reflects the RNG stream."""
    return (
        result.method,
        result.order.positions,
        result.cost,
        result.units_spent,
        result.n_evaluations,
        result.trajectory,
        result.degraded,
    )


# ---------------------------------------------------------------------------
# Traced == untraced, for every method and both cost models


@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("method", PAPER_METHODS)
def test_trace_changes_nothing(query, method, model_name) -> None:
    model = MODELS[model_name]()
    untraced = optimize(query, method=method, model=model, seed=11)
    tracer = RecordingTracer()
    traced = optimize(query, method=method, model=model, seed=11, trace=tracer)
    assert result_fingerprint(traced) == result_fingerprint(untraced)
    assert tracer.events, "tracer recorded no events"
    assert tracer.events[0].kind == "run_start"
    assert tracer.events[-1].kind == "run_end"


@pytest.mark.parametrize("method", ("II", "SA", "IAI"))
def test_trace_changes_nothing_resilient(query, method) -> None:
    untraced = optimize(query, method=method, seed=3, resilient=True)
    tracer = RecordingTracer()
    traced = optimize(
        query, method=method, seed=3, resilient=True, trace=tracer
    )
    assert result_fingerprint(traced) == result_fingerprint(untraced)


# ---------------------------------------------------------------------------
# Parallel: workers=4 trace identical to workers=1


@pytest.mark.parametrize("method", ("II", "SA"))
def test_worker_count_does_not_change_trace(query, method) -> None:
    traces = {}
    results = {}
    for workers in (1, 4):
        tracer = RecordingTracer()
        results[workers] = optimize(
            query,
            method=method,
            seed=5,
            workers=workers,
            restarts=4,
            trace=tracer,
        )
        traces[workers] = tracer.events
    assert result_fingerprint(results[1]) == result_fingerprint(results[4])
    assert diff_traces(traces[1], traces[4]) == []


def test_worker_count_does_not_change_result(query) -> None:
    for workers in (1, 4):
        untraced = optimize(
            query, method="II", seed=9, workers=workers, restarts=4
        )
        tracer = RecordingTracer()
        traced = optimize(
            query,
            method="II",
            seed=9,
            workers=workers,
            restarts=4,
            trace=tracer,
        )
        assert result_fingerprint(traced) == result_fingerprint(untraced)


# ---------------------------------------------------------------------------
# Determinism of the trace itself


def test_same_seed_traces_are_identical(query) -> None:
    first = RecordingTracer()
    second = RecordingTracer()
    optimize(query, method="SA", seed=13, trace=first)
    optimize(query, method="SA", seed=13, trace=second)
    assert diff_traces(first.events, second.events) == []
    assert first.metrics.snapshot() == second.metrics.snapshot()


def test_same_seed_trace_files_are_byte_identical(query, tmp_path) -> None:
    paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
    for path in paths:
        optimize(query, method="II", seed=2, trace=str(path))
    assert filecmp.cmp(paths[0], paths[1], shallow=False)


def test_event_sequence_and_clock_are_monotonic(query) -> None:
    tracer = RecordingTracer()
    optimize(query, method="IAI", seed=1, trace=tracer)
    seqs = [event.seq for event in tracer.events]
    assert seqs == list(range(len(seqs)))
    clocks = [event.clock for event in tracer.events]
    assert all(b >= a for a, b in zip(clocks, clocks[1:]))


# ---------------------------------------------------------------------------
# Schema round-trip: emit → JSONL → read → summarize


def test_trace_round_trip(query, tmp_path) -> None:
    tracer = RecordingTracer()
    optimize(query, method="SA", seed=4, trace=tracer)
    path = tmp_path / "trace.jsonl"
    write_trace(tracer.events, str(path), meta={"method": "SA"})
    assert read_trace_meta(str(path)) == {"method": "SA"}
    loaded = read_trace(str(path))
    assert list(loaded) == list(tracer.events)
    with open(path, "r", encoding="utf-8") as handle:
        streamed = list(iter_trace(handle))
    assert streamed == list(tracer.events)

    summary = summarize_events(loaded)
    assert summary.n_events == len(tracer.events)
    assert summary.final_cost is not None
    assert summary.kinds["run_start"] == 1
    assert summary.kinds["run_end"] == 1
    assert sum(summary.move_outcomes.values()) == summary.kinds.get("move", 0)


def test_trace_file_is_valid_jsonl(query, tmp_path) -> None:
    path = tmp_path / "trace.jsonl"
    optimize(query, method="II", seed=6, trace=str(path))
    with open(path, "r", encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    assert lines[0]["kind"] == "trace_header"
    assert lines[0]["version"] == 1
    for record in lines[1:]:
        event = TraceEvent.from_json_dict(record)
        assert event.kind


# ---------------------------------------------------------------------------
# The no-op backend


def test_null_tracer_is_shared_and_silent(query) -> None:
    before = NULL_TRACER.metrics.snapshot()
    result = optimize(query, method="II", seed=8)
    assert result.cost > 0
    assert NULL_TRACER.metrics.snapshot() == before
    assert not NULL_TRACER.enabled
