"""Tests for the star/snowflake schema generators."""

import pytest

from repro.plans.validity import is_valid_order
from repro.plans.join_order import JoinOrder
from repro.workloads.schemas import (
    StarSchemaSpec,
    generate_star_benchmark,
    generate_star_query,
)


class TestStarSchemaSpec:
    def test_n_joins_star(self):
        assert StarSchemaSpec(n_dimensions=8, hierarchy_depth=1).n_joins == 8

    def test_n_joins_snowflake(self):
        assert StarSchemaSpec(n_dimensions=5, hierarchy_depth=3).n_joins == 15

    def test_rejects_bad_shrink(self):
        with pytest.raises(ValueError):
            StarSchemaSpec(shrink_per_level=0.0)

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            StarSchemaSpec(n_dimensions=0)


class TestGenerateStarQuery:
    def test_star_shape(self):
        query = generate_star_query(StarSchemaSpec(n_dimensions=6), seed=1)
        graph = query.graph
        assert graph.n_relations == 7
        # The fact table joins every dimension.
        assert graph.degree(0) == 6
        assert all(graph.degree(i) == 1 for i in range(1, 7))

    def test_snowflake_shape(self):
        spec = StarSchemaSpec(n_dimensions=3, hierarchy_depth=2)
        query = generate_star_query(spec, seed=1)
        graph = query.graph
        assert graph.n_relations == 1 + 6
        assert graph.degree(0) == 3  # fact joins only level-0 dimensions
        assert query.n_joins == 6

    def test_connected_and_valid_identity_like_order(self):
        query = generate_star_query(StarSchemaSpec(n_dimensions=5), seed=2)
        assert query.graph.is_connected
        order = JoinOrder(list(range(query.graph.n_relations)))
        assert is_valid_order(order, query.graph)

    def test_foreign_key_selectivity(self):
        """J = 1/|dimension| for a key/foreign-key join."""
        query = generate_star_query(
            StarSchemaSpec(n_dimensions=2, fact_selectivity=1.0), seed=3
        )
        graph = query.graph
        for dimension in (1, 2):
            predicate = graph.edge(0, dimension)
            assert predicate.selectivity == pytest.approx(
                1.0 / graph.relation(dimension).base_cardinality
            )

    def test_fact_selection_applied(self):
        query = generate_star_query(StarSchemaSpec(fact_selectivity=0.2), seed=0)
        fact = query.graph.relation(0)
        assert fact.cardinality == pytest.approx(fact.base_cardinality * 0.2)

    def test_deterministic(self):
        spec = StarSchemaSpec()
        a = generate_star_query(spec, seed=9)
        b = generate_star_query(spec, seed=9)
        assert [r.base_cardinality for r in a.graph.relations] == [
            r.base_cardinality for r in b.graph.relations
        ]

    def test_metadata(self):
        query = generate_star_query(
            StarSchemaSpec(n_dimensions=4, hierarchy_depth=2), seed=0
        )
        assert query.metadata["schema"] == "snowflake"
        assert "snowflake" in query.name

    def test_optimizable(self):
        from repro.core.optimizer import optimize

        query = generate_star_query(StarSchemaSpec(n_dimensions=10), seed=4)
        result = optimize(query, method="IAI", time_factor=1, units_per_n2=5)
        assert is_valid_order(result.order, query.graph)
        # A sane plan starts from the (filtered) fact table or a small
        # dimension, never from the raw fact cross space: cost is finite.
        assert result.cost > 0


class TestGenerateStarBenchmark:
    def test_count_and_distinct_seeds(self):
        queries = generate_star_benchmark(StarSchemaSpec(), n_queries=4, seed=1)
        assert len(queries) == 4
        assert len({q.seed for q in queries}) == 4
