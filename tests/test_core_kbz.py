"""Tests for the KBZ heuristic (algorithms R, T, G)."""

import pytest

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.core.augmentation import AugmentationCriterion
from repro.core.budget import Budget
from repro.core.kbz import (
    _Module,
    kbz_order_for_root,
    kbz_orders,
    kbz_root_sequence,
    kbz_spanning_tree,
)
from repro.cost.memory import MainMemoryCostModel
from repro.plans.validity import is_valid_order, valid_orders

from tests.conftest import chain_graph, make_relations, star_graph


class TestModule:
    def test_rank(self):
        module = _Module((0,), growth=3.0, cost=4.0)
        assert module.rank == pytest.approx(0.5)

    def test_negative_rank_for_shrinking_join(self):
        module = _Module((0,), growth=0.5, cost=1.0)
        assert module.rank < 0

    def test_asi_combination(self):
        a = _Module((0,), growth=2.0, cost=3.0)
        b = _Module((1,), growth=5.0, cost=7.0)
        combined = a.combined_with(b)
        assert combined.relations == (0, 1)
        assert combined.growth == pytest.approx(10.0)
        assert combined.cost == pytest.approx(3.0 + 2.0 * 7.0)

    def test_combination_is_associative_in_value(self):
        a = _Module((0,), 2.0, 3.0)
        b = _Module((1,), 5.0, 7.0)
        c = _Module((2,), 0.5, 1.0)
        left = a.combined_with(b).combined_with(c)
        right = a.combined_with(b.combined_with(c))
        assert left.growth == pytest.approx(right.growth)
        assert left.cost == pytest.approx(right.cost)


class TestSpanningTree:
    def test_tree_covers_all_vertices(self, cycle):
        tree = kbz_spanning_tree(cycle)
        degree_sum = sum(len(neighbors) for neighbors in tree.values())
        assert degree_sum == 2 * (cycle.n_relations - 1)

    def test_chain_tree_is_the_chain(self, chain):
        tree = kbz_spanning_tree(chain)
        assert sorted(tree[0]) == [1]
        assert sorted(tree[1]) == [0, 2]

    def test_selectivity_weight_drops_weakest_cycle_edge(self):
        relations = make_relations([100, 100, 100])
        predicates = [
            JoinPredicate(0, 1, 50, 50),   # J = 1/50
            JoinPredicate(1, 2, 80, 80),   # J = 1/80
            JoinPredicate(0, 2, 2, 2),     # J = 1/2 (weakest: dropped)
        ]
        graph = JoinGraph(relations, predicates)
        tree = kbz_spanning_tree(graph, AugmentationCriterion.MIN_SELECTIVITY)
        assert 2 not in tree[0]

    def test_rejects_disconnected(self, two_components):
        with pytest.raises(ValueError, match="connected"):
            kbz_spanning_tree(two_components)

    def test_rejects_bad_criterion(self, chain):
        with pytest.raises(ValueError):
            kbz_spanning_tree(chain, AugmentationCriterion.MIN_CARDINALITY)

    @pytest.mark.parametrize(
        "criterion",
        [
            AugmentationCriterion.MIN_SELECTIVITY,
            AugmentationCriterion.MIN_RESULT_SIZE,
            AugmentationCriterion.MIN_RANK,
        ],
    )
    def test_all_weights_produce_trees(self, cycle, criterion):
        tree = kbz_spanning_tree(cycle, criterion)
        assert sum(len(n) for n in tree.values()) == 2 * (cycle.n_relations - 1)

    def test_budget_charged(self, cycle):
        budget = Budget(limit=1e6)
        kbz_spanning_tree(cycle, budget=budget)
        assert budget.spent > 0


class TestAlgorithmR:
    def test_root_is_first(self, chain):
        tree = kbz_spanning_tree(chain)
        for root in range(chain.n_relations):
            order = kbz_order_for_root(chain, tree, root)
            assert order[0] == root

    def test_orders_are_valid(self, cycle):
        tree = kbz_spanning_tree(cycle)
        for root in range(cycle.n_relations):
            order = kbz_order_for_root(cycle, tree, root)
            assert is_valid_order(order, cycle)

    def test_chain_rooted_at_end_is_the_chain(self, chain):
        """A path rooted at an end admits only one tree-consistent order."""
        tree = kbz_spanning_tree(chain)
        order = kbz_order_for_root(chain, tree, 0)
        assert order.positions == (0, 1, 2, 3, 4)

    def test_star_orders_leaves_by_rank(self):
        graph = star_graph([1000, 100, 200, 50, 400])
        tree = kbz_spanning_tree(graph)
        order = kbz_order_for_root(graph, tree, 0)
        # From the centre, leaves must appear in increasing rank order.
        def leaf_rank(leaf: int) -> float:
            predicate = graph.edge(0, leaf)
            growth = predicate.selectivity * graph.cardinality(leaf)
            cost = 0.5 * graph.cardinality(leaf) / predicate.distinct_values(leaf)
            return (growth - 1.0) / cost

        ranks = [leaf_rank(leaf) for leaf in order.positions[1:]]
        assert ranks == sorted(ranks)

    def test_optimal_on_rooted_star(self):
        """Algorithm R beats or ties every tree-consistent order on a star
        rooted at its centre (optimality of rank ordering)."""
        graph = star_graph([1000, 100, 200, 50, 400])
        tree = kbz_spanning_tree(graph)
        model = MainMemoryCostModel()
        order = kbz_order_for_root(graph, tree, 0)
        kbz_cost = model.plan_cost(order, graph)
        best = min(
            model.plan_cost(o, graph)
            for o in valid_orders(graph)
            if o[0] == 0
        )
        # Rank optimality holds for ASI cost functions; our hash-join model
        # is not exactly ASI, so allow a small slack.
        assert kbz_cost <= best * 1.5


class TestAlgorithmsGT:
    def test_one_order_per_root(self, cycle):
        orders = list(kbz_orders(cycle))
        assert len(orders) == cycle.n_relations
        assert {order[0] for order in orders} == set(range(cycle.n_relations))

    def test_root_sequence_by_size(self, star):
        sequence = kbz_root_sequence(star)
        cards = [star.cardinality(i) for i in sequence]
        assert cards == sorted(cards)

    def test_all_orders_valid_on_generated_query(self, medium_query):
        for order in kbz_orders(medium_query.graph):
            assert is_valid_order(order, medium_query.graph)

    def test_budget_charged_for_rank_work(self, medium_query):
        budget = Budget(limit=1e9)
        list(kbz_orders(medium_query.graph, budget=budget))
        assert budget.spent > 0
