"""Tests for executing bushy trees on the engine."""

import random

import pytest

from repro.engine.datagen import generate_database
from repro.engine.executor import execute_bushy, execute_order
from repro.plans.bushy import linear_to_bushy, random_bushy_tree
from repro.plans.join_order import JoinOrder
from repro.plans.validity import random_valid_order
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query


@pytest.fixture(scope="module")
def setup():
    query = generate_query(DEFAULT_SPEC, n_joins=6, seed=5)
    tables = generate_database(query.graph, seed=3, max_rows=300)
    return query.graph, tables


class TestExecuteBushy:
    def test_left_deep_matches_linear_execution(self, setup):
        graph, tables = setup
        order = random_valid_order(graph, random.Random(1))
        linear = execute_order(order, graph, tables)
        bushy = execute_bushy(linear_to_bushy(order), graph, tables)
        assert bushy.n_rows == linear.n_rows

    @pytest.mark.parametrize("seed", range(5))
    def test_all_shapes_same_final_size(self, setup, seed):
        """Join reordering/reassociation never changes the result size."""
        graph, tables = setup
        reference = execute_order(
            random_valid_order(graph, random.Random(0)), graph, tables
        ).n_rows
        tree = random_bushy_tree(graph, random.Random(seed))
        assert execute_bushy(tree, graph, tables).n_rows == reference

    def test_leaf_execution(self, setup):
        graph, tables = setup
        from repro.plans.bushy import leaf

        result = execute_bushy(leaf(0), graph, tables)
        assert result.n_rows == tables[0].n_rows

    def test_column_set_is_union(self, setup):
        graph, tables = setup
        order = JoinOrder(
            random_valid_order(graph, random.Random(2)).positions
        )
        tree = linear_to_bushy(order)
        result = execute_bushy(tree, graph, tables)
        expected = set()
        for index in range(graph.n_relations):
            expected.update(tables[index].column_names)
        assert set(result.column_names) == expected
