"""Tests for the move set over valid join orders."""

import random

import pytest

from repro.core.moves import MoveSet, NoValidMove
from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order, valid_orders

from tests.conftest import chain_graph, star_graph


class TestPropose:
    def test_swap_only(self):
        move_set = MoveSet(swap_probability=1.0)
        order = JoinOrder([0, 1, 2, 3])
        rng = random.Random(0)
        for _ in range(20):
            candidate = move_set.propose(order, rng)
            # A swap differs from the original in exactly two positions.
            diffs = sum(
                1 for a, b in zip(order.positions, candidate.positions) if a != b
            )
            assert diffs == 2

    def test_insert_only_is_permutation(self):
        move_set = MoveSet(swap_probability=0.0)
        order = JoinOrder([0, 1, 2, 3])
        rng = random.Random(0)
        for _ in range(20):
            candidate = move_set.propose(order, rng)
            assert sorted(candidate.positions) == [0, 1, 2, 3]
            assert candidate != order

    def test_too_short_raises(self):
        with pytest.raises(NoValidMove):
            MoveSet().propose(JoinOrder([0]), random.Random(0))


class TestRandomNeighbor:
    @pytest.mark.parametrize("seed", range(8))
    def test_always_valid(self, chain, seed):
        move_set = MoveSet()
        rng = random.Random(seed)
        order = JoinOrder([0, 1, 2, 3, 4])
        for _ in range(30):
            order = move_set.random_neighbor(order, chain, rng)
            assert is_valid_order(order, chain)

    def test_differs_from_input(self, star):
        move_set = MoveSet()
        rng = random.Random(1)
        order = JoinOrder([0, 1, 2, 3, 4])
        assert move_set.random_neighbor(order, star, rng) != order

    def test_gives_up_when_no_neighbor_exists(self):
        # A 2-chain has exactly two valid orders; both are each other's
        # neighbors, so moves always succeed.  A single pathological case
        # is a graph whose only valid order is unique: impossible with
        # n >= 2, so force failure with max_tries=0 rejected instead.
        with pytest.raises(ValueError):
            MoveSet(max_tries=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            MoveSet(swap_probability=1.5)


class TestReachability:
    def test_moves_reach_every_valid_order(self):
        """BFS over the move graph covers the whole valid space."""
        graph = star_graph([50, 10, 20, 30])
        move_set = MoveSet()
        all_valid = set(valid_orders(graph))
        start = next(iter(all_valid))
        seen = {start}
        frontier = [start]
        while frontier:
            order = frontier.pop()
            for neighbor in move_set.neighbors(order, graph):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert seen == all_valid

    def test_neighbors_are_valid_and_distinct(self, chain):
        move_set = MoveSet()
        order = JoinOrder([0, 1, 2, 3, 4])
        neighbors = list(move_set.neighbors(order, chain))
        assert len(neighbors) == len(set(neighbors))
        assert all(is_valid_order(n, chain) for n in neighbors)
        assert order not in neighbors
