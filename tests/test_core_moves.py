"""Tests for the move set over valid join orders."""

import random

import pytest

import repro.core.moves as moves_module
from repro.core.moves import Move, MoveSet, NoValidMove
from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order, valid_orders

from tests.conftest import chain_graph, star_graph


class TestPropose:
    def test_swap_only(self):
        move_set = MoveSet(swap_probability=1.0)
        order = JoinOrder([0, 1, 2, 3])
        rng = random.Random(0)
        for _ in range(20):
            candidate = move_set.propose(order, rng)
            # A swap differs from the original in exactly two positions.
            diffs = sum(
                1 for a, b in zip(order.positions, candidate.positions) if a != b
            )
            assert diffs == 2

    def test_insert_only_is_permutation(self):
        move_set = MoveSet(swap_probability=0.0)
        order = JoinOrder([0, 1, 2, 3])
        rng = random.Random(0)
        for _ in range(20):
            candidate = move_set.propose(order, rng)
            assert sorted(candidate.positions) == [0, 1, 2, 3]
            assert candidate != order

    def test_too_short_raises(self):
        with pytest.raises(NoValidMove):
            MoveSet().propose(JoinOrder([0]), random.Random(0))


class TestRandomNeighbor:
    @pytest.mark.parametrize("seed", range(8))
    def test_always_valid(self, chain, seed):
        move_set = MoveSet()
        rng = random.Random(seed)
        order = JoinOrder([0, 1, 2, 3, 4])
        for _ in range(30):
            order = move_set.random_neighbor(order, chain, rng)
            assert is_valid_order(order, chain)

    def test_differs_from_input(self, star):
        move_set = MoveSet()
        rng = random.Random(1)
        order = JoinOrder([0, 1, 2, 3, 4])
        assert move_set.random_neighbor(order, star, rng) != order

    def test_gives_up_when_no_neighbor_exists(self):
        # A 2-chain has exactly two valid orders; both are each other's
        # neighbors, so moves always succeed.  A single pathological case
        # is a graph whose only valid order is unique: impossible with
        # n >= 2, so force failure with max_tries=0 rejected instead.
        with pytest.raises(ValueError):
            MoveSet(max_tries=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            MoveSet(swap_probability=1.5)


class TestStructuredMoves:
    def test_swap_move_applies(self):
        order = JoinOrder([0, 1, 2, 3])
        move = Move("swap", 1, 3)
        assert move.apply(order) == order.swap(1, 3)
        assert move.first_changed == 1

    def test_insert_move_applies(self):
        order = JoinOrder([0, 1, 2, 3])
        move = Move("insert", 3, 0)
        assert move.apply(order) == order.insert(3, 0)
        assert move.first_changed == 0

    def test_propose_move_matches_propose_stream(self):
        """propose() and propose_move() consume rng draws identically."""
        order = JoinOrder([0, 1, 2, 3, 4])
        move_set = MoveSet()
        orders = [
            move_set.propose(order, random.Random(9)) for _ in range(1)
        ]
        rng_a, rng_b = random.Random(17), random.Random(17)
        for _ in range(50):
            via_order = move_set.propose(order, rng_a)
            via_move = move_set.propose_move(order, rng_b).apply(order)
            assert via_order == via_move
        assert orders  # silence unused-variable linters

    def test_random_valid_move_returns_matching_pair(self, chain):
        move_set = MoveSet()
        rng = random.Random(3)
        order = JoinOrder([0, 1, 2, 3, 4])
        for _ in range(20):
            move, neighbor = move_set.random_valid_move(order, chain, rng)
            assert move.apply(order) == neighbor
            assert is_valid_order(neighbor, chain)
            order = neighbor


class TestDegeneratePath:
    def test_has_any_valid_neighbor_on_healthy_graph(self, chain):
        assert MoveSet().has_any_valid_neighbor(
            JoinOrder([0, 1, 2, 3, 4]), chain
        )

    def test_fails_fast_when_no_neighbor_exists(self, monkeypatch, chain):
        """A single-order valid space is detected by the exhaustive scan
        after the first burst of failed draws, not after max_tries."""
        monkeypatch.setattr(
            moves_module, "is_valid_order", lambda order, graph: False
        )
        move_set = MoveSet(max_tries=64)
        draws = CountingRandom(5)
        with pytest.raises(NoValidMove) as info:
            move_set.random_valid_move(JoinOrder([0, 1, 2, 3, 4]), chain, draws)
        message = str(info.value)
        assert "exhaustive scan" in message
        # The rejected moves are surfaced for diagnosis...
        assert "swap(" in message or "insert(" in message
        # ...and the retry loop stopped at the fail-fast burst (8 draws),
        # far short of the 64-try allowance (>= 128 rng calls).
        assert draws.calls < 64

    def test_exhausted_retries_surface_rejected_moves(self, monkeypatch, chain):
        """When neighbors exist but draws keep missing, the final error
        lists every rejected move."""
        monkeypatch.setattr(
            moves_module, "is_valid_order", lambda order, graph: False
        )
        move_set = MoveSet(max_tries=3)
        monkeypatch.setattr(
            move_set, "has_any_valid_neighbor", lambda order, graph: True
        )
        with pytest.raises(NoValidMove) as info:
            move_set.random_valid_move(
                JoinOrder([0, 1, 2, 3, 4]), chain, random.Random(5)
            )
        message = str(info.value)
        assert "3 tries" in message
        assert "rejected:" in message


class CountingRandom(random.Random):
    """random.Random that counts draw calls (random/randrange/sample)."""

    def __init__(self, seed):
        super().__init__(seed)
        self.calls = 0

    def random(self):
        self.calls += 1
        return super().random()

    def randrange(self, *args, **kwargs):
        self.calls += 1
        return super().randrange(*args, **kwargs)

    def sample(self, *args, **kwargs):
        self.calls += 1
        return super().sample(*args, **kwargs)


class TestReachability:
    def test_moves_reach_every_valid_order(self):
        """BFS over the move graph covers the whole valid space."""
        graph = star_graph([50, 10, 20, 30])
        move_set = MoveSet()
        all_valid = set(valid_orders(graph))
        start = next(iter(all_valid))
        seen = {start}
        frontier = [start]
        while frontier:
            order = frontier.pop()
            for neighbor in move_set.neighbors(order, graph):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert seen == all_valid

    def test_neighbors_are_valid_and_distinct(self, chain):
        move_set = MoveSet()
        order = JoinOrder([0, 1, 2, 3, 4])
        neighbors = list(move_set.neighbors(order, chain))
        assert len(neighbors) == len(set(neighbors))
        assert all(is_valid_order(n, chain) for n in neighbors)
        assert order not in neighbors
