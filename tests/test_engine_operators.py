"""Tests for the physical operators."""

import pytest

from repro.engine.operators import hash_join, project, select
from repro.engine.table import Table


@pytest.fixture
def left():
    return Table.from_dict("L", {"l_key": [1, 2, 2, 3], "l_val": [10, 20, 21, 30]})


@pytest.fixture
def right():
    return Table.from_dict("R", {"r_key": [2, 2, 3, 4], "r_val": [200, 201, 300, 400]})


class TestSelect:
    def test_filters_rows(self, left):
        result = select(left, "l_key", lambda v: v >= 2)
        assert result.n_rows == 3

    def test_empty_result(self, left):
        assert select(left, "l_key", lambda v: v > 99).n_rows == 0


class TestProject:
    def test_keeps_named_columns(self, left):
        result = project(left, ["l_val"])
        assert result.column_names == ["l_val"]
        assert result.n_rows == left.n_rows


class TestHashJoin:
    def test_matches(self, left, right):
        result = hash_join(left, right, [("l_key", "r_key")])
        # key 2: 2 left x 2 right = 4; key 3: 1 x 1 = 1 -> 5 rows.
        assert result.n_rows == 5

    def test_join_values_agree(self, left, right):
        result = hash_join(left, right, [("l_key", "r_key")])
        lk = result.column("l_key").values
        rk = result.column("r_key").values
        assert lk == rk

    def test_carries_both_sides_columns(self, left, right):
        result = hash_join(left, right, [("l_key", "r_key")])
        assert set(result.column_names) == {"l_key", "l_val", "r_key", "r_val"}

    def test_no_matches(self):
        a = Table.from_dict("A", {"k": [1, 2]})
        b = Table.from_dict("B", {"j": [3, 4]})
        assert hash_join(a, b, [("k", "j")]).n_rows == 0

    def test_cross_product(self):
        a = Table.from_dict("A", {"k": [1, 2]})
        b = Table.from_dict("B", {"j": [3, 4, 5]})
        result = hash_join(a, b, [])
        assert result.n_rows == 6

    def test_multi_column_join(self):
        a = Table.from_dict("A", {"k1": [1, 1, 2], "k2": [7, 8, 7]})
        b = Table.from_dict("B", {"j1": [1, 2], "j2": [7, 7]})
        result = hash_join(a, b, [("k1", "j1"), ("k2", "j2")])
        assert result.n_rows == 2  # (1,7) and (2,7)

    def test_rejects_shared_column_names(self, left):
        clone = Table.from_dict("L2", {"l_key": [1]})
        with pytest.raises(ValueError, match="share column names"):
            hash_join(left, clone, [("l_key", "l_key")])

    def test_matches_nested_loop_oracle(self, left, right):
        result = hash_join(left, right, [("l_key", "r_key")])
        expected = sorted(
            (lv, rv)
            for lk, lv in zip(left.column("l_key").values, left.column("l_val").values)
            for rk, rv in zip(
                right.column("r_key").values, right.column("r_val").values
            )
            if lk == rk
        )
        got = sorted(
            zip(result.column("l_val").values, result.column("r_val").values)
        )
        assert got == expected
