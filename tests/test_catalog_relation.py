"""Tests for relations and selections."""

import pytest

from repro.catalog.relation import Relation, Selection


class TestSelection:
    def test_holds_selectivity(self):
        assert Selection(0.25).selectivity == 0.25

    def test_rejects_zero_selectivity(self):
        with pytest.raises(ValueError):
            Selection(0.0)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            Selection(1.2)


class TestRelation:
    def test_cardinality_without_selections(self):
        assert Relation("R", 1000).cardinality == 1000.0

    def test_cardinality_applies_selections(self):
        relation = Relation("R", 1000).with_selections(0.1, 0.5)
        assert relation.cardinality == pytest.approx(50.0)

    def test_cardinality_floors_at_one(self):
        relation = Relation("R", 10).with_selections(0.001)
        assert relation.cardinality == 1.0

    def test_selectivity_is_product(self):
        relation = Relation("R", 100).with_selections(0.5, 0.5)
        assert relation.selectivity == pytest.approx(0.25)

    def test_selectivity_defaults_to_one(self):
        assert Relation("R", 100).selectivity == 1.0

    def test_rejects_nonpositive_cardinality(self):
        with pytest.raises(ValueError):
            Relation("R", 0)

    def test_with_selections_preserves_existing(self):
        relation = Relation("R", 100).with_selections(0.5).with_selections(0.5)
        assert len(relation.selections) == 2

    def test_is_hashable_and_frozen(self):
        relation = Relation("R", 100)
        assert hash(relation) == hash(Relation("R", 100))

    def test_str_mentions_name(self):
        assert "R" in str(Relation("R", 100))


class TestCardinalityValidation:
    """Construction-time rejection of corrupt statistics (robustness)."""

    def test_rejects_negative_cardinality(self):
        with pytest.raises(ValueError):
            Relation("R", -5)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), -float("inf")]
    )
    def test_rejects_non_finite_cardinality(self, bad):
        # NaN and -inf already fail the positivity check; +inf needs the
        # dedicated finiteness check.
        with pytest.raises(ValueError, match="positive|finite"):
            Relation("R", bad)

    def test_accepts_float_cardinality(self):
        assert Relation("R", 10.5).base_cardinality == 10.5
