"""Tests for the augmentation heuristic and its five criteria."""

import pytest

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.core.augmentation import (
    AugmentationCriterion,
    augment_order,
    augmentation_orders,
    choose_next,
    first_relation_sequence,
)
from repro.core.budget import Budget, BudgetExhausted
from repro.plans.validity import is_valid_order

from tests.conftest import chain_graph, make_relations, star_graph


ALL_CRITERIA = list(AugmentationCriterion)


class TestAugmentOrder:
    @pytest.mark.parametrize("criterion", ALL_CRITERIA)
    def test_orders_are_valid(self, cycle, criterion):
        for first in range(cycle.n_relations):
            order = augment_order(cycle, first, criterion)
            assert is_valid_order(order, cycle)
            assert order[0] == first

    @pytest.mark.parametrize("criterion", ALL_CRITERIA)
    def test_complete_permutation(self, star, criterion):
        order = augment_order(star, 0, criterion)
        assert sorted(order.positions) == list(range(star.n_relations))

    def test_deterministic(self, chain):
        a = augment_order(chain, 0, AugmentationCriterion.MIN_SELECTIVITY)
        b = augment_order(chain, 0, AugmentationCriterion.MIN_SELECTIVITY)
        assert a == b

    def test_chain_from_end_is_forced(self, chain):
        """On a chain, starting at one end forces the whole order."""
        order = augment_order(chain, 0, AugmentationCriterion.MIN_CARDINALITY)
        assert order.positions == (0, 1, 2, 3, 4)

    def test_handles_disconnected_graph(self, two_components):
        order = augment_order(
            two_components, 0, AugmentationCriterion.MIN_CARDINALITY
        )
        assert sorted(order.positions) == list(range(5))


class TestCriteria:
    @staticmethod
    def _choice_graph() -> JoinGraph:
        """R0 joined to three candidates with contrasting statistics.

        R1: tiny cardinality, weak selectivity.
        R2: huge cardinality, strong selectivity (many distinct values).
        R3: middling, high degree (extra edge to R1).
        """
        relations = make_relations([100, 10, 10_000, 500])
        predicates = [
            JoinPredicate(0, 1, 10, 5),        # J = 1/10
            JoinPredicate(0, 2, 90, 9_000),    # J = 1/9000
            JoinPredicate(0, 3, 50, 100),      # J = 1/100
            JoinPredicate(1, 3, 5, 100),
            JoinPredicate(2, 3, 8_000, 120),   # lifts deg(R3) to 3
        ]
        return JoinGraph(relations, predicates)

    def test_min_cardinality_picks_smallest(self):
        graph = self._choice_graph()
        choice = choose_next(
            graph, {0}, {1, 2, 3}, AugmentationCriterion.MIN_CARDINALITY
        )
        assert choice == 1

    def test_max_degree_picks_most_connected(self):
        graph = self._choice_graph()
        choice = choose_next(
            graph, {0}, {1, 2, 3}, AugmentationCriterion.MAX_DEGREE
        )
        assert choice == 3  # degree 3 (edges to 0, 1, and 2)

    def test_min_selectivity_picks_most_selective(self):
        graph = self._choice_graph()
        choice = choose_next(
            graph, {0}, {1, 2, 3}, AugmentationCriterion.MIN_SELECTIVITY
        )
        assert choice == 2  # J = 1/9000

    def test_min_result_size_picks_smallest_product(self):
        graph = self._choice_graph()
        # Results: R1: 100*10/10 = 100; R2: 100*10000/9000 = 111;
        # R3: 100*500/100 = 500.
        choice = choose_next(
            graph, {0}, {1, 2, 3}, AugmentationCriterion.MIN_RESULT_SIZE
        )
        assert choice == 1

    def test_min_rank_formula(self):
        graph = self._choice_graph()
        # rank_j = (N_i N_j J - 1) / (0.5 N_i N_j / D_j):
        # R1: (100-1)/(0.5*100*10/5)   = 99/100  = 0.99
        # R2: (111.1-1)/(0.5*100*10000/9000) = 110.1/55.6 = 1.98
        # R3: (500-1)/(0.5*100*500/100) = 499/250 = 2.0
        choice = choose_next(
            graph, {0}, {1, 2, 3}, AugmentationCriterion.MIN_RANK
        )
        assert choice == 1

    def test_criteria_can_disagree(self):
        graph = self._choice_graph()
        choices = {
            criterion: choose_next(graph, {0}, {1, 2, 3}, criterion)
            for criterion in ALL_CRITERIA
        }
        assert len(set(choices.values())) > 1

    def test_only_frontier_relations_considered(self, chain):
        # From {0}, only relation 1 is adjacent; all criteria must pick it.
        for criterion in ALL_CRITERIA:
            assert choose_next(chain, {0}, {1, 2, 3, 4}, criterion) == 1


class TestFirstRelationSequence:
    def test_increasing_cardinality(self, star):
        sequence = first_relation_sequence(star)
        cards = [star.cardinality(i) for i in sequence]
        assert cards == sorted(cards)

    def test_is_permutation(self, star):
        assert sorted(first_relation_sequence(star)) == list(
            range(star.n_relations)
        )


class TestAugmentationOrders:
    def test_yields_one_per_relation(self, cycle):
        orders = list(augmentation_orders(cycle))
        assert len(orders) == cycle.n_relations

    def test_budget_charged(self, cycle):
        budget = Budget(limit=1e6)
        list(augmentation_orders(cycle, budget=budget))
        assert budget.spent > 0

    def test_budget_exhaustion_stops_stream(self, medium_query):
        budget = Budget(limit=3)
        with pytest.raises(BudgetExhausted):
            list(augmentation_orders(medium_query.graph, budget=budget))
