"""Tests for the join graph."""

import pytest

from repro.catalog.join_graph import JoinGraph, Query
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation

from tests.conftest import chain_graph, make_relations, star_graph


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            JoinGraph([], [])

    def test_rejects_duplicate_edges(self):
        relations = make_relations([10, 20])
        predicates = [JoinPredicate(0, 1, 5, 5), JoinPredicate(1, 0, 3, 3)]
        with pytest.raises(ValueError, match="duplicate edge"):
            JoinGraph(relations, predicates)

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="unknown relation"):
            JoinGraph(make_relations([10, 20]), [JoinPredicate(0, 5, 1, 1)])

    def test_single_relation_graph(self):
        graph = JoinGraph([Relation("R", 10)], [])
        assert graph.n_relations == 1
        assert graph.n_joins == 0
        assert graph.is_connected


class TestAccessors:
    def test_n_joins(self, chain):
        assert chain.n_joins == chain.n_relations - 1

    def test_degree_chain_ends(self, chain):
        assert chain.degree(0) == 1
        assert chain.degree(1) == 2

    def test_degree_star_centre(self, star):
        assert star.degree(0) == star.n_relations - 1

    def test_neighbors(self, chain):
        assert sorted(chain.neighbors(1)) == [0, 2]

    def test_edge_lookup_both_directions(self, chain):
        assert chain.edge(0, 1) is chain.edge(1, 0)

    def test_has_edge(self, chain):
        assert chain.has_edge(0, 1)
        assert not chain.has_edge(0, 2)

    def test_selectivity_missing_edge_is_one(self, chain):
        assert chain.selectivity(0, 2) == 1.0

    def test_edges_between(self, star):
        edges = star.edges_between([1, 2, 3], 0)
        assert len(edges) == 3

    def test_cardinality_delegates_to_relation(self, chain):
        assert chain.cardinality(0) == chain.relation(0).cardinality

    def test_adjacency_map(self, chain):
        assert set(chain.adjacency(1)) == {0, 2}


class TestConnectivity:
    def test_chain_is_connected(self, chain):
        assert chain.is_connected
        assert len(chain.components) == 1

    def test_two_components(self, two_components):
        assert not two_components.is_connected
        assert two_components.components == ((0, 1), (2, 3, 4))

    def test_subgraph_renumbers(self, two_components):
        sub = two_components.subgraph((2, 3, 4))
        assert sub.n_relations == 3
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(0, 2)

    def test_subgraph_keeps_statistics(self, two_components):
        sub = two_components.subgraph((2, 3, 4))
        assert sub.cardinality(0) == two_components.cardinality(2)
        assert sub.edge(0, 1).selectivity == two_components.edge(2, 3).selectivity


class TestSpanningTree:
    def test_spans_all_relations(self, cycle):
        edges = cycle.spanning_tree_edges(lambda p: p.selectivity)
        assert len(edges) == cycle.n_relations - 1
        covered = set()
        for edge in edges:
            covered |= edge.endpoints
        assert covered == set(range(cycle.n_relations))

    def test_chain_tree_is_the_chain(self, chain):
        edges = chain.spanning_tree_edges(lambda p: p.selectivity)
        assert len(edges) == chain.n_relations - 1
        assert {frozenset(e.endpoints) for e in edges} == {
            frozenset((i, i + 1)) for i in range(chain.n_relations - 1)
        }

    def test_minimum_weight_edge_always_included(self, cycle):
        weights = {p: p.selectivity for p in cycle.predicates}
        cheapest = min(weights, key=weights.get)
        edges = cycle.spanning_tree_edges(lambda p: p.selectivity)
        # Prim from the smallest relation always picks the globally
        # cheapest edge once reachable; on a cycle the cheapest edge of the
        # whole graph is in every MST (cut property, unique weights).
        assert cheapest in edges or len(set(weights.values())) != len(weights)

    def test_disconnected_raises(self, two_components):
        with pytest.raises(ValueError, match="connected"):
            two_components.spanning_tree_edges(lambda p: p.selectivity)


class TestQuery:
    def test_wraps_graph(self, chain):
        query = Query(graph=chain, name="q1")
        assert query.n_joins == chain.n_joins
        assert "q1" in str(query)


def test_str_mentions_counts():
    graph = star_graph()
    text = str(graph)
    assert "5 relations" in text
    assert "4 predicates" in text


def test_chain_graph_fixture_builder_consistent():
    graph = chain_graph([10, 20, 30])
    assert graph.n_relations == 3
    assert graph.has_edge(0, 1) and graph.has_edge(1, 2)


class TestConstructionValidation:
    """Statistics validation at graph construction (robustness satellite)."""

    def test_predicate_itself_rejects_self_join(self):
        with pytest.raises(ValueError):
            JoinPredicate(1, 1, 5, 5)

    def test_graph_rejects_smuggled_self_join_edge(self):
        # A self-loop that slipped past the predicate constructor (e.g. a
        # corrupted serialized edge) is still caught by the graph.
        import copy

        loop = copy.copy(JoinPredicate(0, 1, 5, 5))
        object.__setattr__(loop, "right", 0)
        relations = make_relations([10, 20])
        with pytest.raises(ValueError, match="self-join"):
            JoinGraph(relations, [loop])

    def test_rejects_zero_cardinality_relation(self):
        import copy

        bad = copy.copy(Relation("R0", 10))
        object.__setattr__(bad, "base_cardinality", 0)
        with pytest.raises(ValueError, match="cardinality"):
            JoinGraph([bad, Relation("R1", 20)], [JoinPredicate(0, 1, 5, 5)])

    def test_rejects_nan_cardinality_relation(self):
        import copy

        bad = copy.copy(Relation("R0", 10))
        object.__setattr__(bad, "base_cardinality", float("nan"))
        with pytest.raises(ValueError, match="cardinality"):
            JoinGraph([bad, Relation("R1", 20)], [JoinPredicate(0, 1, 5, 5)])

    def test_rejects_distinct_count_above_row_count(self):
        relations = make_relations([10, 20])
        with pytest.raises(ValueError, match="only 10 rows"):
            JoinGraph(relations, [JoinPredicate(0, 1, 500, 5)])

    def test_error_message_names_the_relation(self):
        relations = make_relations([10, 20])
        with pytest.raises(ValueError, match="relation 1"):
            JoinGraph(relations, [JoinPredicate(0, 1, 5, 500)])

    def test_validate_false_admits_corrupt_statistics(self):
        relations = make_relations([10, 20])
        graph = JoinGraph(
            relations, [JoinPredicate(0, 1, 500, 5)], validate=False
        )
        assert graph.n_relations == 2  # structural checks still ran

    def test_validate_false_still_rejects_structural_errors(self):
        relations = make_relations([10, 20])
        with pytest.raises(ValueError, match="duplicate edge"):
            JoinGraph(
                relations,
                [JoinPredicate(0, 1, 5, 5), JoinPredicate(1, 0, 3, 3)],
                validate=False,
            )

    def test_subgraph_inherits_validation_mode(self, two_components):
        import copy

        bad = copy.copy(two_components.relations[0])
        object.__setattr__(bad, "base_cardinality", -1)
        relations = [bad] + list(two_components.relations[1:])
        graph = JoinGraph(
            relations, list(two_components.predicates), validate=False
        )
        # Extracting the corrupt component must not explode either.
        sub = graph.subgraph((0, 1))
        assert sub.n_relations == 2
