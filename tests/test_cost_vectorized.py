"""Bit-parity suite for the vectorized batch cost kernel.

The kernel promises *bitwise* agreement with the scalar oracle
(:meth:`CostModel.plan_cost`) on every plan the scalar walk prices, and
masked saturation (``cost == inf``, ``saturated == True``) exactly where
the scalar walk raises :class:`CostOverflowError` — including non-finite
cardinalities, cross-product steps, and plans whose per-join costs are
finite but whose total overflows.  Both promises are exercised over
random graphs × both cost models × adversarial shapes, and the
pure-python fallback is held to the same contract with numpy masked out.
"""

from __future__ import annotations

import copy
import math
import random
from itertools import permutations

import pytest

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.cost import vectorized
from repro.cost.cardinality import CostOverflowError
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.cost.static import StaticCostModel
from repro.cost.vectorized import (
    ArrayContext,
    HAVE_NUMPY,
    batch_plan_cost,
    supports_vectorized,
)
from repro.plans.validity import random_valid_order
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query

from .conftest import chain_graph, cycle_graph, star_graph

MODELS = (MainMemoryCostModel(), DiskCostModel())

RANDOM_GRAPHS = tuple(
    generate_query(
        DEFAULT_SPEC,
        n_joins=random.Random(index).choice((4, 7, 12, 20, 30)),
        seed=2000 + index,
    ).graph
    for index in range(8)
)


def scalar_reference(graph, model, order):
    """``(cost, overflowed)`` from the scalar oracle."""
    try:
        return model.plan_cost(order, graph), False
    except CostOverflowError:
        return math.inf, True


def assert_batch_matches_scalar(graph, model, orders):
    """Every row must be bitwise equal to the oracle, saturation included."""
    context = ArrayContext(graph, model)
    costs, saturated = context.batch_costs([o.positions for o in orders])
    for row, order in enumerate(orders):
        expected, overflowed = scalar_reference(graph, model, order)
        assert bool(saturated[row]) == overflowed, (
            f"row {row}: saturation {bool(saturated[row])} but scalar "
            f"overflow {overflowed}"
        )
        if overflowed:
            assert math.isinf(costs[row])
        else:
            assert float(costs[row]) == expected, (
                f"row {row}: batch {costs[row]!r} != scalar {expected!r}"
            )


# ---------------------------------------------------------------------------
# Random-graph parity


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
def test_random_graph_parity(model):
    for graph in RANDOM_GRAPHS:
        rng = random.Random(graph.n_relations)
        orders = [random_valid_order(graph, rng) for _ in range(40)]
        assert_batch_matches_scalar(graph, model, orders)


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
@pytest.mark.parametrize(
    "factory", (chain_graph, star_graph, cycle_graph),
    ids=("chain", "star", "cycle"),
)
def test_hand_built_shapes_exhaustive(model, factory):
    graph = factory()
    orders = [
        type(random_valid_order(graph, random.Random(0)))(perm)
        for perm in permutations(range(graph.n_relations))
    ]
    # Include invalid (cross-product) orders too: plan_cost prices them
    # and so must the kernel.
    assert_batch_matches_scalar(graph, model, orders)


# ---------------------------------------------------------------------------
# Overflow / clamp parity (the adversarial shapes)


def _corrupt(graph: JoinGraph, index: int, cardinality: float) -> JoinGraph:
    """A copy of ``graph`` with one relation's base cardinality poisoned."""
    relations = list(graph.relations)
    bad = copy.copy(relations[index])
    object.__setattr__(bad, "base_cardinality", cardinality)
    relations[index] = bad
    return JoinGraph(relations, list(graph.predicates), validate=False)


def _huge_graph() -> JoinGraph:
    """Cardinalities big enough to trip the clamp and the inf product."""
    relations = [
        Relation("a", 10.0**200),
        Relation("b", 10.0**160),
        Relation("c", 1000.0),
        Relation("d", 10.0**120),
    ]
    predicates = [
        JoinPredicate(0, 1, 10.0**50, 10.0**40),
        JoinPredicate(1, 2, 100.0, 50.0),
        JoinPredicate(2, 3, 10.0, 10.0**60),
    ]
    return JoinGraph(relations, predicates)


def _cross_product_graph() -> JoinGraph:
    """Sparse predicates: most orders hit cross-product (selectivity 1)."""
    relations = [Relation(f"r{i}", float(50 + 13 * i)) for i in range(5)]
    predicates = [JoinPredicate(0, 1, 7.0, 5.0), JoinPredicate(3, 4, 9.0, 4.0)]
    return JoinGraph(relations, predicates, validate=False)


def _all_orders(graph):
    rng = random.Random(0)
    sample = random_valid_order(graph, rng)
    return [type(sample)(perm) for perm in permutations(range(graph.n_relations))]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
def test_huge_cardinalities_clamp_parity(model):
    graph = _huge_graph()
    assert_batch_matches_scalar(graph, model, _all_orders(graph))


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
@pytest.mark.parametrize("poison", (math.inf, math.nan), ids=("inf", "nan"))
def test_nonfinite_cardinality_parity(model, poison):
    # inf survives Relation.cardinality's ``max(1.0, ...)`` clamp and must
    # saturate exactly where the scalar walk raises; NaN is swallowed by
    # that clamp (``max(1.0, nan) == 1.0``) on BOTH paths, so parity here
    # means neither side saturates.
    graph = _corrupt(chain_graph(), 1, poison)
    if poison is math.inf:
        assert any(
            scalar_reference(graph, model, order)[1]
            for order in _all_orders(graph)
        )
    assert_batch_matches_scalar(graph, model, _all_orders(graph))


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
def test_cross_product_steps_parity(model):
    graph = _cross_product_graph()
    assert_batch_matches_scalar(graph, model, _all_orders(graph))


def test_nonfinite_total_saturates_like_plan_cost():
    # Per-join costs finite, total overflows: plan_cost's closing check
    # raises, the kernel's closing mask must flag the same rows.
    graph = _corrupt(_corrupt(chain_graph(), 0, 10.0**140), 2, 10.0**140)
    model = MainMemoryCostModel(build_cost=1e300, output_cost=1e300)
    assert_batch_matches_scalar(graph, model, _all_orders(graph))


def test_saturated_row_never_contaminates_batchmates():
    graph = _corrupt(chain_graph(), 1, math.inf)
    model = MainMemoryCostModel()
    orders = _all_orders(graph)
    costs, saturated = ArrayContext(graph, model).batch_costs(
        [o.positions for o in orders]
    )
    assert any(saturated), "corruption should saturate at least one row"
    # Every row touches the poisoned relation, so every row saturates —
    # and every finite-side check lives in assert_batch_matches_scalar.
    # What masked saturation additionally promises: a clean graph priced
    # by a *fresh* context over the same orders stays all-finite (no state
    # leaks between contexts or batches).
    clean_costs, clean_sat = ArrayContext(chain_graph(), model).batch_costs(
        [o.positions for o in orders]
    )
    assert not any(clean_sat)
    assert all(math.isfinite(float(c)) for c in clean_costs)


# ---------------------------------------------------------------------------
# batch_plan_cost convenience + validation


def test_batch_plan_cost_matches_scalar_and_reports_inf():
    graph = _corrupt(chain_graph(), 1, math.inf)
    model = MainMemoryCostModel()
    orders = _all_orders(graph)
    costs = batch_plan_cost([o.positions for o in orders], graph, model)
    for row, order in enumerate(orders):
        expected, overflowed = scalar_reference(graph, model, order)
        assert math.isinf(float(costs[row])) if overflowed else (
            float(costs[row]) == expected
        )


def test_rejects_non_permutation_rows():
    graph = chain_graph()
    context = ArrayContext(graph, MainMemoryCostModel())
    with pytest.raises(ValueError, match="permutation"):
        context.batch_plan_cost([[0, 0, 1, 2, 3]])
    # The numpy path reports a shape mismatch, the fallback a
    # non-permutation row; both refuse the malformed batch.
    with pytest.raises(ValueError, match="shaped|permutation"):
        context.batch_plan_cost([[0, 1]])


def test_rejects_plan_cost_overriding_models():
    graph = chain_graph()
    with pytest.raises(ValueError, match="overrides plan_cost"):
        ArrayContext(graph, StaticCostModel(MainMemoryCostModel()))
    assert not supports_vectorized(StaticCostModel(MainMemoryCostModel()))


def test_subclassed_model_takes_fallback_not_kernel():
    class Tweaked(MainMemoryCostModel):
        def join_cost(self, outer_size, inner_size, result_size):
            return 1.0

    model = Tweaked()
    assert not supports_vectorized(model)
    graph = chain_graph()
    context = ArrayContext(graph, model)  # eligible, just not vectorized
    assert not context.vectorized
    orders = _all_orders(graph)
    costs, saturated = context.batch_costs([o.positions for o in orders])
    for row, order in enumerate(orders):
        assert costs[row] == model.plan_cost(order, graph)
        assert not saturated[row]


def test_empty_batch():
    context = ArrayContext(chain_graph(), MainMemoryCostModel())
    costs, saturated = context.batch_costs([])
    assert len(costs) == 0 and len(saturated) == 0


# ---------------------------------------------------------------------------
# Pure-python fallback (the core install has no numpy)


def test_fallback_matches_numpy_kernel(monkeypatch):
    graph = RANDOM_GRAPHS[0]
    rng = random.Random(7)
    orders = [random_valid_order(graph, rng) for _ in range(25)]
    rows = [o.positions for o in orders]
    for model in MODELS:
        reference = ArrayContext(graph, model).batch_costs(rows)
        monkeypatch.setattr(vectorized, "numpy", None)
        monkeypatch.setattr(vectorized, "HAVE_NUMPY", False)
        fallback_context = ArrayContext(graph, model)
        assert not fallback_context.vectorized
        fallback = fallback_context.batch_costs(rows)
        monkeypatch.undo()
        assert list(map(float, reference[0])) == fallback[0]
        assert list(map(bool, reference[1])) == fallback[1]


def test_fallback_saturation_parity(monkeypatch):
    monkeypatch.setattr(vectorized, "numpy", None)
    monkeypatch.setattr(vectorized, "HAVE_NUMPY", False)
    graph = _corrupt(chain_graph(), 1, math.inf)
    assert_batch_matches_scalar(graph, MainMemoryCostModel(), _all_orders(graph))


def test_scalar_optimize_path_works_without_numpy(monkeypatch):
    """The core install (no numpy) must optimize end to end, batch mode
    included — the kernel degrades to the per-row fallback silently."""
    monkeypatch.setattr(vectorized, "numpy", None)
    monkeypatch.setattr(vectorized, "HAVE_NUMPY", False)
    from repro.core.optimizer import optimize

    query = generate_query(DEFAULT_SPEC, n_joins=7, seed=11)
    plain = optimize(query, method="II", seed=3, time_factor=2.0)
    monkeypatch.undo()
    with_numpy = optimize(query, method="II", seed=3, time_factor=2.0)
    assert plain.order == with_numpy.order
    assert plain.cost == with_numpy.cost
    assert plain.trajectory == with_numpy.trajectory


def test_batched_optimize_matches_with_and_without_numpy(monkeypatch):
    from repro.core.optimizer import optimize

    query = generate_query(DEFAULT_SPEC, n_joins=7, seed=11)
    fast = optimize(
        query, method="SA", seed=5, time_factor=2.0, batch_costing=True
    )
    monkeypatch.setattr(vectorized, "numpy", None)
    monkeypatch.setattr(vectorized, "HAVE_NUMPY", False)
    slow = optimize(
        query, method="SA", seed=5, time_factor=2.0, batch_costing=True
    )
    assert fast.order == slow.order
    assert fast.cost == slow.cost
    assert fast.trajectory == slow.trajectory


def test_supports_vectorized_tracks_numpy_availability():
    """With numpy installed the built-in models take the kernel; without
    it (CI's no-numpy leg) they — and everything else — take the
    fallback.  Either way eligibility must track HAVE_NUMPY exactly."""
    assert supports_vectorized(MainMemoryCostModel()) == HAVE_NUMPY
    assert supports_vectorized(DiskCostModel()) == HAVE_NUMPY
    context = ArrayContext(chain_graph(), MainMemoryCostModel())
    assert context.vectorized == HAVE_NUMPY
