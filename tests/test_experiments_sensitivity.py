"""Tests for the estimation-error sensitivity analysis."""

import random

import pytest

from repro.experiments.sensitivity import (
    SensitivityPoint,
    perturb_graph,
    sensitivity_analysis,
)
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query


@pytest.fixture
def query():
    return generate_query(DEFAULT_SPEC, n_joins=10, seed=6)


class TestPerturbGraph:
    def test_structure_preserved(self, query):
        graph = query.graph
        perturbed = perturb_graph(graph, random.Random(0), 5.0)
        assert perturbed.n_relations == graph.n_relations
        assert len(perturbed.predicates) == len(graph.predicates)
        for a, b in zip(graph.predicates, perturbed.predicates):
            assert (a.left, a.right) == (b.left, b.right)

    def test_factor_one_changes_little(self, query):
        graph = query.graph
        perturbed = perturb_graph(graph, random.Random(0), 1.0)
        for i in range(graph.n_relations):
            original = graph.relation(i).base_cardinality
            assert perturbed.relation(i).base_cardinality == pytest.approx(
                original, abs=1
            )

    def test_perturbation_bounded(self, query):
        graph = query.graph
        factor = 3.0
        perturbed = perturb_graph(graph, random.Random(1), factor)
        for i in range(graph.n_relations):
            original = graph.relation(i).base_cardinality
            new = perturbed.relation(i).base_cardinality
            assert original / factor - 1 <= new <= original * factor + 1

    def test_distinct_capped_by_cardinality(self, query):
        perturbed = perturb_graph(query.graph, random.Random(2), 10.0)
        for predicate in perturbed.predicates:
            for side in predicate.endpoints:
                assert (
                    predicate.distinct_values(side)
                    <= perturbed.relation(side).cardinality
                )

    def test_selections_kept(self, query):
        perturbed = perturb_graph(query.graph, random.Random(3), 2.0)
        for i in range(query.graph.n_relations):
            assert (
                perturbed.relation(i).selections
                == query.graph.relation(i).selections
            )

    def test_rejects_factor_below_one(self, query):
        with pytest.raises(ValueError):
            perturb_graph(query.graph, random.Random(0), 0.5)


class TestSensitivityAnalysis:
    @pytest.fixture(scope="class")
    def points(self):
        query = generate_query(DEFAULT_SPEC, n_joins=10, seed=6)
        return sensitivity_analysis(
            query,
            error_factors=(1.0, 4.0),
            n_trials=3,
            time_factor=1.0,
            units_per_n2=5,
            seed=1,
        )

    def test_one_point_per_factor(self, points):
        assert [p.error_factor for p in points] == [1.0, 4.0]
        assert all(isinstance(p, SensitivityPoint) for p in points)

    def test_no_error_means_no_degradation(self, points):
        # Factor 1.0 perturbs nothing: same statistics, near-same plans.
        assert points[0].mean_degradation == pytest.approx(1.0, abs=0.35)

    def test_degradation_at_least_epsilon_positive(self, points):
        for point in points:
            assert point.mean_degradation > 0
            assert point.worst_degradation >= point.mean_degradation - 1e-9

    def test_trial_count_recorded(self, points):
        assert all(p.n_trials == 3 for p in points)

    def test_rejects_zero_trials(self):
        query = generate_query(DEFAULT_SPEC, n_joins=8, seed=0)
        with pytest.raises(ValueError):
            sensitivity_analysis(query, n_trials=0)
