"""Optimality of KBZ's algorithm R under the ASI cost recurrence.

Algorithm R is provably optimal for cost functions with the *adjacent
sequence interchange* (ASI) property: with per-relation modules
``T(v) = J(v, parent) * N_v`` and ``C(v) = 0.5 * N_v / D_v``, the cost of
a sequence obeys ``C(S1 S2) = C(S1) + T(S1) * C(S2)``.  This test
enumerates every tree-consistent join order of random small rooted trees
and checks that algorithm R's order attains the minimum ASI cost — the
strongest available correctness check of the rank-merge-normalize
implementation.
"""

from __future__ import annotations

from itertools import permutations

from hypothesis import given, settings, strategies as st

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.core.kbz import _leaf_module, kbz_order_for_root


@st.composite
def random_trees(draw, min_relations=2, max_relations=7):
    """A random tree-shaped join graph with random statistics."""
    n = draw(st.integers(min_relations, max_relations))
    cardinalities = draw(st.lists(st.integers(2, 10_000), min_size=n, max_size=n))
    relations = [Relation(f"R{i}", c) for i, c in enumerate(cardinalities)]
    predicates = []
    for i in range(1, n):
        parent = draw(st.integers(0, i - 1))
        predicates.append(
            JoinPredicate(
                parent,
                i,
                left_distinct=draw(st.integers(1, cardinalities[parent])),
                right_distinct=draw(st.integers(1, cardinalities[i])),
            )
        )
    return JoinGraph(relations, predicates)


def tree_adjacency(graph: JoinGraph) -> dict[int, list[int]]:
    adjacency: dict[int, list[int]] = {i: [] for i in range(graph.n_relations)}
    for predicate in graph.predicates:
        adjacency[predicate.left].append(predicate.right)
        adjacency[predicate.right].append(predicate.left)
    return adjacency


def tree_consistent_orders(graph: JoinGraph, root: int):
    """Every order where each relation's tree parent precedes it."""
    parent: dict[int, int] = {}
    stack = [root]
    seen = {root}
    adjacency = tree_adjacency(graph)
    while stack:
        vertex = stack.pop()
        for neighbor in adjacency[vertex]:
            if neighbor not in seen:
                seen.add(neighbor)
                parent[neighbor] = vertex
                stack.append(neighbor)
    others = [v for v in range(graph.n_relations) if v != root]
    for tail in permutations(others):
        positions = {root: 0}
        ok = True
        for index, vertex in enumerate(tail, start=1):
            positions[vertex] = index
            if positions.get(parent[vertex], -1) >= index:
                ok = False
                break
        if ok and all(positions.get(parent[v], -1) < positions[v] for v in tail):
            yield (root,) + tail, parent


def asi_cost(sequence, parent, graph: JoinGraph) -> float:
    """ASI recurrence cost of the non-root tail of ``sequence``."""
    growth_prefix = 1.0
    total = 0.0
    for vertex in sequence[1:]:
        module = _leaf_module(graph, vertex, parent[vertex])
        total += growth_prefix * module.cost
        growth_prefix *= module.growth
    return total


@given(random_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_algorithm_r_minimizes_asi_cost(graph, data):
    root = data.draw(st.integers(0, graph.n_relations - 1))
    tree = tree_adjacency(graph)
    kbz_order = kbz_order_for_root(graph, tree, root)

    best = None
    parent_map = None
    for order, parent in tree_consistent_orders(graph, root):
        parent_map = parent
        cost = asi_cost(order, parent, graph)
        if best is None or cost < best:
            best = cost
    assert best is not None
    kbz_cost = asi_cost(tuple(kbz_order), parent_map, graph)
    assert kbz_cost <= best * (1 + 1e-9)


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_algorithm_r_output_is_tree_consistent(graph):
    tree = tree_adjacency(graph)
    for root in range(graph.n_relations):
        order = kbz_order_for_root(graph, tree, root)
        seen = set()
        for position, vertex in enumerate(order):
            if position == 0:
                assert vertex == root
            else:
                assert any(n in seen for n in tree[vertex])
            seen.add(vertex)
