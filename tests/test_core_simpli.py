"""Tests for the Simpli-Squared estimate-free baseline method."""

import pytest

from repro.core.combinations import available_method_names, compare_methods, make_strategy
from repro.core.optimizer import optimize
from repro.core.simpli import SimpliSquaredStrategy, simpli_squared_order
from repro.cost.memory import MainMemoryCostModel
from repro.plans.validity import first_invalid_position
from repro.robustness.estimates import ErrorModel


class TestSimpliSquaredOrder:
    def test_chain_order(self, chain):
        # Chain cardinalities [100, 1000, 50, 400, 800]: start at the
        # smallest table, then always the smallest adjacent one.
        assert list(simpli_squared_order(chain)) == [2, 3, 4, 1, 0]

    def test_star_order(self, star):
        # The centre must come second: nothing else is adjacent to the
        # smallest satellite.
        assert list(simpli_squared_order(star)) == [3, 0, 1, 2, 4]

    def test_order_is_valid(self, chain, star, cycle, two_components):
        for graph in (chain, star, cycle, two_components):
            order = simpli_squared_order(graph)
            assert first_invalid_position(order, graph) is None

    def test_disconnected_fallback(self, two_components):
        # [100, 200, 300, 40, 500] in components {0,1} and {2,3,4}:
        # exhaust the component of the smallest table, then jump.
        assert list(simpli_squared_order(two_components)) == [3, 2, 4, 0, 1]

    def test_pure_function_of_the_graph(self, medium_query):
        graph = medium_query.graph
        assert list(simpli_squared_order(graph)) == list(
            simpli_squared_order(graph)
        )

    def test_ignores_derived_statistics(self, medium_query):
        """The order only reads base cardinalities: perturbing distinct
        counts alone must not change it."""
        graph = medium_query.graph
        lying = ErrorModel(
            q=10.0, seed=5, perturb_cardinalities=False
        ).perturb(graph)
        assert list(simpli_squared_order(lying)) == list(
            simpli_squared_order(graph)
        )


class TestSimpliSquaredStrategy:
    def test_registered_and_listed(self):
        assert "SIMPLI_SQUARED" in available_method_names()
        strategy = make_strategy("simpli_squared")
        assert isinstance(strategy, SimpliSquaredStrategy)
        assert strategy.stochastic is False

    def test_optimize_accepts_the_name(self, small_query):
        result = optimize(small_query, method="simpli_squared", seed=0)
        assert result.method == "SIMPLI_SQUARED"
        assert list(result.order) == list(
            simpli_squared_order(small_query.graph)
        )
        model = MainMemoryCostModel()
        assert result.cost == pytest.approx(
            model.plan_cost(result.order, small_query.graph)
        )

    def test_seed_independent(self, small_query):
        a = optimize(small_query, method="SIMPLI_SQUARED", seed=0)
        b = optimize(small_query, method="SIMPLI_SQUARED", seed=99)
        assert list(a.order) == list(b.order)
        assert a.cost == b.cost

    def test_compare_methods_accepts_it(self, small_query):
        results = compare_methods(
            small_query, methods=("II", "simpli_squared"), seed=1, time_factor=1.0
        )
        assert set(results) == {"II", "simpli_squared"}
        simpli = results["simpli_squared"]
        assert simpli.n_evaluations == 1
        # An estimate-guided search given real statistics should not lose
        # to the estimate-free baseline.
        assert results["II"].cost <= simpli.cost

    def test_compare_methods_parallel_matches_serial(self, small_query):
        serial = compare_methods(
            small_query, methods=("SIMPLI_SQUARED", "II"), seed=1, time_factor=1.0
        )
        parallel = compare_methods(
            small_query,
            methods=("SIMPLI_SQUARED", "II"),
            seed=1,
            time_factor=1.0,
            workers=2,
        )
        for name in serial:
            assert list(serial[name].order) == list(parallel[name].order)
            assert serial[name].cost == parallel[name].cost

    def test_resilient_path(self, small_query):
        result = optimize(
            small_query, method="simpli_squared", seed=0, resilient=True
        )
        assert result.degraded is False
        assert list(result.order) == list(
            simpli_squared_order(small_query.graph)
        )
