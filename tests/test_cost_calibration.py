"""Tests for cost-model calibration ([Swa89a] methodology)."""

import pytest

from repro.cost.calibration import (
    DEFAULT_GRID,
    JoinObservation,
    calibrate_memory_model,
    fit_constants,
    measure_hash_join,
)


def synthetic_observations(build, probe, output, grid=DEFAULT_GRID):
    observations = []
    for outer, inner in grid:
        result = outer * inner / max(outer, inner)  # plausible match count
        measured = build * inner + probe * outer + output * result
        observations.append(
            JoinObservation(float(outer), float(inner), float(result), measured)
        )
    return observations


class TestFitConstants:
    def test_recovers_ground_truth(self):
        fitted = fit_constants(synthetic_observations(1.2, 1.0, 1.5))
        assert fitted[0] == pytest.approx(1.2, rel=1e-6)
        assert fitted[1] == pytest.approx(1.0, rel=1e-6)
        assert fitted[2] == pytest.approx(1.5, rel=1e-6)

    def test_recovers_skewed_constants(self):
        fitted = fit_constants(synthetic_observations(5.0, 0.1, 2.5))
        assert fitted[0] == pytest.approx(5.0, rel=1e-6)
        assert fitted[2] == pytest.approx(2.5, rel=1e-6)

    def test_robust_to_small_noise(self):
        import random

        rng = random.Random(0)
        noisy = [
            JoinObservation(
                o.outer_size,
                o.inner_size,
                o.result_size,
                o.measured * (1 + rng.uniform(-0.02, 0.02)),
            )
            for o in synthetic_observations(1.2, 1.0, 1.5)
        ]
        fitted = fit_constants(noisy)
        assert fitted[0] == pytest.approx(1.2, rel=0.2)
        assert fitted[2] == pytest.approx(1.5, rel=0.2)

    def test_needs_three_observations(self):
        with pytest.raises(ValueError, match="three observations"):
            fit_constants(synthetic_observations(1, 1, 1)[:2])

    def test_degenerate_grid_rejected(self):
        same = [JoinObservation(10.0, 10.0, 10.0, 30.0)] * 5
        with pytest.raises(ValueError, match="singular"):
            fit_constants(same)

    def test_constants_floored_positive(self):
        """A term that contributes nothing fits to ~0, floored positive."""
        observations = []
        for outer, inner in DEFAULT_GRID:
            result = outer * inner / max(outer, inner)
            observations.append(
                JoinObservation(
                    float(outer),
                    float(inner),
                    float(result),
                    2.0 * inner + 1.0 * outer,  # zero output term
                )
            )
        fitted = fit_constants(observations)
        assert fitted[2] > 0


class TestMeasureHashJoin:
    def test_measures_positive_time(self):
        observation = measure_hash_join(200, 200)
        assert observation.measured > 0
        assert observation.result_size >= 0

    def test_records_sizes(self):
        observation = measure_hash_join(300, 100)
        assert observation.outer_size == 300
        assert observation.inner_size == 100


class TestCalibrateMemoryModel:
    def test_with_injected_measure(self):
        def fake_measure(outer, inner):
            result = outer * inner / max(outer, inner)
            return JoinObservation(
                float(outer),
                float(inner),
                float(result),
                (3e-6 * inner + 2e-6 * outer + 4e-6 * result),
            )

        model = calibrate_memory_model(measure=fake_measure, repeats=1)
        # scale=1e6 turns the fake per-tuple seconds into unit costs.
        assert model.build_cost == pytest.approx(3.0, rel=1e-6)
        assert model.probe_cost == pytest.approx(2.0, rel=1e-6)
        assert model.output_cost == pytest.approx(4.0, rel=1e-6)

    def test_real_engine_calibration_smoke(self):
        """End-to-end: constants from actual engine timings are positive
        and the model prices plans."""
        model = calibrate_memory_model(
            grid=((300, 300), (1200, 300), (300, 1200), (1200, 1200)),
            repeats=1,
        )
        assert model.build_cost > 0
        assert model.join_cost(100, 100, 50) > 0
