"""Tests for the SG88-style statistical comparison helpers."""

import pytest

from repro.experiments.statistics import (
    ConfidenceInterval,
    mean_confidence_interval,
    paired_comparison,
)


class TestMeanConfidenceInterval:
    def test_contains_mean(self):
        interval = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert interval.mean == pytest.approx(2.5)
        assert interval.low < 2.5 < interval.high
        assert interval.n == 4

    def test_tighter_with_more_data(self):
        narrow = mean_confidence_interval([1.0, 2.0] * 50)
        wide = mean_confidence_interval([1.0, 2.0] * 2)
        assert narrow.half_width < wide.half_width

    def test_higher_confidence_is_wider(self):
        # Non-95% confidence needs scipy's t quantile; without it the
        # helper raises by contract (covered in test_rejects_bad_confidence
        # territory), so there is nothing to compare.
        pytest.importorskip("scipy", exc_type=ImportError)
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert (
            mean_confidence_interval(data, 0.99).half_width
            > mean_confidence_interval(data, 0.90).half_width
        )

    def test_needs_two_values(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.0)

    def test_contains(self):
        interval = ConfidenceInterval(0.0, -1.0, 1.0, 0.95, 10)
        assert interval.contains(0.5)
        assert not interval.contains(2.0)


class TestPairedComparison:
    def test_clear_winner(self):
        a = [1.0, 1.1, 1.0, 1.05, 1.02, 1.03]
        b = [2.0, 2.1, 1.9, 2.05, 2.00, 1.95]
        comparison = paired_comparison("A", a, "B", b)
        assert comparison.significant
        assert comparison.better == "A"
        assert comparison.delta.mean < 0

    def test_symmetry(self):
        a = [1.0, 1.1, 1.0, 1.05]
        b = [2.0, 2.1, 1.9, 2.05]
        assert paired_comparison("B", b, "A", a).better == "A"

    def test_no_difference(self):
        a = [1.0, 2.0, 3.0, 4.0]
        comparison = paired_comparison("A", a, "B", list(a))
        assert not comparison.significant
        assert comparison.better is None

    def test_noisy_tie_not_significant(self):
        a = [1.0, 3.0, 1.0, 3.0, 1.0, 3.0]
        b = [3.0, 1.0, 3.0, 1.0, 3.0, 1.0]
        comparison = paired_comparison("A", a, "B", b)
        assert not comparison.significant

    def test_pairing_matters(self):
        """A consistent small per-query edge is significant even when the
        two unpaired distributions overlap heavily."""
        base = [1.0, 5.0, 10.0, 20.0, 3.0, 7.0]
        better = [value - 0.1 for value in base]
        comparison = paired_comparison("A", better, "B", base)
        assert comparison.significant
        assert comparison.better == "A"

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="differ in length"):
            paired_comparison("A", [1.0], "B", [1.0, 2.0])

    def test_str_mentions_verdict(self):
        a = [1.0, 1.0, 1.0, 1.0]
        b = [2.0, 2.0, 2.1, 1.9]
        assert "A" in str(paired_comparison("A", a, "B", b))


class TestExperimentResultIntegration:
    def test_compare_and_interval(self):
        from repro.experiments.runner import ExperimentConfig, run_experiment
        from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark

        queries = generate_benchmark(
            DEFAULT_SPEC, n_values=(10,), queries_per_n=4, seed=3
        )
        config = ExperimentConfig(
            methods=("IAI", "SA"),
            time_factors=(1.0,),
            units_per_n2=5,
            replicates=1,
            seed=3,
        )
        result = run_experiment(queries, config)
        interval = result.confidence_interval("IAI", 1.0)
        assert interval.n == 4
        assert interval.low <= result.at("IAI", 1.0) <= interval.high
        comparison = result.compare("IAI", "SA", 1.0)
        assert comparison.method_a == "IAI"
