"""Determinism and round-trip tests for the search profiler.

The profiler is a pure fold over a trace, so its guarantees inherit the
trace layer's: the profile of a seeded run is byte-identical across
repeated runs, across worker counts, and across live-tracer vs
file-round-trip inputs — for every method and both cost models.  The
collapsed-stack output must round-trip through the JSON report, and
profiling a traced run must leave the result bit-identical to an
untraced one (the PR 5 differential contract, extended).
"""

from __future__ import annotations

import pytest

from repro.core.combinations import PAPER_METHODS
from repro.core.optimizer import optimize
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.obs import (
    RecordingTracer,
    TraceEvent,
    collapsed_stacks,
    diff_traces,
    profile_events,
    profile_json,
    profile_report,
    read_trace,
    render_profile,
    write_trace,
)
from repro.obs.profile import OTHER_LEAF
from repro.obs.wallclock import (
    WallClockTracer,
    read_wall_sidecar,
    sidecar_path,
    write_wall_sidecar,
)
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query

MODELS = {
    "memory": MainMemoryCostModel,
    "disk": DiskCostModel,
}


@pytest.fixture(scope="module")
def query():
    return generate_query(DEFAULT_SPEC, n_joins=8, seed=7)


def _traced_profile(query, method, model, seed, **kwargs) -> tuple:
    tracer = RecordingTracer()
    result = optimize(
        query, method=method, model=model, seed=seed, trace=tracer, **kwargs
    )
    return profile_json(profile_events(tracer.events)), result


# ---------------------------------------------------------------------------
# Byte-stability: same seed -> same profile, for every method x model


@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("method", PAPER_METHODS)
def test_profile_is_byte_stable_across_runs(query, method, model_name) -> None:
    model = MODELS[model_name]()
    first, _ = _traced_profile(query, method, model, seed=11)
    second, _ = _traced_profile(query, method, model, seed=11)
    assert first == second
    assert '"tree"' in first


@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("method", PAPER_METHODS)
def test_profile_is_workers_invariant(query, method, model_name) -> None:
    model = MODELS[model_name]()
    profiles = {}
    for workers in (1, 2):
        profiles[workers], _ = _traced_profile(
            query,
            method,
            model,
            seed=5,
            workers=workers,
            restarts=2,
            time_factor=1.0,
        )
    assert profiles[1] == profiles[2]


def test_profile_of_file_round_trip_matches_live(query, tmp_path) -> None:
    tracer = RecordingTracer()
    optimize(query, method="SA", seed=3, trace=tracer)
    live = profile_json(profile_events(tracer.events))
    path = tmp_path / "run.jsonl"
    write_trace(tracer.events, str(path))
    from_file = profile_json(profile_events(read_trace(str(path))))
    assert live == from_file


# ---------------------------------------------------------------------------
# Differential: profiling perturbs nothing


def test_traced_and_profiled_run_equals_untraced(query) -> None:
    untraced = optimize(query, method="IAI", seed=9)
    tracer = RecordingTracer()
    traced = optimize(query, method="IAI", seed=9, trace=tracer)
    profile = profile_events(tracer.events)
    assert profile.n_events == len(tracer.events)
    # provenance/profile are excluded from equality: results still match.
    assert traced == untraced
    assert traced.provenance is not None
    assert untraced.provenance is None


# ---------------------------------------------------------------------------
# Report content and collapsed-stack round-trip


def test_report_attribution_tree_is_non_empty(query) -> None:
    tracer = RecordingTracer()
    result = optimize(query, method="SA", seed=2, trace=tracer)
    report = profile_report(profile_events(tracer.events))
    assert report["methods"] == ["SA"]
    assert report["final_cost"] == result.cost
    assert report["evaluations"] == result.n_evaluations
    tree = report["tree"]
    assert tree["children"], "attribution tree has no frames"
    method_node = tree["children"][0]
    assert method_node["name"] == "SA"
    leaves = {child["name"] for child in method_node["children"]}
    assert any(name.startswith("move:") for name in leaves)
    # Accepted moves carry improvement deltas now; the tree sums them.
    total_improvement = sum(
        child["improvement"] for child in method_node["children"]
    )
    assert total_improvement > 0.0
    # Self-units sum to the total clock span attributed.
    assert tree["total_units"] == pytest.approx(
        sum(report["worker_units"].values())
    )


def test_collapsed_stacks_round_trip_through_json(query) -> None:
    import json

    tracer = RecordingTracer()
    optimize(query, method="2PO", seed=4, trace=tracer)
    profile = profile_events(tracer.events)
    direct = collapsed_stacks(profile_report(profile))
    parsed = collapsed_stacks(json.loads(profile_json(profile)))
    assert direct == parsed
    assert direct, "collapsed output is empty"
    for line in direct:
        path, _, value = line.rpartition(" ")
        assert path
        assert int(value) > 0


def test_render_profile_mentions_frames(query) -> None:
    tracer = RecordingTracer()
    optimize(query, method="SA", seed=2, trace=tracer)
    text = render_profile(profile_events(tracer.events))
    assert "SA" in text
    assert "move:" in text
    assert "final cost" in text


# ---------------------------------------------------------------------------
# Forward compatibility: unknown kinds bucket under `other`


def test_unknown_event_kinds_bucket_as_other() -> None:
    events = [
        TraceEvent(seq=0, clock=0.0, kind="run_start", data={"method": "II"}),
        TraceEvent(seq=1, clock=5.0, kind="quantum_leap", data={"x": 1}),
        TraceEvent(seq=2, clock=9.0, kind="run_end", data={"cost": 1.0}),
    ]
    profile = profile_events(events)
    assert profile.unknown_kinds == {"quantum_leap": 1}
    report = profile_report(profile)
    method_node = report["tree"]["children"][0]
    leaves = {child["name"]: child for child in method_node["children"]}
    assert OTHER_LEAF in leaves
    assert leaves[OTHER_LEAF]["units"] == 5.0


# ---------------------------------------------------------------------------
# Wall-clock sidecar: opt-in, never perturbs the trace


def test_wall_tracer_records_identical_events(query) -> None:
    plain = RecordingTracer()
    optimize(query, method="II", seed=6, trace=plain)
    walled = WallClockTracer()
    optimize(query, method="II", seed=6, trace=walled)
    assert diff_traces(plain.events, walled.events) == []
    assert len(walled.wall) == len(walled.events)


def test_wall_sidecar_round_trip_and_column(query, tmp_path) -> None:
    tracer = WallClockTracer()
    optimize(query, method="II", seed=6, trace=tracer)
    trace_path = str(tmp_path / "run.jsonl")
    write_trace(tracer.events, trace_path)
    write_wall_sidecar(tracer.wall, sidecar_path(trace_path))
    wall = read_wall_sidecar(sidecar_path(trace_path))
    assert wall == tracer.wall
    with_wall = profile_events(read_trace(trace_path), wall=wall)
    assert with_wall.has_wall
    # The JSON report without a sidecar is identical to a plain run's:
    # wall data never leaks into the deterministic surface.
    without_wall = profile_events(read_trace(trace_path))
    plain = RecordingTracer()
    optimize(query, method="II", seed=6, trace=plain)
    assert profile_json(without_wall) == profile_json(profile_events(plain.events))
