"""Smoke tests for the table/figure reproduction entry points.

Full-shape assertions live in the benchmark harness; here each entry point
runs at miniature scale and the structural contracts are checked.
"""

import pytest

from repro.experiments.figures import figure4, figure5, figure6, figure7
from repro.experiments.tables import TABLE3_METHODS, table1, table2, table3

TINY = dict(n_values=(10,), queries_per_n=2, units_per_n2=4, replicates=1, seed=0)


@pytest.mark.slow
class TestTables:
    def test_table1_structure(self):
        result = table1(**TINY)
        assert set(result.mean_scaled) == {"AUG1", "AUG2", "AUG3", "AUG4", "AUG5"}
        for method in result.mean_scaled:
            assert set(result.mean_scaled[method]) == {1.5, 3.0, 6.0, 9.0}
            for value in result.mean_scaled[method].values():
                assert 1.0 - 1e-9 <= value <= 10.0

    def test_table2_structure(self):
        result = table2(**TINY)
        assert set(result.mean_scaled) == {"KBZ3", "KBZ4", "KBZ5"}

    def test_table3_structure(self):
        result = table3(benchmarks=(1, 9), **TINY)
        assert set(result.rows) == {1, 9}
        for row in result.rows.values():
            assert set(row) == set(TABLE3_METHODS)
        assert result.winner(1) in TABLE3_METHODS


@pytest.mark.slow
class TestFigures:
    def test_figure4_covers_nine_methods(self):
        result = figure4(**TINY)
        assert len(result.mean_scaled) == 9

    def test_figure5_covers_top_five(self):
        result = figure5(**TINY)
        assert set(result.mean_scaled) == set(TABLE3_METHODS)

    def test_figure6_small_factors(self):
        result = figure6(**TINY)
        assert set(result.mean_scaled) == {"IAI", "AGI", "II"}
        factors = {f for series in result.mean_scaled.values() for f in series}
        assert 0.3 in factors

    def test_figure7_uses_disk_model(self):
        result = figure7(**TINY)
        assert result.config.model.name == "disk"
