"""Tests for cardinality estimation and distinct-value propagation."""

import pytest

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.cost.cardinality import (
    PlanEstimator,
    combined_selectivity,
    join_result_cardinality,
    prefix_cardinalities,
    walk_plan,
)
from repro.plans.join_order import JoinOrder

from tests.conftest import chain_graph, make_relations


class TestStaticHelpers:
    def test_combined_selectivity_empty_is_one(self):
        assert combined_selectivity([]) == 1.0

    def test_combined_selectivity_multiplies(self):
        predicates = [JoinPredicate(0, 1, 10, 5), JoinPredicate(0, 2, 4, 20)]
        assert combined_selectivity(predicates) == pytest.approx(
            (1 / 10) * (1 / 20)
        )

    def test_join_result_cardinality(self):
        predicate = JoinPredicate(0, 1, 100, 50)
        assert join_result_cardinality(1000, 200, [predicate]) == pytest.approx(
            1000 * 200 / 100
        )

    def test_join_result_clamped_at_one(self):
        predicate = JoinPredicate(0, 1, 1000, 1000)
        assert join_result_cardinality(2, 3, [predicate]) == 1.0

    def test_cross_product_cardinality(self):
        assert join_result_cardinality(10, 20, []) == 200.0


class TestPrefixCardinalities:
    def test_first_entry_is_first_relation(self, chain):
        sizes = prefix_cardinalities(JoinOrder([2, 1, 0, 3, 4]), chain)
        assert sizes[0] == chain.cardinality(2)
        assert len(sizes) == chain.n_relations

    def test_sizes_at_least_one(self, chain):
        sizes = prefix_cardinalities(JoinOrder([0, 1, 2, 3, 4]), chain)
        assert all(size >= 1.0 for size in sizes)

    def test_simple_chain_math(self):
        graph = chain_graph([100, 200, 300])
        # Edge distinct values: (50, 100) and (100, 150).
        sizes = prefix_cardinalities(JoinOrder([0, 1, 2]), graph)
        assert sizes[0] == 100.0
        assert sizes[1] == pytest.approx(100 * 200 / 100)
        # Join 2: intermediate carries R1's column (distinct 100, capped by
        # size 200 -> stays 100); inner distinct 150 -> J = 1/150.
        assert sizes[2] == pytest.approx(200 * 300 / 150)


class TestDistinctPropagation:
    @staticmethod
    def _capping_graph() -> JoinGraph:
        """R0 tiny; joining R0 first caps R1's 500-distinct column."""
        relations = make_relations([10, 1000, 2000])
        predicates = [
            JoinPredicate(0, 1, 10, 400),
            JoinPredicate(1, 2, 500, 500),
        ]
        return JoinGraph(relations, predicates)

    def test_cap_inflates_later_join(self):
        graph = self._capping_graph()
        # Order (0 1 2): after joining R0 |><| R1 the intermediate has
        # 10*1000/400 = 25 tuples, capping R1's 500-distinct column at 25.
        # The last join then sees J = 1/max(25, 500) = 1/500 (inner side
        # dominates) -> no inflation from this direction...
        sizes_01 = prefix_cardinalities(JoinOrder([0, 1, 2]), graph)
        assert sizes_01[1] == pytest.approx(25.0)
        assert sizes_01[2] == pytest.approx(25 * 2000 / 500)

    def test_cap_binds_when_outer_side_dominates(self):
        relations = make_relations([10, 1000, 2000])
        predicates = [
            JoinPredicate(0, 1, 10, 400),
            JoinPredicate(1, 2, 500, 100),  # outer side has MORE distinct
        ]
        graph = JoinGraph(relations, predicates)
        sizes = prefix_cardinalities(JoinOrder([0, 1, 2]), graph)
        # Intermediate size 25 caps R1's 500 down to 25; J becomes
        # 1/max(25, 100) = 1/100 instead of the base 1/500.
        assert sizes[2] == pytest.approx(25 * 2000 / 100)
        # Without the cap the estimate would have been 25 * 2000 / 500.
        assert sizes[2] > 25 * 2000 / 500

    def test_opposite_order_avoids_cap(self):
        relations = make_relations([10, 1000, 2000])
        predicates = [
            JoinPredicate(0, 1, 10, 400),
            JoinPredicate(1, 2, 500, 100),
        ]
        graph = JoinGraph(relations, predicates)
        # Joining R2 first consumes the 500-distinct column before any
        # small intermediate can cap it.
        sizes = prefix_cardinalities(JoinOrder([2, 1, 0]), graph)
        assert sizes[1] == pytest.approx(2000 * 1000 / 500)

    def test_estimator_rejects_duplicate_step(self, chain):
        estimator = PlanEstimator(chain, 0)
        estimator.step(1)
        with pytest.raises(ValueError, match="already placed"):
            estimator.step(1)

    def test_walk_plan_matches_prefix_sizes(self, cycle):
        order = JoinOrder([0, 1, 2, 3])
        steps = walk_plan(order, cycle)
        sizes = prefix_cardinalities(order, cycle)
        assert [step.result_size for step in steps] == sizes[1:]

    def test_cycle_uses_all_predicates(self, cycle):
        order = JoinOrder([0, 1, 2, 3])
        steps = walk_plan(order, cycle)
        # Final join of the cycle closes two predicates (to 2 and to 0).
        assert len(steps[-1].predicates) == 2


class TestOverflowGuards:
    """Pathological statistics must clamp or raise, never return inf/NaN."""

    def test_clamp_passes_normal_values(self):
        from repro.cost.cardinality import clamp_cardinality

        assert clamp_cardinality(1234.5) == 1234.5

    def test_clamp_floors_at_one(self):
        from repro.cost.cardinality import clamp_cardinality

        assert clamp_cardinality(0.25) == 1.0
        assert clamp_cardinality(-7.0) == 1.0

    def test_clamp_caps_huge_estimates(self):
        from repro.cost.cardinality import MAX_CARDINALITY, clamp_cardinality

        assert clamp_cardinality(1e300) == MAX_CARDINALITY

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_clamp_rejects_non_finite(self, bad):
        from repro.cost.cardinality import CostOverflowError, clamp_cardinality

        with pytest.raises(CostOverflowError):
            clamp_cardinality(bad)

    def test_huge_n_star_of_huge_relations_stays_finite(self):
        # 24 relations of 1e40 rows joined on key-free predicates: the raw
        # product is 1e960, far past float range.  Every prefix must stay
        # finite and capped.
        import math

        from repro.cost.cardinality import MAX_CARDINALITY
        from repro.cost.memory import MainMemoryCostModel

        n = 24
        relations = [Relation(f"R{i}", 1e40) for i in range(n)]
        predicates = [JoinPredicate(0, i, 2.0, 2.0) for i in range(1, n)]
        graph = JoinGraph(relations, predicates)
        order = JoinOrder(range(n))
        sizes = prefix_cardinalities(order, graph)
        assert all(math.isfinite(s) for s in sizes)
        assert all(1.0 <= s <= MAX_CARDINALITY for s in sizes)
        assert math.isfinite(MainMemoryCostModel().plan_cost(order, graph))

    def test_selectivity_above_one_is_clamped(self):
        # Fractional distinct counts would make 1/max(d_l, d_r) exceed 1.0
        # (a result larger than the cross product) without the clamp.
        predicate = JoinPredicate(0, 1, left_distinct=0.5, right_distinct=0.25)
        assert predicate.selectivity == 1.0

    def test_nonpositive_selectivity_sources_are_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate(0, 1, left_distinct=0.0, right_distinct=10.0)
        with pytest.raises(ValueError):
            JoinPredicate(0, 1, left_distinct=-5.0, right_distinct=10.0)

    def test_broken_model_cannot_return_non_finite_plan_cost(self, chain):
        from repro.cost.base import CostModel, CostOverflowError

        class SquaringModel(CostModel):
            name = "squaring"

            def join_cost(self, outer_size, inner_size, result_size):
                return 1e308 * outer_size * inner_size  # overflows to inf

        with pytest.raises(CostOverflowError, match="non-finite"):
            SquaringModel().plan_cost(JoinOrder(range(5)), chain_graph())
