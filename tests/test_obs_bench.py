"""Tests for the benchmark history ledger (repro.obs.bench)."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import bench


def _write_bench(path, payload) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return str(path)


@pytest.fixture
def bench_file(tmp_path):
    return _write_bench(
        tmp_path / "BENCH_demo.json",
        {
            "benchmark": "demo-bench",
            "seconds": 1.0,
            "speedup_vs_serial": 4.0,
            "n_joins": 20,
            "nested": {"seconds": 0.5, "label": "ignored", "ok": True},
        },
    )


# ---------------------------------------------------------------------------
# Normalization


def test_flatten_metrics_numeric_leaves_only(bench_file) -> None:
    entry = bench.normalize_bench_file(bench_file)
    assert entry["benchmark"] == "demo-bench"
    assert entry["metrics"] == {
        "n_joins": 20.0,
        "nested.seconds": 0.5,
        "seconds": 1.0,
        "speedup_vs_serial": 4.0,
    }


def test_benchmark_name_falls_back_to_stem(tmp_path) -> None:
    path = _write_bench(tmp_path / "BENCH_detlint.json", {"warm_seconds": 1.0})
    assert bench.normalize_bench_file(path)["benchmark"] == "detlint"


def test_record_appends_deterministic_lines(bench_file, tmp_path) -> None:
    history = str(tmp_path / "HISTORY.jsonl")
    bench.record([bench_file], history, note="first")
    bench.record([bench_file], history, note="first")
    with open(history, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    assert len(lines) == 2
    assert lines[0] == lines[1]
    entry = json.loads(lines[0])
    assert entry["note"] == "first"
    assert entry["source"] == "BENCH_demo.json"


def test_metric_direction_heuristics() -> None:
    assert bench.metric_direction("seconds") == "lower"
    assert bench.metric_direction("modes.full.seconds") == "lower"
    assert bench.metric_direction("seconds_baseline_min") == "lower"
    assert bench.metric_direction("overhead_factor") == "lower"
    assert bench.metric_direction("speedup_vs_full") == "higher"
    assert bench.metric_direction("evaluations_per_sec") == "higher"
    assert bench.metric_direction("n_joins") is None
    assert bench.metric_direction("pruning_ratio") is None


# ---------------------------------------------------------------------------
# Check: trailing-window regression detection


def _history_with(tmp_path, values, metric="seconds") -> str:
    history = str(tmp_path / "HISTORY.jsonl")
    with open(history, "w", encoding="utf-8") as handle:
        for value in values:
            handle.write(
                json.dumps(
                    {
                        "benchmark": "demo",
                        "source": "BENCH_demo.json",
                        "metrics": {metric: value},
                        "version": 1,
                    }
                )
                + "\n"
            )
    return history


def test_check_passes_on_steady_history(tmp_path) -> None:
    history = _history_with(tmp_path, [1.0, 1.02, 0.98, 1.01])
    report = bench.check(history)
    assert report.ok
    assert len(report.checked) == 1
    assert not report.checked[0].regressed


def test_check_flags_injected_lower_better_regression(tmp_path) -> None:
    history = _history_with(tmp_path, [1.0, 1.02, 0.98, 3.0])
    report = bench.check(history)
    assert not report.ok
    (delta,) = report.regressions
    assert delta.benchmark == "demo"
    assert delta.metric == "seconds"
    assert delta.direction == "lower"
    assert delta.value == 3.0


def test_check_flags_injected_higher_better_regression(tmp_path) -> None:
    history = _history_with(
        tmp_path, [4.0, 4.1, 3.9, 1.0], metric="speedup_vs_serial"
    )
    report = bench.check(history)
    assert not report.ok
    assert report.regressions[0].direction == "higher"


def test_noise_widens_the_tolerance(tmp_path) -> None:
    # A benchmark that historically wobbles 2x does not flag on a value
    # the steady threshold alone would reject.
    noisy = _history_with(tmp_path, [1.0, 2.0, 1.0, 2.0, 2.9])
    assert bench.check(noisy).ok
    steady = _history_with(tmp_path, [1.0, 1.0, 1.0, 1.0, 2.9])
    assert not bench.check(steady).ok


def test_single_entry_benchmarks_are_skipped(tmp_path) -> None:
    history = _history_with(tmp_path, [1.0])
    report = bench.check(history)
    assert report.ok
    assert "demo" in report.skipped


def test_check_passes_on_backfilled_repo_history() -> None:
    # The checked-in ledger (seeded from the BENCH_*.json files) must
    # never flag: it is the baseline future runs compare against.
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    history = os.path.join(root, "benchmarks", "results", "HISTORY.jsonl")
    assert os.path.isfile(history), "backfilled HISTORY.jsonl is missing"
    report = bench.check(history)
    assert report.ok, bench.render_check(report)


def test_check_report_is_deterministic(tmp_path) -> None:
    history = _history_with(tmp_path, [1.0, 1.1, 0.9, 5.0])
    first = bench.check_report_dict(bench.check(history))
    second = bench.check_report_dict(bench.check(history))
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


# ---------------------------------------------------------------------------
# CLI


def test_bench_cli_record_then_check(bench_file, tmp_path, capsys) -> None:
    from repro.cli import main as repro_main

    history = str(tmp_path / "HISTORY.jsonl")
    assert (
        repro_main(
            ["bench", "record", bench_file, "--history", history, "--note", "a"]
        )
        == 0
    )
    assert (
        repro_main(["bench", "record", bench_file, "--history", history]) == 0
    )
    capsys.readouterr()
    assert repro_main(["bench", "check", "--history", history]) == 0
    out = capsys.readouterr().out
    assert "0 regression(s)" in out


def test_bench_cli_check_exits_one_on_regression(tmp_path, capsys) -> None:
    from repro.cli import main as repro_main

    history = _history_with(tmp_path, [1.0, 1.0, 1.0, 9.0])
    assert repro_main(["bench", "check", "--history", history]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out


def test_bench_cli_missing_inputs_are_usage_errors(tmp_path, capsys) -> None:
    from repro.cli import main as repro_main

    missing = str(tmp_path / "nope.json")
    history = str(tmp_path / "HISTORY.jsonl")
    assert (
        repro_main(["bench", "record", missing, "--history", history]) == 2
    )
    assert repro_main(["bench", "check", "--history", history]) == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "Traceback" not in err


def test_bench_cli_check_json_format(tmp_path, capsys) -> None:
    from repro.cli import main as repro_main

    history = _history_with(tmp_path, [1.0, 1.0, 1.0, 9.0])
    assert (
        repro_main(["bench", "check", "--history", history, "--format", "json"])
        == 1
    )
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["ok"] is False
    assert parsed["regressions"][0]["metric"] == "seconds"
