"""Tests for the plan executor."""

import pytest

from repro.catalog.builder import QueryBuilder
from repro.engine.datagen import generate_database
from repro.engine.executor import execute_order
from repro.plans.join_order import JoinOrder
from repro.plans.validity import valid_orders


@pytest.fixture(scope="module")
def small_setup():
    builder = QueryBuilder("exec")
    a = builder.relation("A", 200)
    b = builder.relation("B", 300)
    c = builder.relation("C", 100)
    builder.join(a, b, left_distinct=40, right_distinct=60)
    builder.join(b, c, left_distinct=50, right_distinct=25)
    graph = builder.build().graph
    tables = generate_database(graph, seed=1)
    return graph, tables


class TestExecuteOrder:
    def test_result_sizes_recorded(self, small_setup):
        graph, tables = small_setup
        result = execute_order(JoinOrder([0, 1, 2]), graph, tables)
        assert len(result.intermediate_sizes) == graph.n_joins
        assert result.n_rows == result.intermediate_sizes[-1]

    def test_final_size_order_independent(self, small_setup):
        """All valid orders produce the same final result size."""
        graph, tables = small_setup
        sizes = {
            execute_order(order, graph, tables).n_rows
            for order in valid_orders(graph)
        }
        assert len(sizes) == 1

    def test_estimates_attached(self, small_setup):
        graph, tables = small_setup
        result = execute_order(JoinOrder([0, 1, 2]), graph, tables)
        assert len(result.estimated_sizes) == graph.n_relations

    def test_estimates_track_measurements(self, small_setup):
        """Measured/estimated ratios stay within an order of magnitude."""
        graph, tables = small_setup
        result = execute_order(JoinOrder([0, 1, 2]), graph, tables)
        for ratio in result.size_ratios():
            assert 0.1 < ratio < 10.0

    def test_length_mismatch_rejected(self, small_setup):
        graph, tables = small_setup
        with pytest.raises(ValueError):
            execute_order(JoinOrder([0, 1]), graph, tables)

    def test_cross_product_execution(self):
        builder = QueryBuilder()
        builder.relation("A", 10)
        builder.relation("B", 20)
        graph = builder.build().graph  # no predicates: disconnected
        tables = generate_database(graph, seed=0)
        result = execute_order(JoinOrder([0, 1]), graph, tables)
        assert result.n_rows == 200

    def test_cyclic_graph_second_predicate_filters(self):
        builder = QueryBuilder("cycle")
        a = builder.relation("A", 100)
        b = builder.relation("B", 100)
        c = builder.relation("C", 100)
        builder.join(a, b, 20, 20)
        builder.join(b, c, 20, 20)
        builder.join(a, c, 20, 20)
        graph = builder.build().graph
        tables = generate_database(graph, seed=2)
        result = execute_order(JoinOrder([0, 1, 2]), graph, tables)
        # The final join applies two predicates; the result must be no
        # larger than executing with either predicate alone.
        from repro.engine.operators import hash_join
        from repro.engine.datagen import join_column_name

        two_join = hash_join(
            hash_join(
                tables[0],
                tables[1],
                [(join_column_name(0, 0), join_column_name(1, 0))],
            ),
            tables[2],
            [(join_column_name(1, 1), join_column_name(2, 1))],
        )
        assert result.n_rows <= two_join.n_rows
