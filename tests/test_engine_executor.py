"""Tests for the plan executor."""

import itertools

import pytest

from repro.catalog.builder import QueryBuilder
from repro.engine.datagen import generate_database, join_column_name
from repro.engine.executor import execute_order
from repro.plans.join_order import JoinOrder
from repro.plans.validity import valid_orders


@pytest.fixture(scope="module")
def small_setup():
    builder = QueryBuilder("exec")
    a = builder.relation("A", 200)
    b = builder.relation("B", 300)
    c = builder.relation("C", 100)
    builder.join(a, b, left_distinct=40, right_distinct=60)
    builder.join(b, c, left_distinct=50, right_distinct=25)
    graph = builder.build().graph
    tables = generate_database(graph, seed=1)
    return graph, tables


class TestExecuteOrder:
    def test_result_sizes_recorded(self, small_setup):
        graph, tables = small_setup
        result = execute_order(JoinOrder([0, 1, 2]), graph, tables)
        assert len(result.intermediate_sizes) == graph.n_joins
        assert result.n_rows == result.intermediate_sizes[-1]

    def test_final_size_order_independent(self, small_setup):
        """All valid orders produce the same final result size."""
        graph, tables = small_setup
        sizes = {
            execute_order(order, graph, tables).n_rows
            for order in valid_orders(graph)
        }
        assert len(sizes) == 1

    def test_estimates_attached(self, small_setup):
        graph, tables = small_setup
        result = execute_order(JoinOrder([0, 1, 2]), graph, tables)
        assert len(result.estimated_sizes) == graph.n_relations

    def test_estimates_track_measurements(self, small_setup):
        """Measured/estimated ratios stay within an order of magnitude."""
        graph, tables = small_setup
        result = execute_order(JoinOrder([0, 1, 2]), graph, tables)
        for ratio in result.size_ratios():
            assert 0.1 < ratio < 10.0

    def test_length_mismatch_rejected(self, small_setup):
        graph, tables = small_setup
        with pytest.raises(ValueError):
            execute_order(JoinOrder([0, 1]), graph, tables)

    def test_cross_product_execution(self):
        builder = QueryBuilder()
        builder.relation("A", 10)
        builder.relation("B", 20)
        graph = builder.build().graph  # no predicates: disconnected
        tables = generate_database(graph, seed=0)
        result = execute_order(JoinOrder([0, 1]), graph, tables)
        assert result.n_rows == 200

    def test_base_sizes_match_tables(self, small_setup):
        graph, tables = small_setup
        order = JoinOrder([2, 1, 0])
        result = execute_order(order, graph, tables)
        assert result.base_sizes == tuple(
            tables[vertex].n_rows for vertex in order
        )

    def test_operator_cardinalities_shape(self, small_setup):
        graph, tables = small_setup
        result = execute_order(JoinOrder([0, 1, 2]), graph, tables)
        measured = result.operator_cardinalities
        assert len(measured) == graph.n_relations
        assert measured[0] == result.base_sizes[0]
        assert measured[-1] == result.n_rows

    def test_cyclic_graph_second_predicate_filters(self):
        builder = QueryBuilder("cycle")
        a = builder.relation("A", 100)
        b = builder.relation("B", 100)
        c = builder.relation("C", 100)
        builder.join(a, b, 20, 20)
        builder.join(b, c, 20, 20)
        builder.join(a, c, 20, 20)
        graph = builder.build().graph
        tables = generate_database(graph, seed=2)
        result = execute_order(JoinOrder([0, 1, 2]), graph, tables)
        # The final join applies two predicates; the result must be no
        # larger than executing with either predicate alone.
        from repro.engine.operators import hash_join
        from repro.engine.datagen import join_column_name

        two_join = hash_join(
            hash_join(
                tables[0],
                tables[1],
                [(join_column_name(0, 0), join_column_name(1, 0))],
            ),
            tables[2],
            [(join_column_name(1, 1), join_column_name(2, 1))],
        )
        assert result.n_rows <= two_join.n_rows


def brute_force_prefix_counts(order, graph, tables):
    """Count, for every prefix of ``order`` of length >= 2, the tuples of
    the cross product that satisfy every predicate internal to the prefix.

    This is the executor's contract stated independently of its hash-join
    implementation; it is only affordable on tiny tables.
    """
    counts = []
    for length in range(2, len(order) + 1):
        placed = list(order)[:length]
        internal = [
            (index, predicate)
            for index, predicate in enumerate(graph.predicates)
            if predicate.left in placed and predicate.right in placed
        ]
        count = 0
        for rows in itertools.product(
            *(range(tables[vertex].n_rows) for vertex in placed)
        ):
            row_of = dict(zip(placed, rows))
            for index, predicate in internal:
                left = tables[predicate.left].column(
                    join_column_name(predicate.left, index)
                )
                right = tables[predicate.right].column(
                    join_column_name(predicate.right, index)
                )
                if (
                    left.values[row_of[predicate.left]]
                    != right.values[row_of[predicate.right]]
                ):
                    break
            else:
                count += 1
        counts.append(count)
    return tuple(counts)


class TestCardinalityAccounting:
    """The measured per-operator row counts are exactly the cardinalities
    of the joins, verified against a brute-force cross-product count."""

    @pytest.fixture(scope="class")
    def tiny_cycle(self):
        builder = QueryBuilder("tiny")
        a = builder.relation("A", 20)
        b = builder.relation("B", 25)
        c = builder.relation("C", 15)
        builder.join(a, b, left_distinct=5, right_distinct=6)
        builder.join(b, c, left_distinct=4, right_distinct=5)
        builder.join(a, c, left_distinct=6, right_distinct=3)
        graph = builder.build().graph
        tables = generate_database(graph, seed=9)
        return graph, tables

    def test_intermediates_match_brute_force(self, tiny_cycle):
        graph, tables = tiny_cycle
        for order in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
            result = execute_order(JoinOrder(order), graph, tables)
            assert result.intermediate_sizes == brute_force_prefix_counts(
                order, graph, tables
            )

    def test_operator_cardinalities_match_brute_force(self, tiny_cycle):
        graph, tables = tiny_cycle
        order = [1, 0, 2]
        result = execute_order(JoinOrder(order), graph, tables)
        expected = (
            tables[order[0]].n_rows,
            *brute_force_prefix_counts(order, graph, tables),
        )
        assert result.operator_cardinalities == expected

    def test_chain_with_selection_free_tables(self):
        builder = QueryBuilder("tinychain")
        a = builder.relation("A", 12)
        b = builder.relation("B", 18)
        c = builder.relation("C", 10)
        builder.join(a, b, left_distinct=4, right_distinct=6)
        builder.join(b, c, left_distinct=5, right_distinct=4)
        graph = builder.build().graph
        tables = generate_database(graph, seed=4)
        result = execute_order(JoinOrder([0, 1, 2]), graph, tables)
        assert result.intermediate_sizes == brute_force_prefix_counts(
            [0, 1, 2], graph, tables
        )
        assert result.base_sizes == (12, 18, 10)
