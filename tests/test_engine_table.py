"""Tests for the columnar table."""

import pytest

from repro.engine.table import Column, Table


class TestColumn:
    def test_len(self):
        assert len(Column("c", (1, 2, 3))) == 3


class TestTable:
    def test_from_dict(self):
        table = Table.from_dict("t", {"a": [1, 2], "b": [3, 4]})
        assert table.n_rows == 2
        assert table.column_names == ["a", "b"]

    def test_rejects_ragged_columns(self):
        with pytest.raises(ValueError, match="differing lengths"):
            Table("t", [Column("a", (1, 2)), Column("b", (1,))])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate column"):
            Table("t", [Column("a", (1,)), Column("a", (2,))])

    def test_empty_table(self):
        table = Table("t", [])
        assert table.n_rows == 0
        assert table.column_names == []

    def test_column_lookup(self):
        table = Table.from_dict("t", {"a": [1, 2]})
        assert table.column("a").values == (1, 2)
        assert table.has_column("a")
        assert not table.has_column("b")

    def test_missing_column_message(self):
        table = Table.from_dict("t", {"a": [1]})
        with pytest.raises(KeyError, match="no column 'b'"):
            table.column("b")

    def test_row(self):
        table = Table.from_dict("t", {"a": [1, 2], "b": [3, 4]})
        assert table.row(1) == {"a": 2, "b": 4}

    def test_take(self):
        table = Table.from_dict("t", {"a": [10, 20, 30]})
        taken = table.take([2, 0])
        assert taken.column("a").values == (30, 10)

    def test_take_with_repeats(self):
        table = Table.from_dict("t", {"a": [10, 20]})
        assert table.take([0, 0, 1]).n_rows == 3

    def test_str(self):
        table = Table.from_dict("t", {"a": [1]})
        assert "t" in str(table)
