"""Differential harness for the incremental plan-evaluation engine.

The engine promises *bitwise* agreement with the full-cost oracle
(:meth:`CostModel.plan_cost`) on every unaborted evaluation — stronger
than the 1e-9 relative tolerance the acceptance criterion asks for — and
that bound-pruned aborts can never flip an accept/reject decision.  Both
promises are exercised here over random graphs x random move sequences,
for both cost models, plus end-to-end: II and SA runs must produce
bitwise-identical orders, costs, budgets, and trajectories whether they
run on the reference :class:`Evaluator` or the :class:`DeltaEvaluator`
in budget-compatibility mode.
"""

from __future__ import annotations

import random

import pytest

from repro.core.budget import Budget
from repro.core.combinations import MethodParams
from repro.core.iterative import improvement_run
from repro.core.moves import MoveSet
from repro.core.optimizer import optimize
from repro.core.state import DeltaEvaluator, Evaluator, PER_JOIN, PER_PLAN
from repro.cost.disk import DiskCostModel
from repro.cost.incremental import (
    IncrementalEvaluator,
    QueryContext,
    supports_incremental,
)
from repro.cost.memory import MainMemoryCostModel
from repro.cost.static import StaticCostModel
from repro.plans.validity import random_valid_order
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query

from .conftest import chain_graph, cycle_graph, star_graph

MODELS = (MainMemoryCostModel(), DiskCostModel())

#: >= 20 random graphs; together with the hand-built shapes and the walk
#: length below, the harness crosses 10k differential moves per model.
RANDOM_GRAPHS = tuple(
    generate_query(
        DEFAULT_SPEC,
        n_joins=random.Random(index).choice((4, 7, 12, 20, 30)),
        seed=1000 + index,
    ).graph
    for index in range(20)
)
MOVES_PER_GRAPH = 500


def _walk_and_compare(graph, model, seed, n_moves, prune_probability=0.0):
    """Replay one random walk; return (moves checked, pruned aborts).

    Every candidate is costed by the engine and by ``plan_cost``; when a
    bound is used (with ``prune_probability``), a pruned result must imply
    the full cost exceeds the bound (the reject decision is unchanged).
    """
    rng = random.Random(seed)
    move_set = MoveSet()
    engine = IncrementalEvaluator(graph, model)
    current = random_valid_order(graph, rng)
    current_cost, _ = engine.rebase(current.positions)
    assert current_cost == model.plan_cost(current, graph)
    checked = pruned = 0
    for _ in range(n_moves):
        move, candidate = move_set.random_valid_move(current, graph, rng)
        full_cost = model.plan_cost(candidate, graph)
        bound = None
        if prune_probability and rng.random() < prune_probability:
            bound = current_cost
        engine_cost, joins = engine.evaluate(
            candidate.positions, bound, move.first_changed
        )
        checked += 1
        if engine_cost is None:
            pruned += 1
            assert bound is not None
            # An abort asserts "cost exceeds the bound"; verify against
            # the oracle, and confirm the walk actually stopped early.
            assert full_cost > bound
            assert joins <= graph.n_joins
        else:
            assert engine_cost == full_cost, (
                f"bitwise mismatch on {candidate}: "
                f"engine {engine_cost!r} vs full {full_cost!r}"
            )
            # Accept-like policy to keep the anchor moving.
            if engine_cost < current_cost or rng.random() < 0.3:
                engine.commit(candidate.positions)
                current, current_cost = candidate, engine_cost
    return checked, pruned


class TestDifferentialRandomWalks:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_random_graphs_random_walks(self, model):
        total = total_pruned = 0
        for index, graph in enumerate(RANDOM_GRAPHS):
            checked, pruned = _walk_and_compare(
                graph,
                model,
                seed=index,
                n_moves=MOVES_PER_GRAPH,
                prune_probability=0.4,
            )
            total += checked
            total_pruned += pruned
        assert total >= len(RANDOM_GRAPHS) * MOVES_PER_GRAPH
        # The bound must actually bite somewhere, or the abort path went
        # untested.
        assert total_pruned > 0

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize(
        "make_graph", (chain_graph, star_graph, cycle_graph)
    )
    def test_hand_built_shapes(self, model, make_graph):
        _walk_and_compare(make_graph(), model, seed=5, n_moves=200)

    def test_total_moves_cross_acceptance_floor(self):
        """The harness covers >= 10k moves across >= 20 graphs per model."""
        assert len(RANDOM_GRAPHS) >= 20
        assert len(RANDOM_GRAPHS) * MOVES_PER_GRAPH >= 10_000


class TestEngineProtocol:
    def test_rejects_plan_cost_overriding_models(self):
        graph = chain_graph()
        static = StaticCostModel(MainMemoryCostModel())
        assert not supports_incremental(static)
        with pytest.raises(ValueError, match="overrides plan_cost"):
            QueryContext(graph, static)
        with pytest.raises(ValueError, match="overrides plan_cost"):
            DeltaEvaluator(graph, static, Budget.unlimited())

    def test_commit_requires_fully_evaluated_candidate(self):
        graph = chain_graph()
        engine = IncrementalEvaluator(graph, MainMemoryCostModel())
        with pytest.raises(ValueError, match="nothing to commit"):
            engine.commit()
        rng = random.Random(0)
        order = random_valid_order(graph, rng)
        engine.rebase(order.positions)
        # A pruned evaluation leaves nothing committable.
        neighbor = order.swap(0, 1)
        cost, _ = engine.evaluate(neighbor.positions, upper_bound=0.0)
        if cost is None:
            with pytest.raises(ValueError, match="nothing to commit"):
                engine.commit(neighbor.positions)

    def test_commit_order_mismatch_raises(self):
        graph = chain_graph()
        engine = IncrementalEvaluator(graph, MainMemoryCostModel())
        order = random_valid_order(graph, random.Random(0))
        engine.rebase(order.positions)
        neighbor = order.swap(1, 2)
        engine.evaluate(neighbor.positions)
        with pytest.raises(ValueError, match="mismatch"):
            engine.commit(order.swap(2, 3).positions)

    def test_stale_prefix_hint_is_only_advisory(self):
        """A wrong first_changed hint may cost speed, never correctness."""
        graph = star_graph()
        model = MainMemoryCostModel()
        engine = IncrementalEvaluator(graph, model)
        order = random_valid_order(graph, random.Random(1))
        engine.rebase(order.positions)
        neighbor = order.swap(1, 3)
        # Claim the order first changed at position 3 even though position
        # 1 differs: the engine must detect the true shared prefix.
        cost, _ = engine.evaluate(neighbor.positions, None, 3)
        assert cost == model.plan_cost(neighbor, graph)

    def test_anchor_evaluation_is_free(self):
        graph = chain_graph()
        engine = IncrementalEvaluator(graph, MainMemoryCostModel())
        order = random_valid_order(graph, random.Random(2))
        cost, joins = engine.rebase(order.positions)
        assert joins == graph.n_joins
        again, joins_again = engine.evaluate(order.positions)
        assert again == cost
        assert joins_again == 0


def _run_ii(evaluator, graph, seed):
    from repro.core.budget import BudgetExhausted

    rng = random.Random(seed)
    start = random_valid_order(graph, rng)
    try:
        return improvement_run(start, evaluator, MoveSet(), rng, patience=24)
    except BudgetExhausted:
        return evaluator.best


class TestEndToEndEquivalence:
    """II/SA on DeltaEvaluator (compat mode) == reference Evaluator."""

    @pytest.mark.parametrize("method", ("II", "SA", "IAI", "WALK"))
    @pytest.mark.parametrize("n_joins", (8, 15))
    def test_optimize_bitwise_identical_orders(self, method, n_joins):
        graph = generate_query(
            DEFAULT_SPEC, n_joins=n_joins, seed=n_joins
        ).graph
        kwargs = dict(
            method=method, seed=13, time_factor=2.0, units_per_n2=10.0
        )
        reference = optimize(graph, incremental=False, **kwargs)
        delta = optimize(
            graph, incremental=True, budget_accounting=PER_PLAN, **kwargs
        )
        assert delta.order == reference.order
        assert delta.cost == reference.cost
        assert delta.units_spent == reference.units_spent
        assert delta.n_evaluations == reference.n_evaluations
        assert delta.trajectory == reference.trajectory

    def test_improvement_run_identical_on_both_evaluators(self):
        graph = generate_query(DEFAULT_SPEC, n_joins=12, seed=3).graph
        model = MainMemoryCostModel()
        reference = _run_ii(
            Evaluator(graph, model, Budget.unlimited()), graph, seed=9
        )
        delta_eval = DeltaEvaluator(graph, model, Budget.unlimited())
        delta = _run_ii(delta_eval, graph, seed=9)
        assert delta.order == reference.order
        assert delta.cost == reference.cost
        # Pruning must have fired, and must have saved join evaluations.
        assert delta_eval.n_pruned > 0
        assert (
            delta_eval.n_joins_evaluated
            < delta_eval.n_evaluations * graph.n_joins
        )

    def test_sa_bound_pruning_same_quality_regime(self):
        """Draw-first SA diverges in rng stream but stays a sane anneal."""
        graph = generate_query(DEFAULT_SPEC, n_joins=10, seed=21).graph
        classic = optimize(graph, method="SA", seed=4, time_factor=2.0)
        pruned = optimize(
            graph,
            method="SA",
            seed=4,
            time_factor=2.0,
            params=MethodParams(sa_bound_pruning=True),
        )
        assert pruned.cost <= classic.cost * 100
        # Both must verify against the full oracle (optimize() gates).

    def test_disconnected_graphs_route_through_incremental(
        self, two_components
    ):
        reference = optimize(two_components, method="II", seed=2,
                             incremental=False)
        delta = optimize(two_components, method="II", seed=2,
                         incremental=True)
        assert delta.order == reference.order
        assert delta.cost == reference.cost


class TestBudgetAccounting:
    def test_per_plan_charges_match_reference(self):
        graph = generate_query(DEFAULT_SPEC, n_joins=9, seed=5).graph
        model = MainMemoryCostModel()
        budget_a, budget_b = Budget(limit=4000.0), Budget(limit=4000.0)
        _run_ii(Evaluator(graph, model, budget_a), graph, seed=1)
        _run_ii(
            DeltaEvaluator(graph, model, budget_b, charge_mode=PER_PLAN),
            graph,
            seed=1,
        )
        assert budget_a.spent == budget_b.spent

    def test_per_join_charges_only_walked_joins(self):
        graph = generate_query(DEFAULT_SPEC, n_joins=9, seed=5).graph
        model = MainMemoryCostModel()
        per_plan = Budget(limit=4000.0)
        per_join = Budget(limit=4000.0)
        _run_ii(
            DeltaEvaluator(graph, model, per_plan, charge_mode=PER_PLAN),
            graph,
            seed=1,
        )
        delta = DeltaEvaluator(graph, model, per_join, charge_mode=PER_JOIN)
        _run_ii(delta, graph, seed=1)
        # Identical walk (same rng, same decisions), but per-join pays
        # only for suffix walks — strictly cheaper on any non-trivial run.
        assert per_join.spent < per_plan.spent
        assert per_join.spent >= delta.n_evaluations  # >= 1 unit each

    def test_per_join_buys_more_evaluations(self):
        graph = generate_query(DEFAULT_SPEC, n_joins=15, seed=8).graph
        model = MainMemoryCostModel()
        limit = 40.0 * graph.n_joins
        compat = DeltaEvaluator(
            graph, model, Budget(limit=limit), charge_mode=PER_PLAN
        )
        _run_ii(compat, graph, seed=6)
        per_join = DeltaEvaluator(
            graph, model, Budget(limit=limit), charge_mode=PER_JOIN
        )
        _run_ii(per_join, graph, seed=6)
        assert per_join.n_evaluations >= compat.n_evaluations

    def test_unknown_charge_mode_rejected(self):
        graph = chain_graph()
        with pytest.raises(ValueError, match="charge_mode"):
            DeltaEvaluator(
                graph,
                MainMemoryCostModel(),
                Budget.unlimited(),
                charge_mode="per-century",
            )


class TestResilientPathStaysOnOracle:
    def test_resilient_optimize_never_instantiates_engine(
        self, monkeypatch, small_query
    ):
        """optimize(resilient=True) must use the full-cost oracle only."""
        instantiated = []
        original_init = IncrementalEvaluator.__init__

        def spying_init(self, graph, model):
            instantiated.append(type(model).__name__)
            original_init(self, graph, model)

        monkeypatch.setattr(IncrementalEvaluator, "__init__", spying_init)
        result = optimize(
            small_query.graph, method="II", seed=0, resilient=True
        )
        assert result.cost > 0
        assert instantiated == []

    def test_verification_gate_recomputes_with_full_oracle(self):
        """verify_plan goes through model.plan_cost, not the engine."""
        from repro.robustness.verify import verify_plan

        graph = chain_graph()
        model = MainMemoryCostModel()
        order = random_valid_order(graph, random.Random(0))
        engine_cost, _ = IncrementalEvaluator(graph, model).rebase(
            order.positions
        )
        report = verify_plan(order, engine_cost, graph, model)
        assert report.ok
