"""Tests for iterative improvement over the bushy space."""

import random

import pytest

from repro.core.budget import Budget, BudgetExhausted
from repro.core.bushy_search import (
    NoBushyMove,
    bushy_improvement_run,
    bushy_iterative_improvement,
    random_bushy_neighbor,
)
from repro.cost.memory import MainMemoryCostModel
from repro.plans.bushy import (
    bushy_cost,
    is_valid_bushy,
    join,
    leaf,
    linear_to_bushy,
    random_bushy_tree,
)
from repro.plans.join_order import JoinOrder


class TestRandomBushyNeighbor:
    @pytest.mark.parametrize("seed", range(8))
    def test_neighbors_valid(self, cycle, seed):
        rng = random.Random(seed)
        tree = random_bushy_tree(cycle, rng)
        for _ in range(20):
            tree = random_bushy_neighbor(tree, cycle, rng)
            assert is_valid_bushy(tree, cycle)
            assert tree.relations == frozenset(range(cycle.n_relations))

    def test_single_leaf_has_no_neighbors(self, chain):
        with pytest.raises(NoBushyMove):
            random_bushy_neighbor(leaf(0), chain, random.Random(0))

    def test_commute_reachable(self, chain):
        """From (0 1), the commuted (1 0) is reachable in one move."""
        tree = join(leaf(0), leaf(1))
        small = chain.subgraph((0, 1))
        rng = random.Random(0)
        neighbor = random_bushy_neighbor(tree, small, rng)
        assert list(neighbor.leaves()) == [1, 0]

    def test_reaches_bushy_from_left_deep(self, star):
        """Rotations escape the left-deep shape."""
        rng = random.Random(2)
        tree = linear_to_bushy(JoinOrder([0, 1, 2, 3, 4]))
        seen_bushy = False
        for _ in range(60):
            tree = random_bushy_neighbor(tree, star, rng)
            if not tree.is_left_deep():
                seen_bushy = True
                break
        assert seen_bushy


class TestBushyImprovement:
    def test_run_never_worse(self, star):
        rng = random.Random(1)
        start = random_bushy_tree(star, rng)
        model = MainMemoryCostModel()
        start_cost = bushy_cost(start, star, model)
        result = bushy_improvement_run(
            start, star, model, Budget(limit=1e8), rng
        )
        assert result.cost <= start_cost

    def test_multi_start_returns_best(self, cycle):
        rng = random.Random(3)
        result = bushy_iterative_improvement(
            cycle, MainMemoryCostModel(), Budget(limit=5000), rng
        )
        assert is_valid_bushy(result.tree, cycle)
        assert result.cost > 0

    def test_budget_respected(self, medium_query):
        budget = Budget(limit=300)
        result = bushy_iterative_improvement(
            medium_query.graph, MainMemoryCostModel(), budget, random.Random(0)
        )
        assert budget.exhausted
        assert result.cost > 0

    def test_budget_too_small_raises(self, medium_query):
        with pytest.raises(BudgetExhausted):
            bushy_iterative_improvement(
                medium_query.graph,
                MainMemoryCostModel(),
                Budget(limit=1),
                random.Random(0),
            )

    def test_bushy_at_least_matches_linear_space_on_small_graph(self, star):
        """The bushy space contains all left-deep plans, so bushy II with
        ample budget finds a plan at least as cheap as exhaustive
        left-deep search under the same (static) sizes."""
        from repro.cost.static import StaticCostModel
        from repro.plans.validity import valid_orders

        model = MainMemoryCostModel()
        static = StaticCostModel(model)
        best_linear = min(
            static.plan_cost(order, star) for order in valid_orders(star)
        )
        result = bushy_iterative_improvement(
            star, model, Budget(limit=3e5), random.Random(5)
        )
        assert result.cost <= best_linear * 1.0 + 1e-9
