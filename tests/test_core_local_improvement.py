"""Tests for the local improvement heuristic."""

import pytest

from repro.core.budget import Budget
from repro.core.local_improvement import (
    FEASIBLE_STRATEGIES,
    best_strategy_for_budget,
    check_strategy,
    improve_pass,
    local_improve,
    pass_cost_estimate,
)
from repro.core.state import Evaluation, Evaluator
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order, valid_orders

from tests.conftest import star_graph


def make_start(graph, order_positions, limit=1e9):
    evaluator = Evaluator(graph, MainMemoryCostModel(), Budget(limit=limit))
    order = JoinOrder(order_positions)
    return Evaluation(order, evaluator.evaluate(order)), evaluator


class TestStrategyValidation:
    def test_accepts_paper_strategies(self):
        for cluster, overlap in FEASIBLE_STRATEGIES:
            check_strategy(cluster, overlap, n_relations=10)

    def test_rejects_cluster_of_one(self):
        with pytest.raises(ValueError):
            check_strategy(1, 0, 10)

    def test_rejects_overlap_equal_to_cluster(self):
        with pytest.raises(ValueError):
            check_strategy(3, 3, 10)

    def test_rejects_cluster_beyond_relations(self):
        with pytest.raises(ValueError):
            check_strategy(11, 0, 10)


class TestPassCostEstimate:
    def test_more_overlap_costs_more(self):
        assert pass_cost_estimate(4, 3, 30) > pass_cost_estimate(4, 0, 30)

    def test_bigger_cluster_costs_more(self):
        assert pass_cost_estimate(5, 4, 30) > pass_cost_estimate(3, 2, 30)


class TestBestStrategyForBudget:
    def test_rich_budget_gets_five_four(self):
        assert best_strategy_for_budget(1e12, 30) == (5, 4)

    def test_tiny_budget_gets_none(self):
        assert best_strategy_for_budget(1.0, 30) is None

    def test_moderate_budget_gets_weaker_strategy(self):
        units = pass_cost_estimate(2, 1, 30) + 1
        strategy = best_strategy_for_budget(units, 30)
        assert strategy in ((2, 1), (2, 0))

    def test_cluster_never_exceeds_relations(self):
        strategy = best_strategy_for_budget(1e12, 3)
        assert strategy is not None
        assert strategy[0] <= 3


class TestImprovePass:
    def test_never_worse(self, star):
        start, evaluator = make_start(star, [0, 4, 2, 1, 3])
        improved = improve_pass(start, evaluator, cluster_size=3, overlap=2)
        assert improved.cost <= start.cost

    def test_result_valid(self, cycle):
        start, evaluator = make_start(cycle, [0, 1, 2, 3])
        improved = improve_pass(start, evaluator, cluster_size=3, overlap=1)
        assert is_valid_order(improved.order, cycle)

    def test_full_window_finds_optimum(self):
        graph = star_graph([1000, 100, 200, 50])
        worst = max(
            valid_orders(graph),
            key=lambda o: MainMemoryCostModel().plan_cost(o, graph),
        )
        start, evaluator = make_start(graph, worst.positions)
        improved = improve_pass(
            start, evaluator, cluster_size=graph.n_relations, overlap=0
        )
        best = min(
            MainMemoryCostModel().plan_cost(o, graph) for o in valid_orders(graph)
        )
        assert improved.cost == pytest.approx(best)


class TestLocalImprove:
    def test_fixpoint_reached(self, star):
        start, evaluator = make_start(star, [0, 4, 2, 1, 3])
        first = local_improve(start, evaluator, cluster_size=3, overlap=2)
        second = local_improve(first, evaluator, cluster_size=3, overlap=2)
        assert second.cost == first.cost

    def test_budget_exhaustion_returns_best_so_far(self, medium_query):
        graph = medium_query.graph
        evaluator = Evaluator(graph, MainMemoryCostModel(), Budget(limit=500))
        order = JoinOrder(_any_valid(graph))
        start = Evaluation(order, evaluator.evaluate(order))
        improved = local_improve(start, evaluator, cluster_size=4, overlap=3)
        assert improved.cost <= start.cost
        assert evaluator.budget.exhausted

    def test_max_passes_respected(self, star):
        start, evaluator = make_start(star, [0, 4, 2, 1, 3])
        before = evaluator.n_evaluations
        local_improve(start, evaluator, 2, 1, max_passes=1)
        one_pass_evals = evaluator.n_evaluations - before
        # A (2,1) pass over 5 relations visits 4 windows x 1 extra perm.
        assert one_pass_evals <= 8

    def test_nonoverlapping_single_pass(self, chain):
        start, evaluator = make_start(chain, [4, 3, 2, 1, 0])
        improved = local_improve(start, evaluator, cluster_size=2, overlap=0)
        assert improved.cost <= start.cost


def _any_valid(graph):
    import random

    from repro.plans.validity import random_valid_order

    return random_valid_order(graph, random.Random(0)).positions
