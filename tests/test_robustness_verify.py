"""Tests for the plan-verification gate and catalog validation."""

import math

import pytest

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.core.optimizer import optimize
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder
from repro.plans.validity import first_invalid_position
from repro.robustness import (
    CORRUPTION_KINDS,
    PlanVerificationError,
    catalog_violations,
    corrupt_catalog,
    sanitize_catalog,
    verify_or_raise,
    verify_plan,
)


class TestVerifyPlan:
    def test_accepts_real_optimizer_output(self, chain):
        model = MainMemoryCostModel()
        result = optimize(chain, method="II", model=model, time_factor=1.0)
        report = verify_plan(result.order, result.cost, chain, model)
        assert report.ok
        assert report.violations == ()
        assert bool(report)

    def test_rejects_incomplete_permutation(self, chain):
        model = MainMemoryCostModel()
        report = verify_plan(JoinOrder([0, 1, 2]), 1.0, chain, model)
        assert not report.ok
        assert "not a permutation" in report.violations[0]

    def test_rejects_foreign_relation_indices(self, chain):
        # Right length, wrong index set — an order built for another graph.
        model = MainMemoryCostModel()
        report = verify_plan(JoinOrder([0, 1, 2, 3, 5]), 1.0, chain, model)
        assert not report.ok
        assert "not a permutation" in report.violations[0]

    def test_rejects_premature_cross_product(self, chain):
        # R0 and R4 are the chain's endpoints: placing them first forces a
        # cross product long before the chain connects them.
        model = MainMemoryCostModel()
        order = JoinOrder([0, 4, 1, 2, 3])
        assert first_invalid_position(order, chain) is not None
        cost = 1.0
        report = verify_plan(order, cost, chain, model)
        assert not report.ok
        assert any("cross product" in v for v in report.violations)

    @pytest.mark.parametrize("bad_cost", [float("nan"), math.inf, -math.inf])
    def test_rejects_non_finite_cost(self, chain, bad_cost):
        model = MainMemoryCostModel()
        result = optimize(chain, method="II", model=model, time_factor=1.0)
        report = verify_plan(result.order, bad_cost, chain, model)
        assert not report.ok
        assert any("not finite" in v for v in report.violations)

    def test_rejects_negative_cost(self, chain):
        model = MainMemoryCostModel()
        result = optimize(chain, method="II", model=model, time_factor=1.0)
        report = verify_plan(result.order, -5.0, chain, model)
        assert not report.ok
        assert any("negative" in v for v in report.violations)

    def test_rejects_cost_disagreement(self, chain):
        model = MainMemoryCostModel()
        result = optimize(chain, method="II", model=model, time_factor=1.0)
        report = verify_plan(result.order, result.cost * 2, chain, model)
        assert not report.ok
        assert any("disagrees" in v for v in report.violations)

    def test_verify_or_raise(self, chain):
        model = MainMemoryCostModel()
        result = optimize(chain, method="II", model=model, time_factor=1.0)
        verify_or_raise(result.order, result.cost, chain, model)  # no raise
        with pytest.raises(PlanVerificationError) as info:
            verify_or_raise(result.order, result.cost * 2, chain, model)
        assert info.value.violations


class TestOptimizerGate:
    def test_negative_cost_model_is_rejected(self, chain):
        class NegativeModel(MainMemoryCostModel):
            name = "negative"

            def join_cost(self, outer_size, inner_size, result_size):
                return -super().join_cost(outer_size, inner_size, result_size)

        with pytest.raises(PlanVerificationError, match="negative"):
            optimize(chain, method="II", model=NegativeModel(), time_factor=1.0)

    def test_disconnected_results_pass_the_gate(self, two_components):
        model = MainMemoryCostModel()
        result = optimize(
            two_components, method="II", model=model, time_factor=1.0
        )
        assert verify_plan(result.order, result.cost, two_components, model).ok


class TestCatalogValidation:
    def test_healthy_graph_has_no_violations(self, chain, star, cycle):
        for graph in (chain, star, cycle):
            assert catalog_violations(graph) == []

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_each_corruption_kind_is_detected(self, medium_query, kind):
        corrupted = corrupt_catalog(medium_query.graph, kind, seed=1)
        assert catalog_violations(corrupted)

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_sanitize_repairs_every_kind(self, medium_query, kind):
        corrupted = corrupt_catalog(medium_query.graph, kind, seed=1)
        repaired = sanitize_catalog(corrupted)
        assert catalog_violations(repaired) == []
        # Structure is preserved: same vertices, same edges.
        assert repaired.n_relations == corrupted.n_relations
        assert len(repaired.predicates) == len(corrupted.predicates)

    def test_sanitize_drops_invalid_selections(self):
        # Corrupt a selection selectivity past the constructor, the way a
        # stale serialized catalog would arrive.
        import copy

        from repro.catalog.relation import Selection

        good_selection = Selection(0.5)
        bad_selection = copy.copy(good_selection)
        object.__setattr__(bad_selection, "selectivity", -2.0)
        bad = copy.copy(Relation("R0", 100))
        object.__setattr__(bad, "selections", (good_selection, bad_selection))
        corrupted = JoinGraph(
            [bad, Relation("R1", 200)],
            [JoinPredicate(0, 1, 50, 100)],
            validate=False,
        )
        assert catalog_violations(corrupted)
        repaired = sanitize_catalog(corrupted)
        assert catalog_violations(repaired) == []
        assert repaired.relations[0].selections == (good_selection,)
