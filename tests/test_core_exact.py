"""Differential oracle suite for the exact branch-and-bound.

The contract under test is unusually strong: :func:`exact_optimum` must
be **bitwise** equal to exhaustive enumeration — same float, not merely
close — for both cost models, on connected and disconnected graphs
alike.  Everything else in this file leans on that anchor: optimality
gaps are exactly ``>= 1.0``, a method handed the exact order scores a
gap of exactly ``1.0``, DP's propagating recost is a true upper bound,
and gap reports are byte-identical across worker counts.
"""

from __future__ import annotations

import math
from itertools import combinations

import pytest

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.core.budget import Budget, BudgetExhausted
from repro.core.combinations import (
    Strategy,
    compare_methods,
    make_strategy,
)
from repro.core.dynamic_programming import dp_optimal_order
from repro.core.exact import (
    DEFAULT_MAX_EXACT,
    ExactStrategy,
    build_gap_report,
    exact_feasible,
    exact_optimum,
    gap_report_json,
    hybrid_optimum,
    optimality_gap,
)
from repro.core.optimizer import optimize
from repro.cost.cardinality import CostOverflowError, walk_plan
from repro.cost.disk import DiskCostModel
from repro.cost.incremental import (
    QueryContext,
    extend_state,
    start_state,
)
from repro.cost.memory import MainMemoryCostModel
from repro.cost.static import StaticCostModel
from repro.obs import RecordingTracer
from repro.plans.join_order import JoinOrder
from repro.plans.validity import first_invalid_position, valid_orders
from repro.utils.rng import derive_rng
from repro.workloads import DEFAULT_SPEC, generate_query
from tests.conftest import (
    chain_graph,
    cycle_graph,
    star_graph,
    two_component_graph,
)

MODELS = [MainMemoryCostModel(), DiskCostModel()]
MODEL_IDS = ["memory", "disk"]


def brute_force_optimum(graph: JoinGraph, model) -> float:
    """The bitwise minimum plan cost over every valid order.

    Orders whose walk overflows (or produces a non-finite total) are
    excluded — exactly the orders ``plan_cost`` refuses to price.
    """
    best = None
    for order in valid_orders(graph):
        try:
            cost = model.plan_cost(order, graph)
        except (CostOverflowError, OverflowError):
            continue
        if not math.isfinite(cost):
            continue
        if best is None or cost < best:
            best = cost
    assert best is not None, "graph admits no finite-cost order"
    return best


def shape_graphs() -> list[tuple[str, JoinGraph]]:
    return [
        ("chain", chain_graph()),
        ("star", star_graph()),
        ("cycle", cycle_graph()),
        ("two-components", two_component_graph()),
    ]


def random_graphs(count: int = 8, max_joins: int = 7) -> list[JoinGraph]:
    graphs = []
    for seed in range(count):
        n_joins = 4 + seed % (max_joins - 3)
        graphs.append(generate_query(DEFAULT_SPEC, n_joins, seed).graph)
    return graphs


def all_connected_four_vertex_graphs() -> list[JoinGraph]:
    """Every connected labeled graph on four relations (38 of them)."""
    cards = [120, 30, 900, 45]
    distincts = [12.0, 5.0, 30.0, 9.0]
    possible_edges = list(combinations(range(4), 2))
    graphs = []
    for count in range(3, len(possible_edges) + 1):
        for edges in combinations(possible_edges, count):
            adjacency = {v: set() for v in range(4)}
            for a, b in edges:
                adjacency[a].add(b)
                adjacency[b].add(a)
            seen = {0}
            stack = [0]
            while stack:
                for neighbor in adjacency[stack.pop()]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            if len(seen) < 4:
                continue
            graphs.append(
                JoinGraph(
                    [Relation(f"R{i}", cards[i]) for i in range(4)],
                    [
                        JoinPredicate(a, b, distincts[a], distincts[b])
                        for a, b in edges
                    ],
                )
            )
    return graphs


# ----------------------------------------------------------------------
# The oracle: bitwise equality with exhaustive enumeration
# ----------------------------------------------------------------------


@pytest.mark.parametrize("model", MODELS, ids=MODEL_IDS)
def test_bitwise_equal_to_enumeration_on_shapes(model):
    for name, graph in shape_graphs():
        result = exact_optimum(graph, model)
        oracle = brute_force_optimum(graph, model)
        assert result.cost == oracle, name
        assert result.proven
        # The reported cost is the true plan cost of the reported order,
        # to the bit.
        assert model.plan_cost(result.order, graph) == result.cost


@pytest.mark.parametrize("model", MODELS, ids=MODEL_IDS)
def test_bitwise_equal_to_enumeration_on_random_graphs(model):
    for graph in random_graphs():
        result = exact_optimum(graph, model)
        assert result.cost == brute_force_optimum(graph, model)
        assert first_invalid_position(result.order, graph) is None


@pytest.mark.parametrize("model", MODELS, ids=MODEL_IDS)
def test_bitwise_equal_on_every_connected_four_vertex_graph(model):
    graphs = all_connected_four_vertex_graphs()
    assert len(graphs) == 38  # 38 connected labeled graphs on 4 vertices
    for graph in graphs:
        result = exact_optimum(graph, model)
        assert result.cost == brute_force_optimum(graph, model)


def test_bitwise_equal_under_static_model():
    static = StaticCostModel(MainMemoryCostModel())
    for name, graph in shape_graphs():
        result = exact_optimum(graph, static)
        assert result.cost == brute_force_optimum(graph, static), name
    for graph in random_graphs(count=5):
        result = exact_optimum(graph, static)
        assert result.cost == brute_force_optimum(graph, static)


def test_matches_dp_under_static_model():
    """B&B under the static engine never exceeds DP, and agrees closely.

    DP relies on the Bellman principle, which holds mathematically but
    not bitwise under float arithmetic (static sizes are path-dependent
    floats), so the contract is `<=` plus closeness, not equality.
    """
    static = StaticCostModel(MainMemoryCostModel())
    for graph in random_graphs(count=6):
        if not graph.is_connected:
            continue
        bnb = exact_optimum(graph, static)
        dp = dp_optimal_order(graph, static)
        assert bnb.cost <= dp.cost
        assert bnb.cost == pytest.approx(dp.cost, rel=1e-9)


def test_disconnected_graphs_searched_natively():
    graph = two_component_graph()
    for model in MODELS:
        result = exact_optimum(graph, model)
        assert result.cost == brute_force_optimum(graph, model)
        assert result.proven
        assert first_invalid_position(result.order, graph) is None


def test_cross_product_free_on_connected_graphs():
    for graph in random_graphs(count=5):
        if not graph.is_connected:
            continue
        result = exact_optimum(graph, MainMemoryCostModel())
        steps = walk_plan(result.order, graph)
        assert not any(step.is_cross_product for step in steps)


def test_prefix_state_chain_matches_plan_cost_bitwise():
    """The search's step arithmetic *is* the estimator's, op for op."""
    for model in MODELS:
        for graph in random_graphs(count=5):
            context = QueryContext(graph, model)
            rng = derive_rng(17, "test", "prefix-chain", graph.n_relations)
            for _ in range(20):
                from repro.plans.validity import random_valid_order

                order = random_valid_order(graph, rng)
                state = start_state(context, order[0])
                for vertex in order.positions[1:]:
                    state = extend_state(context, state, vertex)
                assert state.cost == model.plan_cost(order, graph)


def test_single_relation_and_max_relations_guard():
    graph = JoinGraph([Relation("R0", 100)], [])
    result = exact_optimum(graph, MainMemoryCostModel())
    assert result.cost == 0.0
    assert result.proven
    big = generate_query(DEFAULT_SPEC, 20, 0).graph
    with pytest.raises(ValueError, match="max_relations"):
        exact_optimum(big, MainMemoryCostModel())
    assert not exact_feasible(big)
    assert exact_feasible(big, max_relations=big.n_relations)


# ----------------------------------------------------------------------
# Budget semantics
# ----------------------------------------------------------------------


def test_budget_exhaustion_raises_by_default():
    graph = generate_query(DEFAULT_SPEC, 9, 2).graph
    with pytest.raises(BudgetExhausted):
        exact_optimum(graph, MainMemoryCostModel(), budget=Budget(limit=60.0))


def test_budget_exhaustion_partial_returns_incumbent():
    graph = generate_query(DEFAULT_SPEC, 9, 2).graph
    result = exact_optimum(
        graph,
        MainMemoryCostModel(),
        budget=Budget(limit=60.0),
        allow_partial=True,
    )
    assert not result.proven
    assert first_invalid_position(result.order, graph) is None
    assert result.cost == MainMemoryCostModel().plan_cost(result.order, graph)
    # Deterministic: same starvation, same answer.
    again = exact_optimum(
        graph,
        MainMemoryCostModel(),
        budget=Budget(limit=60.0),
        allow_partial=True,
    )
    assert again.order == result.order and again.cost == result.cost


def test_budget_too_small_even_for_partial():
    graph = generate_query(DEFAULT_SPEC, 9, 2).graph
    with pytest.raises(BudgetExhausted):
        exact_optimum(
            graph,
            MainMemoryCostModel(),
            budget=Budget(limit=2.0),
            allow_partial=True,
        )


# ----------------------------------------------------------------------
# Observability: counters exist, tracing perturbs nothing
# ----------------------------------------------------------------------


def test_traced_run_identical_to_untraced():
    graph = generate_query(DEFAULT_SPEC, 8, 4).graph
    plain = exact_optimum(graph, MainMemoryCostModel())
    tracer = RecordingTracer()
    traced = exact_optimum(graph, MainMemoryCostModel(), trace=tracer)
    assert traced.order == plain.order
    assert traced.cost == plain.cost
    assert traced.nodes_expanded == plain.nodes_expanded
    assert traced.nodes_pruned_bound == plain.nodes_pruned_bound
    assert traced.nodes_pruned_dominated == plain.nodes_pruned_dominated
    snapshot = tracer.metrics.snapshot()
    counters = snapshot["counters"]
    assert counters["exact_nodes_expanded"] == float(plain.nodes_expanded)
    assert counters["exact_nodes_pruned_bound"] == float(
        plain.nodes_pruned_bound
    )
    assert counters["exact_nodes_pruned_dominated"] == float(
        plain.nodes_pruned_dominated
    )
    assert "exact_incumbent_updates" in counters
    phases = [
        event.data.get("phase")
        for event in tracer.events
        if event.kind in ("phase_start", "phase_end")
    ]
    assert "exact_bnb" in phases


# ----------------------------------------------------------------------
# The EXACT method behind optimize()/compare_methods()
# ----------------------------------------------------------------------


def test_exact_strategy_through_optimize():
    query = generate_query(DEFAULT_SPEC, 10, 3)
    result = optimize(query, method="EXACT", model=MainMemoryCostModel())
    reference = exact_optimum(query.graph, MainMemoryCostModel())
    assert result.cost == reference.cost
    assert result.order == reference.order


def test_exact_strategy_registered():
    strategy = make_strategy("EXACT")
    assert isinstance(strategy, ExactStrategy)
    assert not strategy.stochastic


def test_exact_in_compare_methods():
    query = generate_query(DEFAULT_SPEC, 8, 6)
    results = compare_methods(
        query, methods=("II", "EXACT"), model=MainMemoryCostModel()
    )
    reference = exact_optimum(query.graph, MainMemoryCostModel())
    assert results["EXACT"].cost == reference.cost
    assert results["II"].cost >= results["EXACT"].cost


def test_exact_strategy_degrades_to_hybrid_at_large_n():
    query = generate_query(DEFAULT_SPEC, DEFAULT_MAX_EXACT + 5, 1)
    result = optimize(query, method="EXACT", model=MainMemoryCostModel())
    assert first_invalid_position(result.order, query.graph) is None
    assert math.isfinite(result.cost)


# ----------------------------------------------------------------------
# Optimality gaps
# ----------------------------------------------------------------------


def test_gap_at_least_one_for_every_method_on_every_graph():
    """cost >= exact bitwise, and IEEE division preserves it exactly."""
    methods = ("II", "SA", "IAI", "AGI", "SIMPLI_SQUARED")
    for seed in range(6):
        query = generate_query(DEFAULT_SPEC, 5 + seed % 3, seed)
        for model in MODELS:
            exact = exact_optimum(query.graph, model)
            results = compare_methods(
                query, methods=methods, model=model, seed=seed
            )
            for method, result in results.items():
                gap = optimality_gap(result.cost, exact.cost)
                assert gap >= 1.0, (method, seed)


class _InjectedStart(Strategy):
    """A degenerate method that just prices one fixed order."""

    name = "INJECTED"
    description = "evaluates a single injected order"
    stochastic = False

    def __init__(self, order: JoinOrder) -> None:
        self._order = order

    def run(self, evaluator, rng, params) -> None:
        evaluator.evaluate(self._order)


def test_gap_exactly_one_when_given_the_exact_order():
    for seed in (0, 3, 5):
        query = generate_query(DEFAULT_SPEC, 7, seed)
        exact = exact_optimum(query.graph, MainMemoryCostModel())
        result = optimize(
            query,
            method=_InjectedStart(exact.order),
            model=MainMemoryCostModel(),
        )
        assert result.cost == exact.cost
        assert optimality_gap(result.cost, exact.cost) == 1.0


def test_gap_report_byte_identical_across_workers():
    query = generate_query(DEFAULT_SPEC, 8, 9)
    model = MainMemoryCostModel()
    exact = exact_optimum(query.graph, model)
    serial = compare_methods(query, methods=("II", "IAI", "AGI"), model=model)
    fanned = compare_methods(
        query, methods=("II", "IAI", "AGI"), model=model, workers=3
    )
    report_serial = gap_report_json(build_gap_report(query, model, serial, exact))
    report_fanned = gap_report_json(build_gap_report(query, model, fanned, exact))
    assert report_serial == report_fanned
    assert report_serial.endswith("\n")
    # Stable across repeated rendering too (canonical bytes).
    assert report_serial == gap_report_json(
        build_gap_report(query, model, serial, exact)
    )


def test_gap_report_rows_ranked_and_anchored():
    query = generate_query(DEFAULT_SPEC, 7, 2)
    model = MainMemoryCostModel()
    exact = exact_optimum(query.graph, model)
    results = compare_methods(query, methods=("II", "IAI"), model=model)
    report = build_gap_report(query, model, results, exact)
    assert report.proven
    assert report.exact_cost == exact.cost
    costs = [row.cost for row in report.rows]
    assert costs == sorted(costs)
    for row in report.rows:
        assert row.gap == optimality_gap(row.cost, exact.cost)
        assert row.gap >= 1.0


def test_optimality_gap_edge_cases():
    assert optimality_gap(0.0, 0.0) == 1.0
    assert optimality_gap(5.0, 0.0) == math.inf
    assert optimality_gap(7.5, 7.5) == 1.0


# ----------------------------------------------------------------------
# DP is a bound, not the answer
# ----------------------------------------------------------------------


@pytest.mark.parametrize("model", MODELS, ids=MODEL_IDS)
def test_dp_recost_upper_bounds_exact_propagating_optimum(model):
    """DP's propagating recost can never beat the propagating optimum.

    ``recost`` is the true cost of one particular valid order, and the
    exact optimum is the bitwise minimum over all of them — so the
    inequality is exact, no tolerance.
    """
    for graph in random_graphs(count=6):
        if not graph.is_connected:
            continue
        dp = dp_optimal_order(graph, model)
        exact = exact_optimum(graph, model)
        assert dp.recost >= exact.cost


# ----------------------------------------------------------------------
# Hybrid mode
# ----------------------------------------------------------------------


def test_hybrid_below_frontier_is_exact():
    graph = generate_query(DEFAULT_SPEC, 7, 1).graph
    hybrid = hybrid_optimum(graph, MainMemoryCostModel())
    exact = exact_optimum(graph, MainMemoryCostModel())
    assert hybrid.cost == exact.cost
    assert hybrid.mode == "branch-and-bound"


def test_hybrid_large_n_valid_and_deterministic():
    graph = generate_query(DEFAULT_SPEC, 23, 5).graph
    first = hybrid_optimum(graph, MainMemoryCostModel(), max_exact=8)
    second = hybrid_optimum(graph, MainMemoryCostModel(), max_exact=8)
    assert first.order == second.order
    assert first.cost == second.cost
    assert not first.proven
    assert first.mode == "hybrid"
    assert first_invalid_position(first.order, graph) is None
    assert first.cost == MainMemoryCostModel().plan_cost(first.order, graph)


def test_hybrid_disconnected_large_graph():
    pieces = [generate_query(DEFAULT_SPEC, 10, s).graph for s in (0, 1)]
    relations = []
    predicates = []
    offset = 0
    for piece in pieces:
        relations.extend(
            Relation(f"C{offset + i}", int(piece.cardinality(i)))
            for i in range(piece.n_relations)
        )
        for predicate in piece.predicates:
            predicates.append(
                JoinPredicate(
                    predicate.left + offset,
                    predicate.right + offset,
                    predicate.left_distinct,
                    predicate.right_distinct,
                )
            )
        offset += piece.n_relations
    graph = JoinGraph(relations, predicates)
    assert not graph.is_connected
    result = hybrid_optimum(graph, MainMemoryCostModel(), max_exact=8)
    assert first_invalid_position(result.order, graph) is None
    assert not result.proven
    assert result.cost == MainMemoryCostModel().plan_cost(result.order, graph)


def test_hybrid_beats_or_matches_greedy_quality():
    """The hybrid answer is at worst the polished start, never garbage."""
    graph = generate_query(DEFAULT_SPEC, 20, 7).graph
    result = hybrid_optimum(
        graph, MainMemoryCostModel(), budget=Budget.for_query(20, 9.0)
    )
    ii = optimize(
        generate_query(DEFAULT_SPEC, 20, 7),
        method="II",
        model=MainMemoryCostModel(),
        time_factor=9.0,
    )
    # Not a strict dominance claim — but within 2x of II means the
    # skeleton expansion + polish is doing real work.
    assert result.cost <= 2.0 * ii.cost
