"""Per-rule fixture tests for detlint (repro.analysis).

Every rule is demonstrated twice: a snippet that MUST flag, and a
near-miss snippet that MUST NOT (the false-positive guard).  Fixtures run
through the real engine (`Analyzer.check_source`), so occurrence
indexing and suppression handling are exercised on every assertion.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.config import DetlintConfig
from repro.analysis.engine import Analyzer
from repro.analysis.findings import Finding


def analyze(source: str, rel_path: str = "fixture/mod.py") -> list[Finding]:
    """Run the full rule library over one in-memory module.

    The config carries no include/allow restrictions, so every rule
    applies to the fixture regardless of its pretend path.
    """
    config = DetlintConfig(root="/nonexistent", baseline=None)
    analyzer = Analyzer(config, baseline=None)
    return analyzer.check_source(textwrap.dedent(source), rel_path)


def codes(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings if finding.counts}


# ---------------------------------------------------------------------------
# DET001 — unseeded RNG


def test_det001_flags_module_level_random_call() -> None:
    findings = analyze(
        """
        import random

        def pick(items):
            return random.choice(items)
        """
    )
    assert "DET001" in codes(findings)


def test_det001_flags_numpy_global_state() -> None:
    findings = analyze(
        """
        import numpy as np

        def reset():
            np.random.seed(0)
        """
    )
    assert "DET001" in codes(findings)


def test_det001_flags_unseeded_random_constructor() -> None:
    findings = analyze(
        """
        import random

        def fresh():
            return random.Random()
        """
    )
    assert "DET001" in codes(findings)


def test_det001_flags_from_import_and_callback_reference() -> None:
    findings = analyze(
        """
        from random import shuffle
        import random

        def scramble(items):
            shuffle(items)
            return sorted(items, key=lambda _: 0) or random.random
        """
    )
    det = [f for f in findings if f.rule == "DET001" and f.counts]
    assert len(det) >= 2  # the call and the escaping reference


def test_det001_allows_seeded_and_injected_rng() -> None:
    findings = analyze(
        """
        import random

        def pick(items, rng: random.Random):
            return rng.choice(items)

        def seeded() -> random.Random:
            return random.Random(42)
        """
    )
    assert "DET001" not in codes(findings)


def test_det001_flags_unseeded_numpy_generator() -> None:
    # numpy's modern Generator API is on the seeded-constructor allowlist:
    # fine with a seed, flagged without one (it falls back to OS entropy).
    findings = analyze(
        """
        import numpy as np

        def fresh():
            return np.random.default_rng()
        """
    )
    assert "DET001" in codes(findings)


def test_det001_allows_seeded_numpy_generator() -> None:
    findings = analyze(
        """
        import numpy as np
        from numpy.random import default_rng

        def seeded(seed: int):
            return default_rng(seed)

        def derived(sequence: np.random.SeedSequence):
            return np.random.default_rng(sequence)
        """
    )
    assert "DET001" not in codes(findings)


def test_det001_allowlisted_path_is_exempt() -> None:
    config = DetlintConfig(
        root="/nonexistent",
        baseline=None,
        rule_options={"DET001": {"allow": ["src/repro/utils/rng.py"]}},
    )
    analyzer = Analyzer(config, baseline=None)
    source = "import random\nx = random.getrandbits(64)\n"
    assert codes(analyzer.check_source(source, "src/repro/utils/rng.py")) == set()
    assert "DET001" in codes(analyzer.check_source(source, "src/repro/core/x.py"))


# ---------------------------------------------------------------------------
# DET002 — wall-clock reads


def test_det002_flags_time_and_datetime_reads() -> None:
    findings = analyze(
        """
        import time
        from datetime import datetime

        def stamp():
            return time.perf_counter(), datetime.now()
        """
    )
    det = [f for f in findings if f.rule == "DET002" and f.counts]
    assert len(det) == 2


def test_det002_flags_clock_passed_as_default() -> None:
    findings = analyze(
        """
        import time

        def run(clock=time.perf_counter):
            return clock()
        """
    )
    assert "DET002" in codes(findings)


def test_det002_allows_injected_clock_and_sleep() -> None:
    findings = analyze(
        """
        import time

        def run(clock):
            time.sleep(0.01)
            return clock()
        """
    )
    assert "DET002" not in codes(findings)


def test_det002_escalates_message_in_verified_clean_module() -> None:
    config = DetlintConfig(
        root="/nonexistent",
        baseline=None,
        rule_options={"DET002": {"verified_clean": ["src/repro/obs"]}},
    )
    analyzer = Analyzer(config, baseline=None)
    source = "import time\n\ndef stamp():\n    return time.time()\n"
    escalated = [
        f
        for f in analyzer.check_source(source, "src/repro/obs/tracer.py")
        if f.rule == "DET002" and f.counts
    ]
    assert len(escalated) == 1
    assert "verified-clean" in escalated[0].message
    plain = [
        f
        for f in analyzer.check_source(source, "src/repro/core/state.py")
        if f.rule == "DET002" and f.counts
    ]
    assert len(plain) == 1
    assert "verified-clean" not in plain[0].message


def test_det002_verified_clean_modules_are_clean_in_this_repo() -> None:
    """The registered ``repro.obs`` modules must actually be clock-free."""
    import os

    from repro.analysis.config import load_config

    root = os.path.join(os.path.dirname(__file__), "..")
    config = load_config(root)
    verified = list(
        config.options_for("DET002").get("verified_clean", [])
    )
    assert "src/repro/obs" in verified
    analyzer = Analyzer(config, baseline=None)
    obs_dir = os.path.join(root, "src", "repro", "obs")
    checked = 0
    for name in sorted(os.listdir(obs_dir)):
        if not name.endswith(".py"):
            continue
        findings = analyzer.check_file(os.path.join(obs_dir, name))
        assert [f for f in findings if f.rule == "DET002" and f.counts] == []
        checked += 1
    assert checked >= 5


# ---------------------------------------------------------------------------
# DET003 — unordered iteration feeding ordered constructs


def test_det003_flags_list_building_loop_over_set() -> None:
    findings = analyze(
        """
        def collect(items):
            out = []
            for item in set(items):
                out.append(item)
            return out
        """
    )
    assert "DET003" in codes(findings)


def test_det003_flags_early_exit_over_set_literal() -> None:
    findings = analyze(
        """
        def first_match(wanted):
            for item in {"a", "b", "c"}:
                if item in wanted:
                    return item
            return None
        """
    )
    assert "DET003" in codes(findings)


def test_det003_flags_list_and_min_and_comprehension() -> None:
    findings = analyze(
        """
        def consumers(d, items):
            a = list(set(items))
            b = min(d.keys())
            c = [x for x in frozenset(items)]
            return a, b, c
        """
    )
    det = [f for f in findings if f.rule == "DET003" and f.counts]
    assert len(det) == 3


def test_det003_flags_set_algebra_iteration() -> None:
    findings = analyze(
        """
        def frontier_list(frontier, placed):
            return list(frontier - set(placed))
        """
    )
    assert "DET003" in codes(findings)


def test_det003_allows_sorted_wrapping() -> None:
    findings = analyze(
        """
        def collect(items, d):
            out = []
            for item in sorted(set(items)):
                out.append(item)
            return out + sorted(d.keys()) + [x for x in sorted({1, 2})]
        """
    )
    assert "DET003" not in codes(findings)


def test_det003_allows_order_insensitive_consumption() -> None:
    findings = analyze(
        """
        def stats(items, d):
            total = 0
            for item in set(items):
                total += item
            seen = {x for x in set(items)}
            return total, len(set(items)), 3 in set(items), seen
        """
    )
    assert "DET003" not in codes(findings)


def test_det003_allows_items_iteration() -> None:
    # dict.items()/values() follow insertion order; only .keys() is in the
    # rule's scope (mirroring the repo convention of sorting keys).
    findings = analyze(
        """
        def caps_update(caps, result):
            for relation, cap in caps.items():
                if cap > result:
                    caps[relation] = result
        """
    )
    assert "DET003" not in codes(findings)


def test_det003_near_miss_sorted_set_stays_clean() -> None:
    # The canonical fix pattern must never flag, in any consuming position.
    findings = analyze(
        """
        def ordered(items):
            first = sorted(set(items))[0]
            pairs = [(v, v * v) for v in sorted({i % 7 for i in items})]
            return first, pairs, min(sorted(set(items)))
        """
    )
    assert "DET003" not in codes(findings)


def test_det003_second_order_taint_through_set_built_dict() -> None:
    # items() is insertion-ordered — but here the insertion order itself
    # came from iterating a set, so the dict inherits the taint and the
    # ordered consumption downstream must still flag.
    findings = analyze(
        """
        def tally(items):
            counts = {}
            for v in set(items):
                counts[v] = counts.get(v, 0) + 1
            return [k for k, n in counts.items() if n > 1]
        """
    )
    assert "DET003" in codes(findings)


def test_det003_taints_unordered_default_argument() -> None:
    source = """
    def pick(tags=frozenset({"a", "b"})):
        return [t for t in tags]
    """
    assert "DET003" in codes(analyze(source))
    # The sorted() variant of the same default stays clean.
    fixed = source.replace("for t in tags", "for t in sorted(tags)")
    assert "DET003" not in codes(analyze(fixed))


# ---------------------------------------------------------------------------
# DET004 — pool dispatch


def test_det004_flags_lambda_dispatch() -> None:
    findings = analyze(
        """
        def run(pool, jobs):
            return [pool.submit(lambda j: j, job) for job in jobs]
        """
    )
    assert "DET004" in codes(findings)


def test_det004_flags_nested_function_dispatch() -> None:
    findings = analyze(
        """
        def run(pool, jobs):
            def work(job):
                return job
            return pool.map(work, jobs)
        """
    )
    assert "DET004" in codes(findings)


def test_det004_flags_bound_method_dispatch() -> None:
    findings = analyze(
        """
        class Runner:
            def work(self, job):
                return job

            def run(self, pool, jobs):
                return pool.map(self.work, jobs)
        """
    )
    assert "DET004" in codes(findings)


def test_det004_flags_global_writing_function() -> None:
    findings = analyze(
        """
        COUNTER = 0

        def work(job):
            global COUNTER
            COUNTER += 1
            return job

        def run(pool, jobs):
            return pool.map(work, jobs)
        """
    )
    assert "DET004" in codes(findings)


def test_det004_allows_module_level_function_and_partial() -> None:
    findings = analyze(
        """
        import functools

        def work(job, scale):
            return job * scale

        def run(pool, jobs):
            futures = [pool.submit(work, job, 2) for job in jobs]
            mapped = pool.map(functools.partial(work, scale=2), jobs)
            return futures, mapped
        """
    )
    assert "DET004" not in codes(findings)


def test_det004_allows_global_reading_function() -> None:
    findings = analyze(
        """
        _IN_POOL = False

        def work(job):
            if _IN_POOL:
                return job
            return None

        def run(pool, jobs):
            return pool.map(work, jobs)
        """
    )
    assert "DET004" not in codes(findings)


# ---------------------------------------------------------------------------
# EXC001 — broad except boundaries


def test_exc001_flags_broad_and_bare_except() -> None:
    findings = analyze(
        """
        def risky():
            try:
                return 1
            except Exception:
                return None

        def riskier():
            try:
                return 1
            except:
                return None
        """
    )
    det = [f for f in findings if f.rule == "EXC001" and f.counts]
    assert len(det) == 2


def test_exc001_flags_exception_inside_tuple() -> None:
    findings = analyze(
        """
        def risky():
            try:
                return 1
            except (ValueError, Exception):
                return None
        """
    )
    assert "EXC001" in codes(findings)


def test_exc001_allows_narrow_except() -> None:
    findings = analyze(
        """
        def careful():
            try:
                return 1
            except (ValueError, KeyError):
                return None
        """
    )
    assert "EXC001" not in codes(findings)


def test_exc001_allows_annotated_boundary() -> None:
    findings = analyze(
        """
        def guarded():
            try:
                return 1
            except Exception:  # boundary: fallback keeps the best plan
                return None

        def guarded_block():
            try:
                return 1
            # boundary: last-resort pricing must survive model faults,
            # which may raise anything at all.
            except Exception:
                return None
        """
    )
    assert "EXC001" not in codes(findings)


def test_exc001_requires_reason_after_boundary_tag() -> None:
    findings = analyze(
        """
        def unguarded():
            try:
                return 1
            except Exception:  # boundary:
                return None
        """
    )
    assert "EXC001" in codes(findings)


# ---------------------------------------------------------------------------
# OVF001 — overflow guards


def test_ovf001_flags_unguarded_cardinality_product() -> None:
    findings = analyze(
        """
        def join_size(outer_size, inner_size):
            return outer_size * inner_size
        """
    )
    assert "OVF001" in codes(findings)


def test_ovf001_flags_product_assigned_but_never_checked() -> None:
    findings = analyze(
        """
        def total(outer_size, inner_size, selectivity):
            result = outer_size * inner_size * selectivity
            return result + 1
        """
    )
    assert "OVF001" in codes(findings)


def test_ovf001_allows_direct_guard_call() -> None:
    findings = analyze(
        """
        from repro.cost.cardinality import clamp_cardinality

        def join_size(outer_size, inner_size):
            return clamp_cardinality(outer_size * inner_size)
        """
    )
    assert "OVF001" not in codes(findings)


def test_ovf001_allows_assignment_later_guarded() -> None:
    findings = analyze(
        """
        from repro.cost.cardinality import MAX_CARDINALITY, clamp_cardinality

        def join_size(outer_size, inner_size):
            result = outer_size * inner_size
            if not (1.0 <= result <= MAX_CARDINALITY):
                result = clamp_cardinality(result)
            return result
        """
    )
    assert "OVF001" not in codes(findings)


def test_ovf001_allows_single_cardinality_operand() -> None:
    findings = analyze(
        """
        def weighted(cost_weight, outer_size):
            return cost_weight * outer_size
        """
    )
    assert "OVF001" not in codes(findings)


def test_ovf001_guard_inside_loop_body_is_found() -> None:
    # Regression guard: the assignment lives inside a for-loop, not at the
    # top level of the function body.
    findings = analyze(
        """
        from repro.cost.cardinality import MAX_CARDINALITY

        def walk(sizes, inner_size):
            total = 0.0
            for size in sizes:
                result = size * inner_size
                if result > MAX_CARDINALITY:
                    result = MAX_CARDINALITY
                total += result
            return total
        """
    )
    assert "OVF001" not in codes(findings)


# ---------------------------------------------------------------------------
# Engine-level behaviours every rule shares


def test_parse_error_is_reported_not_raised() -> None:
    findings = analyze("def broken(:\n    pass\n")
    assert codes(findings) == {"SYN001"}


def test_findings_are_sorted_and_carry_snippets() -> None:
    findings = analyze(
        """
        import random

        def f(items):
            random.shuffle(items)
            return list(set(items))
        """,
        rel_path="fixture/sorted.py",
    )
    locations = [(f.line, f.column, f.rule) for f in findings]
    assert locations == sorted(locations)
    assert all(f.snippet for f in findings)


@pytest.mark.parametrize(
    "code",
    ["DET001", "DET002", "DET003", "DET004", "EXC001", "OVF001"],
)
def test_every_rule_is_registered(code: str) -> None:
    from repro.analysis.rules import rule_registry

    registry = rule_registry()
    assert code in registry
    assert registry[code].description
