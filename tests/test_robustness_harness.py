"""Tests for the regret harness, including the differential determinism
contract: same (graph, seed, q) -> byte-identical report JSON across runs
and across worker counts."""

import json

import pytest

from repro.obs import RecordingTracer
from repro.obs import events as obs_events
from repro.robustness.estimates import LOG_UNIFORM
from repro.robustness.harness import (
    RobustnessConfig,
    RobustnessReport,
    median,
    run_robustness,
    write_report,
)
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query

SMALL_CONFIG = RobustnessConfig(
    methods=("II", "SIMPLI_SQUARED"),
    q_values=(1.0, 5.0),
    n_trials=2,
    time_factor=1.0,
    seed=7,
)


@pytest.fixture(scope="module")
def workload():
    return [
        generate_query(DEFAULT_SPEC, n_joins=6, seed=s, name=f"hq{s}")
        for s in range(3)
    ]


@pytest.fixture(scope="module")
def report(workload):
    return run_robustness(workload, SMALL_CONFIG)


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_midpoint(self):
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])


class TestConfigValidation:
    def test_rejects_empty_methods(self):
        with pytest.raises(ValueError):
            RobustnessConfig(methods=())

    def test_rejects_q_below_one(self):
        with pytest.raises(ValueError):
            RobustnessConfig(q_values=(0.5,))

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            RobustnessConfig(n_trials=0)

    def test_rejects_unknown_distribution(self):
        with pytest.raises(ValueError):
            RobustnessConfig(distribution="gaussian")

    def test_rejects_empty_queries(self):
        with pytest.raises(ValueError):
            run_robustness([], SMALL_CONFIG)


class TestReportShape:
    def test_one_trial_row_per_cell(self, report, workload):
        expected = (
            len(workload)
            * len(SMALL_CONFIG.q_values)
            * SMALL_CONFIG.n_trials
            * len(SMALL_CONFIG.methods)
        )
        assert len(report.trials) == expected

    def test_one_curve_point_per_method_q(self, report):
        assert len(report.curves) == len(SMALL_CONFIG.methods) * len(
            SMALL_CONFIG.q_values
        )
        for point in report.curves:
            assert point.n == 3 * SMALL_CONFIG.n_trials
            assert point.worst_regret >= point.median_regret > 0

    def test_curve_accessor_sorted_by_q(self, report):
        curve = report.curve("simpli_squared")
        assert [p.q for p in curve] == sorted(SMALL_CONFIG.q_values)
        assert all(p.method == "SIMPLI_SQUARED" for p in curve)

    def test_reference_costs_positive(self, report, workload):
        assert len(report.reference_costs) == len(workload)
        assert all(cost > 0 for cost in report.reference_costs)

    def test_regret_consistent_with_reference(self, report, workload):
        by_name = {q.name: i for i, q in enumerate(workload)}
        for trial in report.trials:
            reference = report.reference_costs[by_name[trial.query]]
            assert trial.regret == pytest.approx(trial.true_cost / reference)


class TestDeterminism:
    def test_byte_identical_across_runs(self, workload, report):
        again = run_robustness(workload, SMALL_CONFIG)
        assert again.to_json() == report.to_json()

    def test_byte_identical_across_worker_counts(self, workload, report):
        from dataclasses import replace

        parallel = run_robustness(workload, replace(SMALL_CONFIG, workers=2))
        assert parallel.to_json() == report.to_json()

    def test_json_round_trips(self, report):
        payload = json.loads(report.to_json())
        assert payload["version"] == 1
        assert payload["config"]["seed"] == SMALL_CONFIG.seed
        assert len(payload["trials"]) == len(report.trials)

    def test_write_report(self, report, tmp_path):
        path = tmp_path / "report.json"
        write_report(report, str(path))
        assert path.read_text(encoding="utf-8") == report.to_json() + "\n"

    def test_distribution_changes_the_report(self, workload):
        from dataclasses import replace

        loguniform = run_robustness(
            workload, replace(SMALL_CONFIG, distribution=LOG_UNIFORM)
        )
        base = run_robustness(workload, SMALL_CONFIG)
        assert loguniform.to_json() != base.to_json()


class TestObservability:
    def test_perturb_and_regret_events_emitted(self, workload):
        tracer = RecordingTracer()
        run_robustness(workload, SMALL_CONFIG, tracer=tracer)
        kinds = [event.kind for event in tracer.events]
        n_cells = len(workload) * len(SMALL_CONFIG.q_values) * SMALL_CONFIG.n_trials
        assert kinds.count(obs_events.PERTURB) == n_cells
        assert kinds.count(obs_events.REGRET) == n_cells * len(SMALL_CONFIG.methods)
        snapshot = tracer.metrics.snapshot()
        assert snapshot["counters"]["robustness_trials"] == n_cells * len(
            SMALL_CONFIG.methods
        )

    def test_tracing_does_not_change_the_report(self, workload, report):
        traced = run_robustness(
            workload, SMALL_CONFIG, tracer=RecordingTracer()
        )
        assert traced.to_json() == report.to_json()


@pytest.mark.slow
class TestExperimentsScale:
    """The acceptance-criteria run: q in {1, 2, 5, 10} over >= 20 queries."""

    @pytest.fixture(scope="class")
    def large_report(self) -> RobustnessReport:
        from repro.experiments.robustness import robustness_experiment

        config = RobustnessConfig(
            methods=("II", "SIMPLI_SQUARED"),
            q_values=(1.0, 2.0, 5.0, 10.0),
            n_trials=1,
            time_factor=1.0,
            seed=2026,
            workers=2,
        )
        return robustness_experiment(
            DEFAULT_SPEC, config, n_queries=20, n_joins=8
        )

    def test_full_curve_present(self, large_report):
        for method in ("II", "SIMPLI_SQUARED"):
            curve = large_report.curve(method)
            assert [p.q for p in curve] == [1.0, 2.0, 5.0, 10.0]
            assert all(p.n == 20 for p in curve)

    def test_twenty_seeded_queries(self, large_report):
        assert len(large_report.queries) == 20
        assert len(set(large_report.queries)) == 20

    def test_estimate_free_baseline_is_flat_ish_but_worse(self, large_report):
        """Simpli-Squared ignores estimates, so its regret should not
        collapse at q=1 the way an estimate-guided method's does."""
        ii = {p.q: p.median_regret for p in large_report.curve("II")}
        simpli = {
            p.q: p.median_regret for p in large_report.curve("SIMPLI_SQUARED")
        }
        assert ii[1.0] == pytest.approx(1.0, abs=0.05)
        assert simpli[1.0] > 1.0

    def test_regret_grows_with_q_for_estimate_guided_search(self, large_report):
        ii = {p.q: p.median_regret for p in large_report.curve("II")}
        assert ii[10.0] >= ii[1.0]
