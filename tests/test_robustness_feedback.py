"""Tests for the measurement-feedback loop (execute, recalibrate, re-plan)."""

from dataclasses import replace

import pytest

from repro.catalog.builder import QueryBuilder
from repro.engine.datagen import generate_database
from repro.engine.executor import execute_order
from repro.plans.join_order import JoinOrder
from repro.robustness.estimates import ErrorModel
from repro.robustness.feedback import (
    FeedbackResult,
    feedback_round,
    recalibrate,
    run_feedback,
)
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.distributions import BucketDistribution
from repro.workloads.generator import generate_query

#: A default-shaped workload with small enough tables that executing a
#: plan in pure Python stays cheap (the feedback loop runs real joins).
SMALL_SPEC = replace(
    DEFAULT_SPEC,
    name="feedback-small",
    cardinality=BucketDistribution.uniform(10, 200),
)


@pytest.fixture(scope="module")
def setup():
    builder = QueryBuilder("recal")
    a = builder.relation("A", 30)
    b = builder.relation("B", 40)
    c = builder.relation("C", 20)
    builder.join(a, b, left_distinct=10, right_distinct=12)
    builder.join(b, c, left_distinct=8, right_distinct=6)
    graph = builder.build().graph
    tables = generate_database(graph, seed=5)
    execution = execute_order(JoinOrder([0, 1, 2]), graph, tables)
    return graph, tables, execution


class TestRecalibrate:
    def test_base_cardinalities_become_measured_rows(self, setup):
        graph, tables, execution = setup
        corrected = recalibrate(graph, execution)
        for vertex in range(graph.n_relations):
            assert corrected.relation(vertex).base_cardinality == max(
                1, tables[vertex].n_rows
            )
            assert corrected.relation(vertex).selections == ()

    def test_selectivities_match_measurements(self, setup):
        graph, _, execution = setup
        corrected = recalibrate(graph, execution)
        measured = execution.operator_cardinalities
        # Step 1 consumes the A-B predicate: out / (|A| * |B|).
        expected = measured[1] / (measured[0] * execution.base_sizes[1])
        assert corrected.predicates[0].selectivity == pytest.approx(
            expected, rel=1e-9
        )
        # Step 2 consumes the B-C predicate.
        expected = measured[2] / (measured[1] * execution.base_sizes[2])
        assert corrected.predicates[1].selectivity == pytest.approx(
            expected, rel=1e-9
        )

    def test_corrected_graph_validates(self, setup):
        graph, _, execution = setup
        corrected = recalibrate(graph, execution)
        for predicate in corrected.predicates:
            for side in predicate.endpoints:
                assert (
                    predicate.distinct_values(side)
                    <= corrected.relation(side).base_cardinality
                )

    def test_recalibrating_a_lying_catalog_recovers_the_truth(self, setup):
        """Feeding measurements into a heavily perturbed catalog must pull
        its statistics back to the measured database, not the lies."""
        graph, tables, _ = setup
        lying = ErrorModel(q=10.0, seed=3).perturb(graph)
        execution = execute_order(JoinOrder([0, 1, 2]), lying, tables)
        corrected = recalibrate(lying, execution)
        for vertex in range(graph.n_relations):
            assert corrected.relation(vertex).base_cardinality == max(
                1, tables[vertex].n_rows
            )

    def test_rejects_mismatched_order(self, setup):
        graph, _, execution = setup
        short = replace(execution, order=JoinOrder([0, 1]))
        with pytest.raises(ValueError):
            recalibrate(graph, short)

    def test_rejects_missing_base_sizes(self, setup):
        graph, _, execution = setup
        legacy = replace(execution, base_sizes=())
        with pytest.raises(ValueError):
            recalibrate(graph, legacy)


class TestFeedbackRound:
    @pytest.fixture(scope="class")
    def result(self) -> FeedbackResult:
        query = generate_query(SMALL_SPEC, n_joins=5, seed=1, name="fbq")
        return feedback_round(query, q=5.0, seed=2, time_factor=1.0)

    def test_result_shape(self, result):
        assert result.query == "fbq"
        assert result.q == 5.0
        assert result.regret_before > 0
        assert result.regret_after > 0

    def test_json_dict(self, result):
        payload = result.to_json_dict()
        assert payload["query"] == "fbq"
        assert payload["regret_before"] == result.regret_before

    def test_deterministic(self, result):
        query = generate_query(SMALL_SPEC, n_joins=5, seed=1, name="fbq")
        again = feedback_round(query, q=5.0, seed=2, time_factor=1.0)
        assert again == result

    def test_rejects_empty_workload(self):
        with pytest.raises(ValueError):
            run_feedback([], q=5.0)


@pytest.mark.slow
class TestFeedbackDemo:
    """The acceptance demo: one recalibration round reduces median regret
    at q >= 5 on the synthetic workload (seeded, not a flaky threshold)."""

    @pytest.fixture(scope="class")
    def report(self):
        queries = [
            generate_query(SMALL_SPEC, n_joins=6, seed=s, name=f"fb{s}")
            for s in range(6)
        ]
        return run_feedback(queries, q=5.0, seed=3, time_factor=1.0)

    def test_median_regret_drops(self, report):
        assert report.median_regret_before > 1.0
        assert (
            report.median_regret_after
            < report.median_regret_before - 0.01
        )

    def test_recalibrated_plans_are_near_optimal(self, report):
        # Measurements of a database drawn from the truth pull the
        # catalog back to (near) the truth, so the re-optimized plans
        # should be essentially as good as truth-guided ones.
        assert report.median_regret_after < 1.05

    def test_report_json(self, report):
        payload = report.to_json_dict()
        assert payload["q"] == 5.0
        assert len(payload["results"]) == 6
