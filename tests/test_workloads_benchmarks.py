"""Tests for the benchmark catalogue (default + nine variations)."""

import random

import pytest

from repro.workloads.benchmarks import (
    DEFAULT_SPEC,
    benchmark_spec,
    benchmark_specs,
    generate_benchmark,
)


class TestBenchmarkSpecs:
    def test_ten_specs(self):
        specs = benchmark_specs()
        assert sorted(specs) == list(range(10))

    def test_zero_is_default(self):
        assert benchmark_spec(0) is DEFAULT_SPEC

    def test_unknown_number_raises(self):
        with pytest.raises(ValueError):
            benchmark_spec(10)

    def test_unique_names(self):
        names = [spec.name for spec in benchmark_specs().values()]
        assert len(set(names)) == len(names)

    def test_variation_1_scales_range_by_ten(self):
        spec = benchmark_spec(1)
        rng = random.Random(0)
        samples = [spec.cardinality.sample(rng) for _ in range(300)]
        assert max(samples) > 10_000  # beyond the default's range
        assert all(10 <= s < 100_000 for s in samples)

    def test_variations_2_and_3_are_uniform(self):
        for number, high in ((2, 10_000), (3, 100_000)):
            spec = benchmark_spec(number)
            assert len(spec.cardinality.buckets) == 1
            assert spec.cardinality.buckets[0].high == high

    def test_variation_5_lowers_distinct_values(self):
        rng_default = random.Random(1)
        rng_low = random.Random(1)
        default_mean = sum(
            DEFAULT_SPEC.distinct_fraction.sample(rng_default) for _ in range(2000)
        )
        low_mean = sum(
            benchmark_spec(5).distinct_fraction.sample(rng_low)
            for _ in range(2000)
        )
        assert low_mean < default_mean

    def test_variation_7_denser(self):
        assert benchmark_spec(7).join_cutoff_probability == 0.1

    def test_variations_8_9_biases(self):
        assert benchmark_spec(8).graph_bias == "star"
        assert benchmark_spec(9).graph_bias == "chain"

    def test_variations_change_one_feature_only(self):
        """Each variation keeps the other default distributions."""
        for number in (1, 2, 3):
            spec = benchmark_spec(number)
            assert spec.distinct_fraction == DEFAULT_SPEC.distinct_fraction
            assert spec.join_cutoff_probability == 0.01
        for number in (4, 5, 6):
            spec = benchmark_spec(number)
            assert spec.cardinality == DEFAULT_SPEC.cardinality
            assert spec.join_cutoff_probability == 0.01
        for number in (7, 8, 9):
            spec = benchmark_spec(number)
            assert spec.cardinality == DEFAULT_SPEC.cardinality
            assert spec.distinct_fraction == DEFAULT_SPEC.distinct_fraction


class TestGenerateBenchmark:
    def test_counts(self):
        queries = generate_benchmark(
            DEFAULT_SPEC, n_values=(10, 20), queries_per_n=3, seed=0
        )
        assert len(queries) == 6
        assert sorted({q.n_joins for q in queries}) == [10, 20]

    def test_names_unique(self):
        queries = generate_benchmark(
            DEFAULT_SPEC, n_values=(10, 20), queries_per_n=3, seed=0
        )
        names = [q.name for q in queries]
        assert len(set(names)) == len(names)

    def test_deterministic(self):
        a = generate_benchmark(DEFAULT_SPEC, n_values=(10,), queries_per_n=2, seed=1)
        b = generate_benchmark(DEFAULT_SPEC, n_values=(10,), queries_per_n=2, seed=1)
        assert [q.seed for q in a] == [q.seed for q in b]

    def test_queries_differ_within_benchmark(self):
        queries = generate_benchmark(
            DEFAULT_SPEC, n_values=(10,), queries_per_n=3, seed=1
        )
        cards = [
            tuple(r.base_cardinality for r in q.graph.relations) for q in queries
        ]
        assert len(set(cards)) == 3
