"""Tests for outer-linear join trees."""

import pytest

from repro.plans.join_order import JoinOrder
from repro.plans.join_tree import build_join_tree

from tests.conftest import chain_graph, two_component_graph


class TestBuildJoinTree:
    def test_node_count(self, chain):
        tree = build_join_tree(JoinOrder([0, 1, 2, 3, 4]), chain)
        assert len(tree.nodes) == chain.n_joins

    def test_inner_relations_follow_order(self, chain):
        order = JoinOrder([2, 1, 0, 3, 4])
        tree = build_join_tree(order, chain)
        assert [node.inner for node in tree.nodes] == [1, 0, 3, 4]

    def test_outer_sizes_chain_through(self, chain):
        tree = build_join_tree(JoinOrder([0, 1, 2, 3, 4]), chain)
        for previous, node in zip(tree.nodes, tree.nodes[1:]):
            assert node.outer_cardinality == previous.result_cardinality

    def test_no_cross_products_on_valid_order(self, chain):
        tree = build_join_tree(JoinOrder([0, 1, 2, 3, 4]), chain)
        assert tree.n_cross_products == 0

    def test_cross_product_detected(self, two_components):
        tree = build_join_tree(JoinOrder([0, 1, 2, 3, 4]), two_components)
        # Joining relation 2 after {0, 1} crosses components.
        assert tree.nodes[1].is_cross_product
        assert tree.n_cross_products == 1

    def test_cross_product_size_is_product(self):
        graph = two_component_graph()
        tree = build_join_tree(JoinOrder([0, 1, 2, 3, 4]), graph)
        first = tree.nodes[0]
        cross = tree.nodes[1]
        assert cross.result_cardinality == pytest.approx(
            first.result_cardinality * graph.cardinality(2)
        )

    def test_result_cardinality_single_relation(self):
        graph = chain_graph([42])
        tree = build_join_tree(JoinOrder([0]), graph)
        assert tree.result_cardinality == 42.0
        assert tree.nodes == ()

    def test_intermediate_cardinalities_positive(self, cycle):
        tree = build_join_tree(JoinOrder([0, 1, 2, 3]), cycle)
        assert all(size >= 1.0 for size in tree.intermediate_cardinalities())


class TestRendering:
    def test_str_shows_operators(self, chain):
        tree = build_join_tree(JoinOrder([0, 1, 2, 3, 4]), chain)
        assert "|><|" in str(tree)

    def test_str_shows_cross_product(self, two_components):
        tree = build_join_tree(JoinOrder([0, 1, 2, 3, 4]), two_components)
        assert " x " in str(tree)

    def test_explain_lists_every_join(self, chain):
        tree = build_join_tree(JoinOrder([0, 1, 2, 3, 4]), chain)
        explanation = tree.explain()
        assert explanation.count("hash join") == chain.n_joins
        assert "scan" in explanation
