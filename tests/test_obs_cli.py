"""Tests for the obs reader CLI and the optimizer CLI's --trace/--metrics."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.core.optimizer import optimize
from repro.obs import RecordingTracer, write_trace
from repro.obs.__main__ import EXIT_DIFFERS, EXIT_OK, EXIT_USAGE
from repro.obs.__main__ import main as obs_main
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query


@pytest.fixture()
def trace_file(tmp_path):
    query = generate_query(DEFAULT_SPEC, n_joins=6, seed=3)
    path = tmp_path / "run.jsonl"
    optimize(query, method="SA", seed=1, trace=str(path))
    return path


def test_summarize_exits_zero(trace_file, capsys) -> None:
    assert obs_main(["summarize", str(trace_file)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "events" in out
    assert "run_end" in out or "final" in out


def test_diff_identical(trace_file, tmp_path, capsys) -> None:
    query = generate_query(DEFAULT_SPEC, n_joins=6, seed=3)
    other = tmp_path / "other.jsonl"
    optimize(query, method="SA", seed=1, trace=str(other))
    assert obs_main(["diff", str(trace_file), str(other)]) == EXIT_OK
    assert "identical" in capsys.readouterr().out


def test_diff_divergent(trace_file, tmp_path, capsys) -> None:
    query = generate_query(DEFAULT_SPEC, n_joins=6, seed=3)
    other = tmp_path / "other.jsonl"
    optimize(query, method="SA", seed=2, trace=str(other))
    assert obs_main(["diff", str(trace_file), str(other)]) == EXIT_DIFFERS
    assert capsys.readouterr().out.strip()


def test_missing_file_is_usage_error(tmp_path, capsys) -> None:
    assert obs_main(["summarize", str(tmp_path / "no.jsonl")]) == EXIT_USAGE
    assert "error" in capsys.readouterr().err


def test_malformed_trace_is_usage_error(tmp_path, capsys) -> None:
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    assert obs_main(["summarize", str(path)]) == EXIT_USAGE
    assert "error" in capsys.readouterr().err


def test_summarize_empty_recording(tmp_path) -> None:
    tracer = RecordingTracer()
    path = tmp_path / "empty.jsonl"
    write_trace(tracer.events, str(path))
    assert obs_main(["summarize", str(path)]) == EXIT_OK


def test_optimizer_cli_trace_and_metrics_flags(tmp_path, capsys) -> None:
    trace_path = tmp_path / "cli.jsonl"
    metrics_path = tmp_path / "cli.json"
    code = repro_main(
        [
            "optimize",
            "--joins", "8",
            "--seed", "5",
            "--method", "II",
            "--trace", str(trace_path),
            "--metrics", str(metrics_path),
        ]
    )
    assert code == 0
    assert trace_path.exists()
    assert metrics_path.exists()
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"].get("evaluations", 0) > 0
    assert obs_main(["summarize", str(trace_path)]) == EXIT_OK
    capsys.readouterr()
