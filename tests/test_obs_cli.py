"""Tests for the obs reader CLI and the optimizer CLI's --trace/--metrics."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.core.optimizer import optimize
from repro.obs import RecordingTracer, write_trace
from repro.obs.__main__ import EXIT_DIFFERS, EXIT_OK, EXIT_USAGE
from repro.obs.__main__ import main as obs_main
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query


@pytest.fixture()
def trace_file(tmp_path):
    query = generate_query(DEFAULT_SPEC, n_joins=6, seed=3)
    path = tmp_path / "run.jsonl"
    optimize(query, method="SA", seed=1, trace=str(path))
    return path


def test_summarize_exits_zero(trace_file, capsys) -> None:
    assert obs_main(["summarize", str(trace_file)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "events" in out
    assert "run_end" in out or "final" in out


def test_diff_identical(trace_file, tmp_path, capsys) -> None:
    query = generate_query(DEFAULT_SPEC, n_joins=6, seed=3)
    other = tmp_path / "other.jsonl"
    optimize(query, method="SA", seed=1, trace=str(other))
    assert obs_main(["diff", str(trace_file), str(other)]) == EXIT_OK
    assert "identical" in capsys.readouterr().out


def test_diff_divergent(trace_file, tmp_path, capsys) -> None:
    query = generate_query(DEFAULT_SPEC, n_joins=6, seed=3)
    other = tmp_path / "other.jsonl"
    optimize(query, method="SA", seed=2, trace=str(other))
    assert obs_main(["diff", str(trace_file), str(other)]) == EXIT_DIFFERS
    assert capsys.readouterr().out.strip()


def test_missing_file_is_usage_error(tmp_path, capsys) -> None:
    assert obs_main(["summarize", str(tmp_path / "no.jsonl")]) == EXIT_USAGE
    assert "error" in capsys.readouterr().err


def test_malformed_trace_is_usage_error(tmp_path, capsys) -> None:
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    assert obs_main(["summarize", str(path)]) == EXIT_USAGE
    assert "error" in capsys.readouterr().err


def test_summarize_empty_recording(tmp_path) -> None:
    tracer = RecordingTracer()
    path = tmp_path / "empty.jsonl"
    write_trace(tracer.events, str(path))
    assert obs_main(["summarize", str(path)]) == EXIT_OK


def test_optimizer_cli_trace_and_metrics_flags(tmp_path, capsys) -> None:
    trace_path = tmp_path / "cli.jsonl"
    metrics_path = tmp_path / "cli.json"
    code = repro_main(
        [
            "optimize",
            "--joins", "8",
            "--seed", "5",
            "--method", "II",
            "--trace", str(trace_path),
            "--metrics", str(metrics_path),
        ]
    )
    assert code == 0
    assert trace_path.exists()
    assert metrics_path.exists()
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"].get("evaluations", 0) > 0
    assert obs_main(["summarize", str(trace_path)]) == EXIT_OK
    capsys.readouterr()

# ---------------------------------------------------------------------------
# PR 10 surface: summarize --format json, profile subcommand, obs passthrough


def test_summarize_json_format_is_byte_stable(trace_file, capsys) -> None:
    assert obs_main(["summarize", str(trace_file), "--format", "json"]) == EXIT_OK
    first = capsys.readouterr().out
    assert obs_main(["summarize", str(trace_file), "--format", "json"]) == EXIT_OK
    second = capsys.readouterr().out
    assert first == second
    parsed = json.loads(first)
    assert parsed["events"] > 0
    assert "kinds" in parsed


def test_summarize_buckets_unknown_kinds(tmp_path, capsys) -> None:
    from repro.obs import TraceEvent

    path = tmp_path / "future.jsonl"
    write_trace(
        [
            TraceEvent(seq=0, clock=0.0, kind="run_start", data={}),
            TraceEvent(seq=1, clock=1.0, kind="hyperdrive", data={}),
            TraceEvent(seq=2, clock=2.0, kind="run_end", data={"cost": 1.0}),
        ],
        str(path),
    )
    assert obs_main(["summarize", str(path)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "other" in out
    assert "hyperdrive" in out
    assert obs_main(["summarize", str(path), "--format", "json"]) == EXIT_OK
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["unknown_kinds"] == {"hyperdrive": 1}
    assert parsed["kinds"]["other"] == 1


def test_profile_subcommand_text_json_collapsed(trace_file, capsys) -> None:
    assert obs_main(["profile", str(trace_file)]) == EXIT_OK
    text = capsys.readouterr().out
    assert "SA" in text
    assert obs_main(["profile", str(trace_file), "--format", "json"]) == EXIT_OK
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["tree"]["children"]
    code = obs_main(["profile", str(trace_file), "--format", "collapsed"])
    assert code == EXIT_OK
    lines = capsys.readouterr().out.splitlines()
    assert lines
    for line in lines:
        assert line.rsplit(" ", 1)[1].isdigit()


def test_profile_missing_and_empty_files(tmp_path, capsys) -> None:
    assert obs_main(["profile", str(tmp_path / "no.jsonl")]) == EXIT_USAGE
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "Traceback" not in err
    empty = tmp_path / "empty.jsonl"
    write_trace([], str(empty))
    assert obs_main(["profile", str(empty)]) == EXIT_OK


def test_repro_obs_passthrough(trace_file, capsys) -> None:
    assert repro_main(["obs", "summarize", str(trace_file)]) == 0
    assert "events" in capsys.readouterr().out
    assert repro_main(["obs", "summarize", str(trace_file / "no")]) == 2
