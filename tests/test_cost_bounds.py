"""Tests for the lower-bound estimator."""

import pytest

from repro.cost.bounds import is_close_to_bound, lower_bound
from repro.cost.memory import MainMemoryCostModel
from repro.plans.validity import valid_orders

from tests.conftest import chain_graph


class TestLowerBound:
    def test_zero_for_single_relation(self):
        graph = chain_graph([10])
        assert lower_bound(graph, MainMemoryCostModel()) == 0.0

    def test_admissible_on_small_graphs(self, chain):
        model = MainMemoryCostModel()
        bound = lower_bound(chain, model)
        best = min(model.plan_cost(order, chain) for order in valid_orders(chain))
        assert bound <= best

    def test_admissible_on_star(self, star):
        model = MainMemoryCostModel()
        bound = lower_bound(star, model)
        best = min(model.plan_cost(order, star) for order in valid_orders(star))
        assert bound <= best

    def test_positive_for_multi_relation(self, chain):
        assert lower_bound(chain, MainMemoryCostModel()) > 0

    def test_exact_for_two_relations_build_term(self):
        graph = chain_graph([100, 50])
        model = MainMemoryCostModel()
        bound = lower_bound(graph, model)
        # Exactly the cheapest single-inner charge: build the 50-tuple side.
        assert bound == pytest.approx(model.join_cost(1.0, 50.0, 1.0))


class TestIsCloseToBound:
    def test_within_tolerance(self):
        assert is_close_to_bound(104.0, 100.0, tolerance=1.05)

    def test_outside_tolerance(self):
        assert not is_close_to_bound(106.0, 100.0, tolerance=1.05)

    def test_zero_bound_never_close(self):
        assert not is_close_to_bound(1.0, 0.0)
