"""Tests for the argument-checking helpers."""

import pytest

from repro.utils.validation import check_fraction, check_positive, check_probability


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.5) == 3.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError, match="p must be in"):
            check_probability("p", value)


class TestCheckFraction:
    def test_accepts_half(self):
        assert check_fraction("f", 0.5) == 0.5

    def test_accepts_one(self):
        assert check_fraction("f", 1.0) == 1.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction("f", 1.5)
