"""Second wave of property-based tests, covering the newer subsystems."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.catalog.serialization import query_from_dict, query_to_dict
from repro.catalog.join_graph import Query
from repro.core.budget import Budget
from repro.core.bushy_search import random_bushy_neighbor
from repro.core.dynamic_programming import dp_optimal_order
from repro.cost.memory import MainMemoryCostModel
from repro.cost.static import StaticCostModel
from repro.experiments.paperdata import spearman_rank_correlation
from repro.plans.bushy import (
    bushy_cost,
    is_valid_bushy,
    linear_to_bushy,
    random_bushy_tree,
)
from repro.plans.validity import random_valid_order

from tests.test_property_invariants import graphs_with_orders, join_graphs


@given(join_graphs())
@settings(max_examples=40, deadline=None)
def test_serialization_round_trip_property(graph):
    query = Query(graph=graph, name="prop", seed=1, metadata={"k": 1})
    restored = query_from_dict(query_to_dict(query))
    model = MainMemoryCostModel()
    order = random_valid_order(graph, random.Random(0))
    assert model.plan_cost(order, graph) == model.plan_cost(
        order, restored.graph
    )


@given(join_graphs(min_relations=3, max_relations=7))
@settings(max_examples=30, deadline=None)
def test_dp_lower_bounds_search_methods(graph):
    """The DP optimum (static pricing) lower-bounds any searched plan."""
    model = MainMemoryCostModel()
    static = StaticCostModel(model)
    dp = dp_optimal_order(graph, model)
    order = random_valid_order(graph, random.Random(3))
    assert dp.cost <= static.plan_cost(order, graph) + 1e-9


@given(join_graphs(min_relations=3, max_relations=7), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_bushy_moves_preserve_validity_and_leaves(graph, seed):
    rng = random.Random(seed)
    tree = random_bushy_tree(graph, rng)
    leaves = sorted(tree.leaves())
    for _ in range(4):
        tree = random_bushy_neighbor(tree, graph, rng)
        assert is_valid_bushy(tree, graph)
        assert sorted(tree.leaves()) == leaves


@given(graphs_with_orders())
@settings(max_examples=30, deadline=None)
def test_left_deep_bushy_cost_equals_static_linear(graph_order):
    graph, order = graph_order
    model = MainMemoryCostModel()
    static = StaticCostModel(model)
    tree = linear_to_bushy(order)
    assert bushy_cost(tree, graph, model) == static.plan_cost(order, graph)


@given(graphs_with_orders())
@settings(max_examples=30, deadline=None)
def test_static_cost_never_exceeds_propagated(graph_order):
    """Propagation caps only shrink distinct counts, so effective
    selectivities — and plan costs — can only grow."""
    graph, order = graph_order
    model = MainMemoryCostModel()
    static = StaticCostModel(model)
    # Static sizes are unclamped, so allow the tiny clamp-driven slack.
    assert static.plan_cost(order, graph) <= model.plan_cost(order, graph) * (
        1 + 1e-9
    ) + 1e-6


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_spearman_self_correlation_is_one(values):
    distinct = len(set(values))
    rho = spearman_rank_correlation(values, list(values))
    if distinct > 1:
        assert rho == 1.0
    else:
        assert rho == 0.0


@given(join_graphs(min_relations=2, max_relations=8), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_budget_monotonicity_of_ii(graph, seed):
    """More budget never yields a worse plan (anytime property)."""
    from repro.core.optimizer import optimize

    small = optimize(
        graph, method="II", budget=Budget(limit=200), seed=seed
    )
    large = optimize(
        graph, method="II", budget=Budget(limit=2000), seed=seed
    )
    assert large.cost <= small.cost + 1e-9
