"""Tests for the experiment runner."""

import pytest

from repro.cost.memory import MainMemoryCostModel
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark


@pytest.fixture(scope="module")
def tiny_queries():
    return generate_benchmark(
        DEFAULT_SPEC, n_values=(10,), queries_per_n=3, seed=0
    )


@pytest.fixture(scope="module")
def tiny_result(tiny_queries):
    config = ExperimentConfig(
        methods=("IAI", "II"),
        time_factors=(0.5, 1.0, 2.0),
        units_per_n2=5,
        replicates=2,
        seed=0,
    )
    return run_experiment(tiny_queries, config)


class TestConfig:
    def test_rejects_empty_methods(self):
        with pytest.raises(ValueError):
            ExperimentConfig(methods=(), time_factors=(1.0,))

    def test_rejects_empty_factors(self):
        with pytest.raises(ValueError):
            ExperimentConfig(methods=("II",), time_factors=())

    def test_rejects_zero_replicates(self):
        with pytest.raises(ValueError):
            ExperimentConfig(methods=("II",), time_factors=(1.0,), replicates=0)

    def test_max_factor(self):
        config = ExperimentConfig(methods=("II",), time_factors=(1.0, 3.0))
        assert config.max_factor == 3.0

    def test_all_methods_includes_references_once(self):
        config = ExperimentConfig(
            methods=("II", "IAI"),
            time_factors=(1.0,),
            reference_methods=("IAI", "SA"),
        )
        assert config.all_methods == ("II", "IAI", "SA")


class TestRunExperiment:
    def test_result_structure(self, tiny_result):
        assert tiny_result.n_queries == 3
        assert set(tiny_result.mean_scaled) == {"IAI", "II"}
        for method in ("IAI", "II"):
            assert set(tiny_result.mean_scaled[method]) == {0.5, 1.0, 2.0}

    def test_scaled_costs_at_least_one_at_max_factor(self, tiny_result):
        """The scaling base is the best over methods: minimum ratio is 1."""
        at_max = [tiny_result.at(m, 2.0) for m in ("IAI", "II")]
        assert min(at_max) >= 1.0 - 1e-9

    def test_monotone_in_time(self, tiny_result):
        for method in ("IAI", "II"):
            series = [value for _, value in tiny_result.series(method)]
            assert all(a >= b - 1e-9 for a, b in zip(series, series[1:]))

    def test_values_capped(self, tiny_result):
        for method, by_factor in tiny_result.mean_scaled.items():
            for value in by_factor.values():
                assert 0 < value <= 10.0

    def test_ranking(self, tiny_result):
        ranking = tiny_result.ranking(2.0)
        assert set(ranking) == {"IAI", "II"}
        assert tiny_result.at(ranking[0], 2.0) <= tiny_result.at(ranking[1], 2.0)

    def test_deterministic(self, tiny_queries):
        config = ExperimentConfig(
            methods=("II",), time_factors=(1.0,), units_per_n2=5, seed=4
        )
        a = run_experiment(tiny_queries, config)
        b = run_experiment(tiny_queries, config)
        assert a.mean_scaled == b.mean_scaled

    def test_progress_callback(self, tiny_queries):
        seen = []
        config = ExperimentConfig(
            methods=("II",), time_factors=(0.5,), units_per_n2=5, replicates=1
        )
        run_experiment(tiny_queries, config, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_reference_method_not_reported(self, tiny_queries):
        config = ExperimentConfig(
            methods=("AUG3",),
            time_factors=(1.0,),
            units_per_n2=5,
            replicates=1,
            reference_methods=("IAI",),
        )
        result = run_experiment(tiny_queries, config)
        assert set(result.mean_scaled) == {"AUG3"}
        # Scaled against IAI's (usually better) solutions: >= 1.
        assert result.at("AUG3", 1.0) >= 1.0 - 1e-9

    def test_disk_model_supported(self, tiny_queries):
        from repro.cost.disk import DiskCostModel

        config = ExperimentConfig(
            methods=("II",),
            time_factors=(0.5,),
            model=DiskCostModel(),
            units_per_n2=5,
            replicates=1,
        )
        result = run_experiment(tiny_queries, config)
        assert result.at("II", 0.5) > 0
