"""Tests for join-order validity (no premature cross products)."""

import random

import pytest

from repro.plans.join_order import JoinOrder
from repro.plans.validity import (
    count_valid_orders,
    first_invalid_position,
    is_valid_order,
    random_valid_order,
    valid_orders,
)

from tests.conftest import chain_graph, star_graph


class TestChain:
    def test_identity_valid(self, chain):
        assert is_valid_order(JoinOrder([0, 1, 2, 3, 4]), chain)

    def test_reverse_valid(self, chain):
        assert is_valid_order(JoinOrder([4, 3, 2, 1, 0]), chain)

    def test_middle_out_valid(self, chain):
        assert is_valid_order(JoinOrder([2, 1, 0, 3, 4]), chain)

    def test_gap_invalid(self, chain):
        # 0 then 2 skips relation 1: cross product.
        order = JoinOrder([0, 2, 1, 3, 4])
        assert not is_valid_order(order, chain)
        assert first_invalid_position(order, chain) == 1

    def test_first_invalid_position_none_when_valid(self, chain):
        assert first_invalid_position(JoinOrder([0, 1, 2, 3, 4]), chain) is None


class TestStar:
    def test_centre_first_any_order_valid(self, star):
        assert is_valid_order(JoinOrder([0, 4, 2, 1, 3]), star)

    def test_two_leaves_first_invalid(self, star):
        order = JoinOrder([1, 2, 0, 3, 4])
        assert first_invalid_position(order, star) == 1

    def test_leaf_then_centre_valid(self, star):
        assert is_valid_order(JoinOrder([3, 0, 1, 2, 4]), star)


class TestComponents:
    def test_components_contiguous_valid(self, two_components):
        assert is_valid_order(JoinOrder([0, 1, 3, 2, 4]), two_components)

    def test_components_reversed_valid(self, two_components):
        assert is_valid_order(JoinOrder([4, 3, 2, 0, 1]), two_components)

    def test_interleaved_components_invalid(self, two_components):
        # Starts component {0,1}, then jumps to the other before finishing.
        order = JoinOrder([0, 2, 1, 3, 4])
        assert not is_valid_order(order, two_components)

    def test_cross_product_within_component_invalid(self, two_components):
        # 2 then 4 are in the same component but not adjacent.
        order = JoinOrder([2, 4, 3, 0, 1])
        assert not is_valid_order(order, two_components)


class TestErrors:
    def test_length_mismatch(self, chain):
        with pytest.raises(ValueError, match="does not match"):
            is_valid_order(JoinOrder([0, 1]), chain)


class TestRandomValidOrder:
    @pytest.mark.parametrize("seed", range(10))
    def test_always_valid_on_chain(self, chain, seed):
        order = random_valid_order(chain, random.Random(seed))
        assert is_valid_order(order, chain)

    @pytest.mark.parametrize("seed", range(10))
    def test_always_valid_on_components(self, two_components, seed):
        order = random_valid_order(two_components, random.Random(seed))
        assert is_valid_order(order, two_components)

    def test_covers_multiple_starts(self, chain):
        firsts = {
            random_valid_order(chain, random.Random(seed))[0]
            for seed in range(60)
        }
        assert len(firsts) > 1

    def test_deterministic_for_same_rng_state(self, star):
        a = random_valid_order(star, random.Random(3))
        b = random_valid_order(star, random.Random(3))
        assert a == b


class TestEnumeration:
    def test_chain_of_three_count(self):
        graph = chain_graph([10, 20, 30])
        # Valid orders of a 3-chain: 012, 102, 120, 210 -> 4.
        assert count_valid_orders(graph) == 4

    def test_star_of_four_count(self):
        graph = star_graph([10, 20, 30, 40])
        # Star with centre 0 and 3 leaves: centre first (3! = 6 leaf
        # orders) plus leaf-first orders (3 leaves x 2! = 6) -> 12.
        assert count_valid_orders(graph) == 12

    def test_all_enumerated_are_valid(self, chain):
        for order in valid_orders(chain):
            assert is_valid_order(order, chain)
