"""Tests for the join-order permutation type."""

import pytest

from repro.plans.join_order import JoinOrder


class TestConstruction:
    def test_holds_positions(self):
        assert JoinOrder([2, 0, 1]).positions == (2, 0, 1)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicates"):
            JoinOrder([0, 1, 1])

    def test_len_iter_getitem(self):
        order = JoinOrder([3, 1, 2])
        assert len(order) == 3
        assert list(order) == [3, 1, 2]
        assert order[0] == 3

    def test_equality_and_hash(self):
        assert JoinOrder([1, 2]) == JoinOrder([1, 2])
        assert JoinOrder([1, 2]) != JoinOrder([2, 1])
        assert hash(JoinOrder([1, 2])) == hash(JoinOrder((1, 2)))

    def test_not_equal_to_tuple(self):
        assert JoinOrder([1, 2]) != (1, 2)

    def test_index(self):
        assert JoinOrder([5, 3, 9]).index(9) == 2


class TestPerturbations:
    def test_swap(self):
        order = JoinOrder([0, 1, 2, 3])
        assert order.swap(0, 3).positions == (3, 1, 2, 0)

    def test_swap_does_not_mutate(self):
        order = JoinOrder([0, 1, 2])
        order.swap(0, 1)
        assert order.positions == (0, 1, 2)

    def test_insert_forward(self):
        order = JoinOrder([0, 1, 2, 3])
        assert order.insert(0, 2).positions == (1, 2, 0, 3)

    def test_insert_backward(self):
        order = JoinOrder([0, 1, 2, 3])
        assert order.insert(3, 0).positions == (3, 0, 1, 2)

    def test_insert_same_position_is_identity(self):
        order = JoinOrder([0, 1, 2])
        assert order.insert(1, 1) == order

    def test_replace_segment(self):
        order = JoinOrder([0, 1, 2, 3, 4])
        replaced = order.replace_segment(1, (3, 2, 1))
        assert replaced.positions == (0, 3, 2, 1, 4)

    def test_replace_segment_rejects_duplicates(self):
        order = JoinOrder([0, 1, 2, 3])
        with pytest.raises(ValueError):
            order.replace_segment(0, (1, 1))

    def test_prefix(self):
        assert JoinOrder([4, 2, 0]).prefix(2) == (4, 2)

    def test_str_and_repr(self):
        order = JoinOrder([1, 0])
        assert str(order) == "(1 0)"
        assert "JoinOrder" in repr(order)
