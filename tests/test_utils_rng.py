"""Tests for deterministic RNG derivation."""

import random

from repro.utils.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_differs_by_root_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_differs_by_key(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_key_order(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_differs_by_key_arity(self):
        assert derive_seed(1, "a") != derive_seed(1, "a", "a")

    def test_int_vs_str_keys_distinct(self):
        assert derive_seed(1, 2) != derive_seed(1, "2")

    def test_is_64_bit(self):
        for seed in range(20):
            assert 0 <= derive_seed(seed, "x") < 2**64


class TestDeriveRng:
    def test_returns_random_instance(self):
        assert isinstance(derive_rng(0, "k"), random.Random)

    def test_same_path_same_stream(self):
        a = derive_rng(5, "stream")
        b = derive_rng(5, "stream")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_paths_different_streams(self):
        a = derive_rng(5, "one")
        b = derive_rng(5, "two")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]
