"""Tests for deterministic RNG derivation."""

import itertools
import random

import pytest

from repro.utils.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_differs_by_root_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_differs_by_key(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_key_order(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_differs_by_key_arity(self):
        assert derive_seed(1, "a") != derive_seed(1, "a", "a")

    def test_int_vs_str_keys_distinct(self):
        assert derive_seed(1, 2) != derive_seed(1, "2")

    def test_is_64_bit(self):
        for seed in range(20):
            assert 0 <= derive_seed(seed, "x") < 2**64


class TestKeyFraming:
    """Distinct key paths whose naive stringifications coincide must
    yield distinct streams (the framing regression suite)."""

    def test_worker_index_concatenation(self):
        # "worker" + "12" and "worker1" + "2" both concatenate to
        # "worker12"; the length framing keeps them apart.
        assert derive_seed(0, "worker", 12) != derive_seed(0, "worker1", 2)

    def test_string_split_points(self):
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")
        assert derive_seed(0, "abc") != derive_seed(0, "ab", "c")
        assert derive_seed(0, "", "abc") != derive_seed(0, "abc", "")

    def test_numeric_type_tags(self):
        values = [12, "12", 12.0, "12.0"]
        seeds = [derive_seed(0, value) for value in values]
        assert len(set(seeds)) == len(values)

    def test_bool_is_not_int(self):
        assert derive_seed(0, True) != derive_seed(0, 1)
        assert derive_seed(0, False) != derive_seed(0, 0)

    def test_none_and_empty_string_distinct(self):
        assert derive_seed(0, None) != derive_seed(0, "")
        assert derive_seed(0, None) != derive_seed(0, "None")

    def test_tuple_flattening_distinct(self):
        assert derive_seed(0, ("a", "b")) != derive_seed(0, "a", "b")
        assert derive_seed(0, ("a",), "b") != derive_seed(0, "a", ("b",))

    def test_negative_and_positive_ints_distinct(self):
        assert derive_seed(0, -1) != derive_seed(0, 1)
        assert derive_seed(0, "-1") != derive_seed(0, -1)

    def test_unsupported_key_type_raises(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            derive_seed(0, Opaque())
        with pytest.raises(TypeError):
            derive_seed(0, ["list", "key"])

    def test_collision_probe_10k_streams(self):
        """10k derived streams over adversarial key paths: all distinct.

        The paths mix the orchestrator's ("worker", k) shape with
        deliberately confusable variants — shifted digits, string forms,
        float forms, concatenation-equivalent prefixes.
        """
        def typed(path):
            # 0 == 0.0 == False in Python, so dedup must be type-aware:
            # the framing is *supposed* to separate those paths.
            return tuple((type(key).__name__, key) for key in path)

        seeds: dict[int, tuple] = {}
        paths = []
        for k in range(2000):
            paths.append(("worker", k))
            paths.append((f"worker{k}",))
            paths.append((f"worker{k // 10}", k % 10))
            paths.append(("worker", str(k)))
            paths.append(("worker", float(k)))
        assert len(paths) == 10_000
        for path in paths:
            seed = derive_seed(1234, *path)
            assert seed not in seeds or seeds[seed] == typed(path), (
                f"collision: {path} vs {seeds[seed]}"
            )
            seeds[seed] = typed(path)
        assert len(seeds) == len({typed(path) for path in paths})

    def test_probe_pairwise_concatenation_shapes(self):
        """Every split of 'abcdef' into 1-3 parts derives distinctly."""
        word = "abcdef"
        splits = set()
        for i, j in itertools.combinations(range(1, len(word)), 2):
            splits.add((word[:i], word[i:j], word[j:]))
        for i in range(1, len(word)):
            splits.add((word[:i], word[i:]))
        splits.add((word,))
        seeds = {split: derive_seed(7, *split) for split in splits}
        assert len(set(seeds.values())) == len(splits)


class TestDeriveRng:
    def test_returns_random_instance(self):
        assert isinstance(derive_rng(0, "k"), random.Random)

    def test_same_path_same_stream(self):
        a = derive_rng(5, "stream")
        b = derive_rng(5, "stream")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_paths_different_streams(self):
        a = derive_rng(5, "one")
        b = derive_rng(5, "two")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]
