"""Tests for detlint v2: call graph, summaries, project rules, cache.

Three layers, mirroring the architecture:

* **dataflow/callgraph units** — extraction and fixpoint propagation on
  tiny in-memory projects, asserting summaries and witness chains;
* **project-rule fixtures** — every new family (PURE001, DET005,
  RACE001, ASYNC001, EXC002) demonstrated with a snippet that MUST flag
  and a near-miss that MUST NOT, through the real engine;
* **run-level properties** — byte-identical reports across runs, warm
  (cached) findings identical to cold, cache invalidation on content and
  configuration changes, suppression/baseline round-trips for the new
  rule ids.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.callgraph import build_callgraph
from repro.analysis.cli import main
from repro.analysis.config import DetlintConfig
from repro.analysis.dataflow import PARAM_MUTATION, RNG, extract_module_facts
from repro.analysis.engine import Analyzer
from repro.analysis.findings import Finding
from repro.analysis.reporting import render_json, render_sarif

REPO_ROOT = Path(__file__).resolve().parents[1]
ASYNC_FIXTURE = REPO_ROOT / "tests" / "fixtures" / "async_service.py"


def analyze(
    source: str,
    rel_path: str = "fixture/mod.py",
    rule_options: dict | None = None,
) -> list[Finding]:
    config = DetlintConfig(
        root="/nonexistent",
        baseline=None,
        rule_options=rule_options or {},
    )
    analyzer = Analyzer(config, baseline=None, use_cache=False)
    return analyzer.check_source(textwrap.dedent(source), rel_path)


def codes(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings if finding.counts}


def open_messages(findings: list[Finding], rule: str) -> list[str]:
    return [f.message for f in findings if f.counts and f.rule == rule]


def facts_for(source: str, rel_path: str = "src/pkg/mod.py"):
    tree = ast.parse(textwrap.dedent(source))
    return extract_module_facts(
        rel_path, tree, textwrap.dedent(source).splitlines()
    )


# ---------------------------------------------------------------------------
# Call graph units: propagation and witness chains


def test_effect_propagates_transitively_with_chain() -> None:
    modules = {
        "src/pkg/a.py": facts_for(
            """
            from pkg.b import middle

            def top(x):
                return middle(x)
            """,
            "src/pkg/a.py",
        ),
        "src/pkg/b.py": facts_for(
            """
            import random

            def leaf():
                return random.random()

            def middle(x):
                return x + leaf()
            """,
            "src/pkg/b.py",
        ),
    }
    graph = build_callgraph(modules)
    top = "pkg.a.top"
    assert RNG in graph.summaries[top]
    assert graph.effect_chain(top, RNG) == [top, "pkg.b.middle", "pkg.b.leaf"]
    # The witness anchors in top's own file, at the call edge.
    witness = graph.summaries[top][RNG]
    assert witness.via == "pkg.b.middle"
    assert "middle(x)" in witness.snippet


def test_param_mutation_maps_per_parameter() -> None:
    facts = facts_for(
        """
        def tally(bucket, value):
            bucket.append(value)

        def caller_passes_param(out, v):
            tally(out, v)

        def caller_passes_local(v):
            fresh = []
            tally(fresh, v)
            return fresh
        """
    )
    graph = build_callgraph({"src/pkg/mod.py": facts})
    assert graph.mutated_params["pkg.mod.tally"].keys() == {"bucket"}
    # The *param*-rooted operand propagates, onto the right name...
    assert "out" in graph.mutated_params["pkg.mod.caller_passes_param"]
    # ...while the fresh local stops the chain entirely.
    assert not graph.mutated_params["pkg.mod.caller_passes_local"]
    assert (
        PARAM_MUTATION
        not in graph.summaries["pkg.mod.caller_passes_local"]
    )


def test_constructor_self_mutation_is_not_the_callers_problem() -> None:
    facts = facts_for(
        """
        class Acc:
            def __init__(self, graph):
                self.total = 0.0
                self.graph = graph

        def price(graph, order):
            acc = Acc(graph)
            return acc.total
        """
    )
    graph = build_callgraph({"src/pkg/mod.py": facts})
    # __init__ mutates its own (fresh) self; `price` stays pure.
    assert "self" in graph.mutated_params["pkg.mod.Acc.__init__"]
    assert PARAM_MUTATION not in graph.summaries["pkg.mod.price"]


def test_caught_exceptions_do_not_propagate() -> None:
    facts = facts_for(
        """
        def fails():
            raise ValueError("boom")

        def shielded():
            try:
                return fails()
            except ValueError:
                return None

        def exposed():
            return fails()
        """
    )
    graph = build_callgraph({"src/pkg/mod.py": facts})
    assert "ValueError" not in graph.raise_summaries["pkg.mod.shielded"]
    assert "ValueError" in graph.raise_summaries["pkg.mod.exposed"]


def test_unordered_return_propagates_through_wrappers() -> None:
    facts = facts_for(
        """
        def frontier(state):
            return {v for v in state}

        def wrapped(state):
            return frontier(state)

        def sorted_wrapper(state):
            return sorted(frontier(state))
        """
    )
    graph = build_callgraph({"src/pkg/mod.py": facts})
    assert "pkg.mod.frontier" in graph.unordered
    assert "pkg.mod.wrapped" in graph.unordered
    assert "pkg.mod.sorted_wrapper" not in graph.unordered


# ---------------------------------------------------------------------------
# PURE001 — declared-pure entrypoints


def test_pure001_flags_transitive_param_mutation() -> None:
    findings = analyze(
        """
        def tally(bucket, value):
            bucket.append(value)

        def plan_cost(order, out):
            for v in order:
                tally(out, v)
            return len(out)
        """
    )
    assert "PURE001" in codes(findings)
    (message,) = open_messages(findings, "PURE001")
    assert "mutates an argument in place" in message
    assert "call chain:" in message


def test_pure001_flags_transitive_rng() -> None:
    findings = analyze(
        """
        import random

        def jitter():
            return random.random()

        def helper(x):
            return x * jitter()

        def plan_cost(order, graph):
            return sum(helper(v) for v in order)
        """
    )
    messages = open_messages(findings, "PURE001")
    assert any("draws random numbers" in m for m in messages)


def test_pure001_ignores_fresh_object_accumulation() -> None:
    findings = analyze(
        """
        class Acc:
            def __init__(self):
                self.total = 0.0

            def add(self, v):
                self.total += v

        def plan_cost(order, graph):
            acc = Acc()
            for v in order:
                acc.add(v)
            return acc.total
        """
    )
    assert "PURE001" not in codes(findings)


def test_pure001_ignores_non_entrypoint_impurity() -> None:
    findings = analyze(
        """
        import random

        def unrelated_helper():
            return random.random()
        """
    )
    assert "PURE001" not in codes(findings)


def test_pure001_entrypoints_are_configurable() -> None:
    source = """
    import random

    def custom_price(order):
        return random.random()
    """
    assert "PURE001" not in codes(analyze(source))
    flagged = analyze(
        source,
        rule_options={"PURE001": {"entrypoints": ["custom_price"]}},
    )
    assert "PURE001" in codes(flagged)


def test_pure001_flags_registry_dispatched_effect() -> None:
    findings = analyze(
        """
        import random

        def make_noisy():
            return random.random()

        FACTORIES = {"noisy": make_noisy}

        def plan_cost(order, kind):
            factory = FACTORIES[kind]
            return factory()
        """
    )
    assert "PURE001" in codes(findings)


# ---------------------------------------------------------------------------
# DET005 — cross-function unordered consumption


def test_det005_flags_list_over_set_returning_callee() -> None:
    findings = analyze(
        """
        def frontier(state):
            return {v + 1 for v in state}

        def expand(state):
            return list(frontier(state))
        """
    )
    assert "DET005" in codes(findings)
    (message,) = open_messages(findings, "DET005")
    assert "frontier" in message
    # DET003 must not double-flag the same site (the call result is not
    # syntactically unordered).
    assert "DET003" not in codes(findings)


def test_det005_silent_when_callee_sorts() -> None:
    findings = analyze(
        """
        def frontier(state):
            return sorted({v + 1 for v in state})

        def expand(state):
            return list(frontier(state))
        """
    )
    assert "DET005" not in codes(findings)


def test_det005_sees_through_return_wrappers() -> None:
    findings = analyze(
        """
        def raw(state):
            return set(state)

        def wrapped(state):
            return raw(state)

        def expand(state):
            return list(wrapped(state))
        """
    )
    assert "DET005" in codes(findings)


# ---------------------------------------------------------------------------
# RACE001 — pool workers reaching module-global mutation


RACE_WORKER = """
from concurrent.futures import ProcessPoolExecutor

_CACHE = {}


def remember(key, value):
    _CACHE[key] = value


def run_job(job):
    remember(job.key, job.value)
    return job.value


def dispatch(jobs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_job, job) for job in jobs]
    return [f.result() for f in futures]
"""


def test_race001_flags_global_mutation_reached_from_worker() -> None:
    findings = analyze(RACE_WORKER)
    assert "RACE001" in codes(findings)
    (message,) = open_messages(findings, "RACE001")
    assert "run_job" in message
    assert "call chain:" in message


def test_race001_silent_for_pure_worker() -> None:
    findings = analyze(
        """
        from concurrent.futures import ProcessPoolExecutor


        def run_job(job):
            return job.value * 2


        def dispatch(jobs):
            with ProcessPoolExecutor() as pool:
                futures = [pool.submit(run_job, job) for job in jobs]
            return [f.result() for f in futures]
        """
    )
    assert "RACE001" not in codes(findings)


def test_race001_leaves_direct_global_rebind_to_det004() -> None:
    findings = analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        _MODE = "idle"


        def run_job(job):
            global _MODE
            _MODE = "busy"
            return job.value


        def dispatch(jobs):
            with ProcessPoolExecutor() as pool:
                futures = [pool.submit(run_job, job) for job in jobs]
            return [f.result() for f in futures]
        """
    )
    assert "RACE001" not in codes(findings)


# ---------------------------------------------------------------------------
# ASYNC001 — blocking under async def (the checked-in fixture)


def test_async001_on_the_checked_in_fixture() -> None:
    config = DetlintConfig(root=str(REPO_ROOT), baseline=None)
    analyzer = Analyzer(config, baseline=None, use_cache=False)
    findings = analyzer.check_file(str(ASYNC_FIXTURE))
    flagged = {
        f.line: f.message for f in findings if f.rule == "ASYNC001"
    }
    source_lines = ASYNC_FIXTURE.read_text().splitlines()
    # Both impure coroutines flag, each anchored inside its own body...
    assert len(flagged) == 2
    for line, message in flagged.items():
        assert "may block the event loop" in message
        anchor = source_lines[line - 1]
        assert "throttled_read" in anchor or "time.sleep" in anchor
    # ...and the chain through the sync helpers is spelled out.
    deep = [m for m in flagged.values() if "serve_plan_blocking" in m]
    assert deep and "call chain:" in deep[0]
    # The clean variants (to_thread / asyncio.sleep) never appear.
    assert not any(
        "serve_plan_clean" in m or "clean_heartbeat" in m
        for m in flagged.values()
    )


def test_async001_near_miss_async_sleep() -> None:
    findings = analyze(
        """
        import asyncio

        async def pause():
            await asyncio.sleep(1.0)
        """
    )
    assert "ASYNC001" not in codes(findings)


def test_async001_flags_blocking_two_frames_down() -> None:
    findings = analyze(
        """
        import time

        def settle():
            time.sleep(0.1)

        def prepare():
            settle()

        async def serve():
            prepare()
            return 1
        """
    )
    messages = open_messages(findings, "ASYNC001")
    assert len(messages) == 1
    assert "serve" in messages[0]


# ---------------------------------------------------------------------------
# EXC002 — raises-only exception contracts


EXC_OPTIONS = {
    "EXC002": {"contracts": {"mod.api": ["ValueError"]}}
}


def test_exc002_flags_undeclared_transitive_raise() -> None:
    findings = analyze(
        """
        def helper(x):
            if x < 0:
                raise KeyError(x)
            return x

        def api(x):
            if x is None:
                raise ValueError("x required")
            return helper(x)
        """,
        rule_options=EXC_OPTIONS,
    )
    (message,) = open_messages(findings, "EXC002")
    assert "KeyError" in message
    assert "raises only: ValueError" in message


def test_exc002_declared_and_caught_raises_pass() -> None:
    findings = analyze(
        """
        def helper(x):
            if x < 0:
                raise KeyError(x)
            return x

        def api(x):
            if x is None:
                raise ValueError("x required")
            try:
                return helper(x)
            except KeyError:
                return 0
        """,
        rule_options=EXC_OPTIONS,
    )
    assert "EXC002" not in codes(findings)


def test_exc002_without_contracts_is_silent() -> None:
    findings = analyze(
        """
        def api(x):
            raise RuntimeError("always")
        """
    )
    assert "EXC002" not in codes(findings)


# ---------------------------------------------------------------------------
# Suppression and baseline round-trips for the new rule ids


def test_new_rules_suppress_with_reason() -> None:
    findings = analyze(
        """
        def frontier(state):
            return {v for v in state}

        def expand(state):
            # detlint: ignore[DET005] -- consumer sorts downstream
            return list(frontier(state))
        """
    )
    assert "DET005" not in codes(findings)
    assert "SUP002" not in codes(findings)
    suppressed = [f for f in findings if f.suppressed]
    assert [f.rule for f in suppressed] == ["DET005"]
    assert suppressed[0].suppression_reason == "consumer sorts downstream"


def test_new_rules_reasonless_pragma_raises_sup001() -> None:
    findings = analyze(
        """
        def frontier(state):
            return {v for v in state}

        def expand(state):
            return list(frontier(state))  # detlint: ignore[DET005]
        """
    )
    assert codes(findings) == {"DET005", "SUP001"}


def test_project_findings_baseline_round_trip(
    tmp_path: Path, monkeypatch: pytest.MonkeyPatch
) -> None:
    (tmp_path / "pyproject.toml").write_text(
        '[tool.detlint]\npaths = ["src"]\n'
        'baseline = "detlint-baseline.json"\n'
    )
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(
        textwrap.dedent(
            """
            def frontier(state):
                return {v for v in state}

            def expand(state):
                return list(frontier(state))
            """
        )
    )
    monkeypatch.chdir(tmp_path)
    assert main(["src"]) == 1
    assert main(["src", "--update-baseline"]) == 0
    document = json.loads((tmp_path / "detlint-baseline.json").read_text())
    assert [
        entry["rule"] for entry in document["findings"].values()
    ] == ["DET005"]
    assert main(["src"]) == 0
    assert main(["src", "--no-baseline"]) == 1


# ---------------------------------------------------------------------------
# Determinism and the summary cache


def project_tree(tmp_path: Path) -> Path:
    (tmp_path / "pyproject.toml").write_text(
        '[tool.detlint]\npaths = ["src"]\nbaseline = ""\n'
        'cache = ".detlint-cache.json"\n'
        "[tool.detlint.rules.PURE001]\n"
        'entrypoints = ["plan_cost"]\n'
    )
    src = tmp_path / "src"
    src.mkdir()
    (src / "impure.py").write_text(
        textwrap.dedent(
            """
            import random

            def jitter():
                return random.random()

            def plan_cost(order):
                return jitter()
            """
        )
    )
    (src / "clean.py").write_text("def double(x):\n    return 2 * x\n")
    return tmp_path


def run_project(root: Path, use_cache: bool | None = None):
    from repro.analysis.config import load_config

    config = load_config(start=str(root))
    analyzer = Analyzer(config, baseline=None, use_cache=use_cache)
    return analyzer.run()


def test_reports_are_byte_identical_across_runs(tmp_path: Path) -> None:
    root = project_tree(tmp_path)
    first = run_project(root, use_cache=False)
    second = run_project(root, use_cache=False)
    assert render_json(first) == render_json(second)
    assert render_sarif(first) == render_sarif(second)


def test_warm_cache_reproduces_cold_findings_exactly(tmp_path: Path) -> None:
    root = project_tree(tmp_path)
    cold = run_project(root)
    assert cold.cache_misses == 2 and cold.cache_hits == 0
    assert (root / ".detlint-cache.json").is_file()
    warm = run_project(root)
    assert warm.cache_hits == 2 and warm.cache_misses == 0
    assert render_json(warm) == render_json(cold)
    assert render_sarif(warm) == render_sarif(cold)
    # DET001 anchors at the direct random.random() call; PURE001 is the
    # interprocedural finding the cache must reproduce from summaries.
    assert sorted(f.rule for f in warm.unsuppressed) == [
        "DET001",
        "PURE001",
    ]


def test_cache_invalidates_on_content_change(tmp_path: Path) -> None:
    root = project_tree(tmp_path)
    run_project(root)
    (root / "src" / "clean.py").write_text(
        "def double(x):\n    return x + x\n"
    )
    result = run_project(root)
    assert result.cache_hits == 1  # impure.py unchanged
    assert result.cache_misses == 1  # clean.py re-analyzed


def test_cache_invalidates_on_config_change(tmp_path: Path) -> None:
    root = project_tree(tmp_path)
    run_project(root)
    pyproject = root / "pyproject.toml"
    pyproject.write_text(
        pyproject.read_text().replace(
            'entrypoints = ["plan_cost"]',
            'entrypoints = ["plan_cost", "price_batch"]',
        )
    )
    result = run_project(root)
    assert result.cache_hits == 0 and result.cache_misses == 2


def test_cache_ignores_corrupt_file(tmp_path: Path) -> None:
    root = project_tree(tmp_path)
    reference = run_project(root, use_cache=False)
    (root / ".detlint-cache.json").write_text("{not json")
    result = run_project(root)
    assert result.cache_misses == 2
    assert render_json(result) == render_json(reference)


# ---------------------------------------------------------------------------
# SARIF rendering


def test_sarif_document_shape(tmp_path: Path) -> None:
    root = project_tree(tmp_path)
    document = json.loads(render_sarif(run_project(root, use_cache=False)))
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "detlint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert {
        "PURE001",
        "DET005",
        "RACE001",
        "ASYNC001",
        "EXC002",
        "SUP001",
    } <= rule_ids
    (result,) = [
        r for r in run["results"] if r["ruleId"] == "PURE001"
    ]
    assert result["level"] == "error"
    assert result["partialFingerprints"]["detlint/v1"]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/impure.py"
    assert location["region"]["startLine"] >= 1


def test_sarif_marks_suppressed_findings(tmp_path: Path) -> None:
    root = project_tree(tmp_path)
    impure = root / "src" / "impure.py"
    impure.write_text(
        impure.read_text().replace(
            "    return jitter()",
            "    # detlint: ignore[PURE001] -- fixture demonstrates SARIF\n"
            "    return jitter()",
        )
    )
    document = json.loads(render_sarif(run_project(root, use_cache=False)))
    (run,) = document["runs"]
    suppressed = [r for r in run["results"] if "suppressions" in r]
    assert suppressed
    entry = suppressed[0]["suppressions"][0]
    assert entry["kind"] == "inSource"
    assert entry["justification"] == "fixture demonstrates SARIF"
