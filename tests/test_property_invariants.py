"""Property-based tests (hypothesis) on the core invariants.

Random small join graphs are generated as hypothesis strategies; the
invariants cover validity closure of the move set, estimator sanity,
heuristic output validity, and the never-worse guarantee of local
improvement.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.core.augmentation import AugmentationCriterion, augment_order
from repro.core.budget import Budget
from repro.core.kbz import kbz_orders
from repro.core.local_improvement import local_improve
from repro.core.moves import MoveSet
from repro.core.state import Evaluation, Evaluator
from repro.cost.cardinality import prefix_cardinalities
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order, random_valid_order


@st.composite
def join_graphs(draw, min_relations=2, max_relations=8):
    """A random connected join graph with plausible statistics."""
    n = draw(st.integers(min_relations, max_relations))
    cardinalities = draw(
        st.lists(st.integers(2, 50_000), min_size=n, max_size=n)
    )
    relations = [Relation(f"R{i}", c) for i, c in enumerate(cardinalities)]
    edges: set[tuple[int, int]] = set()
    for i in range(1, n):
        partner = draw(st.integers(0, i - 1))
        edges.add((partner, i))
    n_extra = draw(st.integers(0, max(0, n - 2)))
    for _ in range(n_extra):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    predicates = []
    for a, b in sorted(edges):
        left_distinct = draw(st.integers(1, cardinalities[a]))
        right_distinct = draw(st.integers(1, cardinalities[b]))
        predicates.append(JoinPredicate(a, b, left_distinct, right_distinct))
    return JoinGraph(relations, predicates)


@st.composite
def graphs_with_orders(draw):
    graph = draw(join_graphs())
    seed = draw(st.integers(0, 2**16))
    order = random_valid_order(graph, random.Random(seed))
    return graph, order


@given(graphs_with_orders())
@settings(max_examples=60, deadline=None)
def test_random_valid_order_is_valid(graph_order):
    graph, order = graph_order
    assert is_valid_order(order, graph)


@given(graphs_with_orders(), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_moves_preserve_validity(graph_order, seed):
    graph, order = graph_order
    move_set = MoveSet()
    rng = random.Random(seed)
    for _ in range(5):
        order = move_set.random_neighbor(order, graph, rng)
        assert is_valid_order(order, graph)


@given(graphs_with_orders())
@settings(max_examples=60, deadline=None)
def test_prefix_cardinalities_positive_and_complete(graph_order):
    graph, order = graph_order
    sizes = prefix_cardinalities(order, graph)
    assert len(sizes) == graph.n_relations
    assert all(size >= 1.0 for size in sizes)


@given(graphs_with_orders())
@settings(max_examples=60, deadline=None)
def test_final_cardinality_near_order_independent_without_caps(graph_order):
    """With propagation the *final* size may differ across orders, but it
    is never below the static no-propagation estimate."""
    graph, order = graph_order
    from repro.cost.cardinality import combined_selectivity

    static = graph.cardinality(order[0])
    placed = [order[0]]
    for position in range(1, len(order)):
        inner = order[position]
        predicates = graph.edges_between(placed, inner)
        static = max(
            1.0,
            static * graph.cardinality(inner) * combined_selectivity(predicates),
        )
        placed.append(inner)
    propagated = prefix_cardinalities(order, graph)[-1]
    assert propagated >= static - 1e-6 * static - 1e-9


@given(graphs_with_orders())
@settings(max_examples=40, deadline=None)
def test_plan_costs_positive_under_both_models(graph_order):
    graph, order = graph_order
    assert MainMemoryCostModel().plan_cost(order, graph) > 0
    assert DiskCostModel().plan_cost(order, graph) > 0


@given(join_graphs(), st.sampled_from(list(AugmentationCriterion)))
@settings(max_examples=60, deadline=None)
def test_augmentation_orders_always_valid(graph, criterion):
    for first in range(graph.n_relations):
        order = augment_order(graph, first, criterion)
        assert is_valid_order(order, graph)
        assert order[0] == first


@given(join_graphs(min_relations=3))
@settings(max_examples=40, deadline=None)
def test_kbz_orders_always_valid(graph):
    for order in kbz_orders(graph):
        assert is_valid_order(order, graph)


@given(graphs_with_orders(), st.sampled_from([(2, 0), (2, 1), (3, 2)]))
@settings(max_examples=30, deadline=None)
def test_local_improvement_never_worse(graph_order, strategy):
    graph, order = graph_order
    cluster, overlap = strategy
    if cluster > graph.n_relations:
        return
    evaluator = Evaluator(graph, MainMemoryCostModel(), Budget(limit=1e9))
    start = Evaluation(order, evaluator.evaluate(order))
    improved = local_improve(start, evaluator, cluster, overlap, max_passes=3)
    assert improved.cost <= start.cost + 1e-9
    assert is_valid_order(improved.order, graph)


@given(graphs_with_orders(), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_swap_and_insert_are_involutive_enough(graph_order, seed):
    """swap(i,j) twice and insert round-trips restore the original."""
    _, order = graph_order
    rng = random.Random(seed)
    n = len(order)
    if n < 2:
        return
    i, j = rng.sample(range(n), 2)
    assert order.swap(i, j).swap(i, j) == order
    assert order.insert(i, j).insert(j, i) == order


# ----------------------------------------------------------------------
# Adversarial graph shapes: chain, star, clique, multi-component.
#
# The uniform random graphs above rarely produce the extreme shapes where
# prefix caching is most stressed (a chain shares almost everything, a
# star shares almost nothing, a clique maximizes predicate fan-in, and a
# disconnected graph exercises the cross-product segments).  These
# strategies pin those shapes down and re-assert the PR 2 parity
# guarantee — incremental costs bitwise equal to full plan_cost walks —
# plus validity of every intermediate order along a random move walk.
# ----------------------------------------------------------------------


def _build_graph(draw, n, edges):
    cardinalities = draw(
        st.lists(st.integers(2, 50_000), min_size=n, max_size=n)
    )
    relations = [Relation(f"R{i}", c) for i, c in enumerate(cardinalities)]
    predicates = []
    for a, b in sorted(edges):
        left_distinct = draw(st.integers(1, cardinalities[a]))
        right_distinct = draw(st.integers(1, cardinalities[b]))
        predicates.append(JoinPredicate(a, b, left_distinct, right_distinct))
    return JoinGraph(relations, predicates)


@st.composite
def chain_graphs(draw, min_relations=2, max_relations=9):
    n = draw(st.integers(min_relations, max_relations))
    return _build_graph(draw, n, [(i - 1, i) for i in range(1, n)])


@st.composite
def star_graphs(draw, min_relations=3, max_relations=9):
    n = draw(st.integers(min_relations, max_relations))
    return _build_graph(draw, n, [(0, i) for i in range(1, n)])


@st.composite
def clique_graphs(draw, min_relations=3, max_relations=6):
    n = draw(st.integers(min_relations, max_relations))
    edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
    return _build_graph(draw, n, edges)


@st.composite
def multi_component_graphs(draw, min_components=2, max_components=3):
    """Disconnected graphs: 2-3 chain/star components of 1-4 relations."""
    n_components = draw(st.integers(min_components, max_components))
    edges: list[tuple[int, int]] = []
    offset = 0
    for _ in range(n_components):
        size = draw(st.integers(1, 4))
        star = draw(st.booleans())
        for i in range(1, size):
            anchor = offset if star else offset + i - 1
            edges.append((anchor, offset + i))
        offset += size
    return _build_graph(draw, offset, edges)


def adversarial_graphs():
    return st.one_of(
        chain_graphs(), star_graphs(), clique_graphs(),
        multi_component_graphs(),
    )


@given(
    adversarial_graphs(),
    st.integers(0, 2**16),
    st.sampled_from(["memory", "disk"]),
)
@settings(max_examples=80, deadline=None)
def test_adversarial_incremental_matches_full_walk(graph, seed, model_name):
    """Prefix-cached candidate costs are bitwise equal to full walks, and
    every intermediate order of a random move walk stays valid — on the
    shapes the uniform generator almost never produces."""
    from repro.core.moves import NoValidMove
    from repro.cost.incremental import IncrementalEvaluator

    model = MainMemoryCostModel() if model_name == "memory" else DiskCostModel()
    rng = random.Random(seed)
    current = random_valid_order(graph, rng)
    engine = IncrementalEvaluator(graph, model)
    cost, _ = engine.rebase(current.positions)
    assert cost == model.plan_cost(current, graph)
    move_set = MoveSet()
    for _ in range(6):
        try:
            move, neighbor = move_set.random_valid_move(current, graph, rng)
        except NoValidMove:
            break
        assert is_valid_order(neighbor, graph)
        candidate_cost, _ = engine.evaluate(
            neighbor.positions, None, move.first_changed
        )
        assert candidate_cost == model.plan_cost(neighbor, graph)
        engine.commit(neighbor.positions)
        current = neighbor


@given(adversarial_graphs(), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_adversarial_bounded_walks_sound(graph, seed):
    """An aborted (bounded) evaluation means the true cost exceeds the
    bound; an unaborted one is bitwise equal to the full walk."""
    from repro.cost.incremental import IncrementalEvaluator

    model = MainMemoryCostModel()
    rng = random.Random(seed)
    anchor = random_valid_order(graph, rng)
    engine = IncrementalEvaluator(graph, model)
    anchor_cost, _ = engine.rebase(anchor.positions)
    candidate = random_valid_order(graph, rng)
    full = model.plan_cost(candidate, graph)
    bounded, _ = engine.evaluate(candidate.positions, anchor_cost)
    if bounded is None:
        assert full > anchor_cost
    else:
        assert bounded == full


@given(adversarial_graphs(), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_adversarial_random_orders_valid(graph, seed):
    order = random_valid_order(graph, random.Random(seed))
    assert is_valid_order(order, graph)
    sizes = prefix_cardinalities(order, graph)
    assert len(sizes) == graph.n_relations
    assert all(size >= 1.0 for size in sizes)
