"""Property-based tests (hypothesis) on the core invariants.

Random small join graphs are generated as hypothesis strategies; the
invariants cover validity closure of the move set, estimator sanity,
heuristic output validity, and the never-worse guarantee of local
improvement.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.core.augmentation import AugmentationCriterion, augment_order
from repro.core.budget import Budget
from repro.core.kbz import kbz_orders
from repro.core.local_improvement import local_improve
from repro.core.moves import MoveSet
from repro.core.state import Evaluation, Evaluator
from repro.cost.cardinality import prefix_cardinalities
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order, random_valid_order


@st.composite
def join_graphs(draw, min_relations=2, max_relations=8):
    """A random connected join graph with plausible statistics."""
    n = draw(st.integers(min_relations, max_relations))
    cardinalities = draw(
        st.lists(st.integers(2, 50_000), min_size=n, max_size=n)
    )
    relations = [Relation(f"R{i}", c) for i, c in enumerate(cardinalities)]
    edges: set[tuple[int, int]] = set()
    for i in range(1, n):
        partner = draw(st.integers(0, i - 1))
        edges.add((partner, i))
    n_extra = draw(st.integers(0, max(0, n - 2)))
    for _ in range(n_extra):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    predicates = []
    for a, b in sorted(edges):
        left_distinct = draw(st.integers(1, cardinalities[a]))
        right_distinct = draw(st.integers(1, cardinalities[b]))
        predicates.append(JoinPredicate(a, b, left_distinct, right_distinct))
    return JoinGraph(relations, predicates)


@st.composite
def graphs_with_orders(draw):
    graph = draw(join_graphs())
    seed = draw(st.integers(0, 2**16))
    order = random_valid_order(graph, random.Random(seed))
    return graph, order


@given(graphs_with_orders())
@settings(max_examples=60, deadline=None)
def test_random_valid_order_is_valid(graph_order):
    graph, order = graph_order
    assert is_valid_order(order, graph)


@given(graphs_with_orders(), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_moves_preserve_validity(graph_order, seed):
    graph, order = graph_order
    move_set = MoveSet()
    rng = random.Random(seed)
    for _ in range(5):
        order = move_set.random_neighbor(order, graph, rng)
        assert is_valid_order(order, graph)


@given(graphs_with_orders())
@settings(max_examples=60, deadline=None)
def test_prefix_cardinalities_positive_and_complete(graph_order):
    graph, order = graph_order
    sizes = prefix_cardinalities(order, graph)
    assert len(sizes) == graph.n_relations
    assert all(size >= 1.0 for size in sizes)


@given(graphs_with_orders())
@settings(max_examples=60, deadline=None)
def test_final_cardinality_near_order_independent_without_caps(graph_order):
    """With propagation the *final* size may differ across orders, but it
    is never below the static no-propagation estimate."""
    graph, order = graph_order
    from repro.cost.cardinality import combined_selectivity

    static = graph.cardinality(order[0])
    placed = [order[0]]
    for position in range(1, len(order)):
        inner = order[position]
        predicates = graph.edges_between(placed, inner)
        static = max(
            1.0,
            static * graph.cardinality(inner) * combined_selectivity(predicates),
        )
        placed.append(inner)
    propagated = prefix_cardinalities(order, graph)[-1]
    assert propagated >= static - 1e-6 * static - 1e-9


@given(graphs_with_orders())
@settings(max_examples=40, deadline=None)
def test_plan_costs_positive_under_both_models(graph_order):
    graph, order = graph_order
    assert MainMemoryCostModel().plan_cost(order, graph) > 0
    assert DiskCostModel().plan_cost(order, graph) > 0


@given(join_graphs(), st.sampled_from(list(AugmentationCriterion)))
@settings(max_examples=60, deadline=None)
def test_augmentation_orders_always_valid(graph, criterion):
    for first in range(graph.n_relations):
        order = augment_order(graph, first, criterion)
        assert is_valid_order(order, graph)
        assert order[0] == first


@given(join_graphs(min_relations=3))
@settings(max_examples=40, deadline=None)
def test_kbz_orders_always_valid(graph):
    for order in kbz_orders(graph):
        assert is_valid_order(order, graph)


@given(graphs_with_orders(), st.sampled_from([(2, 0), (2, 1), (3, 2)]))
@settings(max_examples=30, deadline=None)
def test_local_improvement_never_worse(graph_order, strategy):
    graph, order = graph_order
    cluster, overlap = strategy
    if cluster > graph.n_relations:
        return
    evaluator = Evaluator(graph, MainMemoryCostModel(), Budget(limit=1e9))
    start = Evaluation(order, evaluator.evaluate(order))
    improved = local_improve(start, evaluator, cluster, overlap, max_passes=3)
    assert improved.cost <= start.cost + 1e-9
    assert is_valid_order(improved.order, graph)


@given(graphs_with_orders(), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_swap_and_insert_are_involutive_enough(graph_order, seed):
    """swap(i,j) twice and insert round-trips restore the original."""
    _, order = graph_order
    rng = random.Random(seed)
    n = len(order)
    if n < 2:
        return
    i, j = rng.sample(range(n), 2)
    assert order.swap(i, j).swap(i, j) == order
    assert order.insert(i, j).insert(j, i) == order
