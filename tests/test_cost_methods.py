"""Tests for the additional join methods (nested loop, sort-merge,
multi-method) — the paper's §7 extension."""

import pytest

from repro.cost.memory import MainMemoryCostModel
from repro.cost.methods import (
    MultiMethodCostModel,
    NestedLoopCostModel,
    SortMergeCostModel,
)
from repro.plans.join_order import JoinOrder


class TestNestedLoop:
    def test_quadratic_in_operands(self):
        model = NestedLoopCostModel(compare_cost=1, output_cost=1)
        assert model.join_cost(10, 20, 5) == pytest.approx(10 * 20 + 5)

    def test_beats_hash_on_tiny_inputs(self):
        nested = NestedLoopCostModel()
        hash_model = MainMemoryCostModel()
        assert nested.join_cost(3, 3, 1) < hash_model.join_cost(3, 3, 1)

    def test_loses_to_hash_on_large_inputs(self):
        nested = NestedLoopCostModel()
        hash_model = MainMemoryCostModel()
        assert nested.join_cost(1e4, 1e4, 10) > hash_model.join_cost(1e4, 1e4, 10)


class TestSortMerge:
    def test_n_log_n_shape(self):
        model = SortMergeCostModel(sort_cost=1, merge_cost=0.001, output_cost=0.001)
        small = model.join_cost(100, 100, 1)
        double = model.join_cost(200, 200, 1)
        # Superlinear: doubling inputs more than doubles the cost.
        assert double > 2 * small

    def test_handles_tiny_sizes(self):
        model = SortMergeCostModel()
        assert model.join_cost(1, 1, 1) > 0

    def test_not_of_kbz_form(self):
        """cost(n1, n2) != n1 * g(n2): scaling the outer by x does not
        scale the cost by x (the paper's §4.2 caveat for sort-merge)."""
        model = SortMergeCostModel()
        base = model.join_cost(100, 50, 1)
        scaled = model.join_cost(1000, 50, 1)
        assert scaled != pytest.approx(10 * base, rel=0.01)


class TestMultiMethod:
    def test_picks_cheapest(self):
        model = MultiMethodCostModel()
        for sizes in ((3, 3, 1), (1e4, 1e4, 10), (50, 5000, 100)):
            expected = min(m.join_cost(*sizes) for m in model.methods)
            assert model.join_cost(*sizes) == expected

    def test_never_worse_than_hash_only(self, medium_query):
        multi = MultiMethodCostModel()
        hash_only = MainMemoryCostModel()
        order = _valid_order(medium_query.graph)
        assert multi.plan_cost(order, medium_query.graph) <= hash_only.plan_cost(
            order, medium_query.graph
        )

    def test_chosen_methods_per_join(self, chain):
        model = MultiMethodCostModel()
        order = JoinOrder([0, 1, 2, 3, 4])
        chosen = model.chosen_methods(order, chain)
        assert len(chosen) == chain.n_joins
        names = {m.name for m in model.methods}
        assert set(chosen) <= names

    def test_rejects_empty_method_set(self):
        with pytest.raises(ValueError):
            MultiMethodCostModel(methods=())

    def test_optimizer_accepts_multi_method(self, small_query):
        from repro.core.optimizer import optimize

        result = optimize(
            small_query,
            method="IAI",
            model=MultiMethodCostModel(),
            time_factor=1.0,
            units_per_n2=5,
        )
        assert result.cost > 0


def _valid_order(graph):
    import random

    from repro.plans.validity import random_valid_order

    return random_valid_order(graph, random.Random(1))
