"""Tests for the lower-bound early-stopping rule."""

import pytest

from repro.core.budget import Budget
from repro.core.optimizer import optimize
from repro.core.state import Evaluator, TargetReached
from repro.cost.bounds import lower_bound
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder


class TestEvaluatorTarget:
    def test_raises_when_target_met(self, chain):
        model = MainMemoryCostModel()
        order = JoinOrder([0, 1, 2, 3, 4])
        cost = model.plan_cost(order, chain)
        evaluator = Evaluator(
            chain, model, Budget(limit=1e9), target_cost=cost + 1
        )
        with pytest.raises(TargetReached):
            evaluator.evaluate(order)
        # The solution is still recorded before the exception.
        assert evaluator.best is not None
        assert evaluator.best.cost == pytest.approx(cost)

    def test_no_raise_above_target(self, chain):
        model = MainMemoryCostModel()
        order = JoinOrder([0, 1, 2, 3, 4])
        cost = model.plan_cost(order, chain)
        evaluator = Evaluator(
            chain, model, Budget(limit=1e9), target_cost=cost / 2
        )
        assert evaluator.evaluate(order) == pytest.approx(cost)

    def test_none_target_never_raises(self, chain):
        evaluator = Evaluator(chain, MainMemoryCostModel(), Budget(limit=1e9))
        evaluator.evaluate(JoinOrder([0, 1, 2, 3, 4]))


class TestOptimizeStopAtBound:
    def test_early_stop_spends_less(self, small_query):
        full = optimize(
            small_query, method="II", time_factor=9, units_per_n2=10, seed=2
        )
        stopped = optimize(
            small_query,
            method="II",
            time_factor=9,
            units_per_n2=10,
            seed=2,
            stop_at_bound=True,
            bound_tolerance=1e6,  # absurdly generous: stops immediately
        )
        assert stopped.units_spent <= full.units_spent
        assert stopped.n_evaluations <= 2

    def test_tight_bound_changes_nothing(self, small_query):
        """An unreachable target (tolerance 1.0 on a loose bound) leaves
        the run identical to the plain one."""
        bound = lower_bound(small_query.graph, MainMemoryCostModel())
        assert bound > 0
        plain = optimize(
            small_query, method="AGI", time_factor=1, units_per_n2=5, seed=2
        )
        guarded = optimize(
            small_query,
            method="AGI",
            time_factor=1,
            units_per_n2=5,
            seed=2,
            stop_at_bound=True,
            bound_tolerance=1.0,
        )
        if guarded.cost > bound:  # target never met
            assert guarded.cost == plain.cost
            assert guarded.n_evaluations == plain.n_evaluations
