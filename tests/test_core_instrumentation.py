"""Tests for SA chain instrumentation and params plumbing."""

import random

import pytest

from repro.core.annealing import AnnealingSchedule, ChainStats, simulated_annealing
from repro.core.budget import Budget
from repro.core.combinations import MethodParams
from repro.core.moves import MoveSet
from repro.core.optimizer import optimize
from repro.core.state import Evaluator
from repro.cost.memory import MainMemoryCostModel
from repro.plans.validity import random_valid_order


class TestChainObserver:
    def test_observer_sees_chains(self, medium_query):
        graph = medium_query.graph
        evaluator = Evaluator(graph, MainMemoryCostModel(), Budget(limit=20_000))
        rng = random.Random(0)
        chains: list[ChainStats] = []
        simulated_annealing(
            random_valid_order(graph, rng),
            evaluator,
            MoveSet(),
            rng,
            AnnealingSchedule(),
            observer=chains.append,
        )
        assert chains
        indexes = [stats.chain_index for stats in chains]
        assert indexes == list(range(len(chains)))

    def test_temperature_monotone_decreasing(self, medium_query):
        graph = medium_query.graph
        evaluator = Evaluator(graph, MainMemoryCostModel(), Budget(limit=20_000))
        rng = random.Random(1)
        chains: list[ChainStats] = []
        simulated_annealing(
            random_valid_order(graph, rng),
            evaluator,
            MoveSet(),
            rng,
            observer=chains.append,
        )
        temperatures = [stats.temperature for stats in chains]
        assert all(a >= b for a, b in zip(temperatures, temperatures[1:]))

    def test_best_cost_monotone_nonincreasing(self, medium_query):
        graph = medium_query.graph
        evaluator = Evaluator(graph, MainMemoryCostModel(), Budget(limit=20_000))
        rng = random.Random(2)
        chains: list[ChainStats] = []
        simulated_annealing(
            random_valid_order(graph, rng),
            evaluator,
            MoveSet(),
            rng,
            observer=chains.append,
        )
        bests = [stats.best_cost for stats in chains]
        assert all(a >= b for a, b in zip(bests, bests[1:]))

    def test_acceptance_ratio_in_unit_interval(self, medium_query):
        graph = medium_query.graph
        evaluator = Evaluator(graph, MainMemoryCostModel(), Budget(limit=20_000))
        rng = random.Random(3)
        chains: list[ChainStats] = []
        simulated_annealing(
            random_valid_order(graph, rng),
            evaluator,
            MoveSet(),
            rng,
            observer=chains.append,
        )
        assert all(0.0 <= stats.acceptance_ratio <= 1.0 for stats in chains)


class TestRegistryCompleteness:
    def test_baselines_and_two_phase_registered(self):
        from repro.core.combinations import available_method_names

        names = available_method_names()
        for name in ("RANDOM", "WALK", "2PO"):
            assert name in names


class TestParamsPlumbing:
    def test_custom_move_set_used(self, small_query):
        """optimize() threads MethodParams down to the strategies."""
        swap_only = MethodParams(move_set=MoveSet(swap_probability=1.0))
        insert_only = MethodParams(move_set=MoveSet(swap_probability=0.0))
        a = optimize(
            small_query, "II", time_factor=1, units_per_n2=5, seed=3, params=swap_only
        )
        b = optimize(
            small_query, "II", time_factor=1, units_per_n2=5, seed=3,
            params=insert_only,
        )
        # Same seed, different move sets: the searches diverge.
        assert a.trajectory != b.trajectory

    def test_custom_patience_used(self, small_query):
        impatient = MethodParams(patience=1)
        patient = MethodParams(patience=200)
        a = optimize(
            small_query, "II", time_factor=1, units_per_n2=5, seed=3, params=impatient
        )
        b = optimize(
            small_query, "II", time_factor=1, units_per_n2=5, seed=3, params=patient
        )
        assert a.trajectory != b.trajectory

    def test_custom_augmentation_criterion(self, small_query):
        from repro.core.augmentation import AugmentationCriterion

        by_cardinality = MethodParams(
            augmentation_criterion=AugmentationCriterion.MIN_CARDINALITY
        )
        a = optimize(
            small_query, "AGI", time_factor=0.5, units_per_n2=5, seed=3,
            params=by_cardinality,
        )
        b = optimize(small_query, "AGI", time_factor=0.5, units_per_n2=5, seed=3)
        assert a.trajectory != b.trajectory or a.cost == b.cost
