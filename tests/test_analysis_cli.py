"""End-to-end tests for the detlint CLI, config, suppressions, baseline.

These drive ``repro.analysis.cli.main`` against small throwaway projects
(a ``pyproject.toml`` plus a ``src/`` tree in tmp_path), so exit codes,
report formats, and the baseline workflow are all exercised exactly the
way CI invokes them.  The last section is the meta-check: the analyzer
must run clean over this repository's real ``src/`` tree.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main
from repro.analysis.config import (
    DEFAULT_TOOL_TABLE,
    ConfigError,
    DetlintConfig,
    config_from_table,
    load_config,
)
from repro.analysis.engine import Analyzer

REPO_ROOT = Path(__file__).resolve().parents[1]

PYPROJECT_MINIMAL = """\
[tool.detlint]
paths = ["src"]
baseline = "detlint-baseline.json"
"""

DIRTY_MODULE = """\
import random


def pick(items):
    return random.choice(items)
"""

CLEAN_MODULE = """\
def pick(items, rng):
    return rng.choice(items)
"""


@pytest.fixture()
def project(tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> Path:
    (tmp_path / "pyproject.toml").write_text(PYPROJECT_MINIMAL)
    (tmp_path / "src").mkdir()
    monkeypatch.chdir(tmp_path)
    return tmp_path


def write_module(project: Path, source: str, name: str = "mod.py") -> Path:
    target = project / "src" / name
    target.write_text(source)
    return target


# ---------------------------------------------------------------------------
# Exit codes and reports


def test_open_finding_exits_one(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    write_module(project, DIRTY_MODULE)
    assert main(["src"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "src/mod.py:5:" in out  # file:line output


def test_clean_tree_exits_zero(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    write_module(project, CLEAN_MODULE)
    assert main(["src"]) == 0
    assert "0 open finding(s)" in capsys.readouterr().out


def test_config_error_exits_two(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    (project / "pyproject.toml").write_text(
        "[tool.detlint]\nunknown_key = true\n"
    )
    assert main(["src"]) == 2
    assert "configuration error" in capsys.readouterr().err


def test_json_report_is_machine_readable(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    write_module(project, DIRTY_MODULE)
    assert main(["src", "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    (finding,) = [
        f for f in document["findings"] if f["status"] == "open"
    ]
    assert finding["rule"] == "DET001"
    assert finding["path"] == "src/mod.py"
    assert finding["line"] == 5
    assert finding["fingerprint"]


def test_list_rules_prints_all_codes(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "DET005",
        "EXC001",
        "EXC002",
        "OVF001",
        "PURE001",
        "RACE001",
        "ASYNC001",
        "SUP001",
        "SUP002",
    ):
        assert code in out


def test_sarif_report_through_main(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    write_module(project, DIRTY_MODULE)
    assert main(["src", "--format", "sarif"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    (result,) = run["results"]
    assert result["ruleId"] == "DET001"
    uri = result["locations"][0]["physicalLocation"]["artifactLocation"]
    assert uri["uri"] == "src/mod.py"


# ---------------------------------------------------------------------------
# Exit-code contract: docs/static-analysis.md is the source of truth


def documented_exit_codes() -> dict[int, str]:
    """Parse the exit-code table out of the user-facing docs."""
    doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text()
    table: dict[int, str] = {}
    for line in doc.splitlines():
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) == 2 and cells[0].strip("`").isdigit():
            table[int(cells[0].strip("`"))] = cells[1]
    return table


def test_docs_enumerate_exactly_the_three_exit_codes() -> None:
    table = documented_exit_codes()
    assert set(table) == {0, 1, 2}
    assert "open finding" in table[1]
    assert "configuration" in table[2]


def test_exit_codes_match_docs(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    """Drive main() into each documented state; codes must line up."""
    assert set(documented_exit_codes()) == {0, 1, 2}
    write_module(project, CLEAN_MODULE)
    assert main(["src"]) == 0  # clean
    write_module(project, DIRTY_MODULE)
    assert main(["src"]) == 1  # open finding
    assert main(["nonexistent-path"]) == 2  # usage error
    capsys.readouterr()


def test_exit_code_is_stable_on_the_cache_hit_path(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    """A warm (summary-cache) rerun must report byte-identical results.

    The project fixture leaves caching at its default (enabled), so the
    first ``main()`` populates ``.detlint-cache.json`` and the second
    run takes the cache-hit path end to end.
    """
    write_module(project, DIRTY_MODULE)
    assert main(["src", "--format", "json"]) == 1
    cold = capsys.readouterr().out
    assert (project / ".detlint-cache.json").is_file()
    assert main(["src", "--format", "json"]) == 1
    warm = capsys.readouterr().out
    assert warm == cold
    # And the clean tree stays exit 0 across cold and warm runs too.
    write_module(project, CLEAN_MODULE)
    assert main(["src"]) == 0
    assert main(["src"]) == 0


# ---------------------------------------------------------------------------
# Suppression round-trip


def test_suppression_with_reason_silences_finding(project: Path) -> None:
    write_module(
        project,
        textwrap.dedent(
            """\
            import random


            def pick(items):
                return random.choice(items)  # detlint: ignore[DET001] -- demo fixture
            """
        ),
    )
    assert main(["src"]) == 0


def test_suppression_without_reason_raises_sup001(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    write_module(
        project,
        textwrap.dedent(
            """\
            import random


            def pick(items):
                return random.choice(items)  # detlint: ignore[DET001]
            """
        ),
    )
    assert main(["src"]) == 1
    out = capsys.readouterr().out
    assert "SUP001" in out
    assert "DET001" in out  # the reasonless pragma does not suppress


def test_unused_suppression_raises_sup002(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    write_module(
        project,
        "x = 1  # detlint: ignore[DET001] -- nothing here to suppress\n",
    )
    assert main(["src"]) == 1
    assert "SUP002" in capsys.readouterr().out


def test_standalone_comment_suppresses_next_line(project: Path) -> None:
    write_module(
        project,
        textwrap.dedent(
            """\
            import random


            def pick(items):
                # detlint: ignore[DET001] -- fixture exercises forward binding
                return random.choice(items)
            """
        ),
    )
    assert main(["src"]) == 0


# ---------------------------------------------------------------------------
# Baseline round-trip


def test_write_baseline_then_rerun_is_clean(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    write_module(project, DIRTY_MODULE)
    assert main(["src", "--write-baseline"]) == 0
    capsys.readouterr()

    document = json.loads((project / "detlint-baseline.json").read_text())
    assert document["version"] == 1
    assert len(document["findings"]) == 1

    assert main(["src"]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out

    # --no-baseline reveals the grandfathered finding again.
    assert main(["src", "--no-baseline"]) == 1


def test_update_baseline_is_an_alias_for_write_baseline(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    write_module(project, DIRTY_MODULE)
    assert main(["src", "--update-baseline"]) == 0
    capsys.readouterr()
    written = (project / "detlint-baseline.json").read_text()
    assert main(["src", "--write-baseline"]) == 0
    capsys.readouterr()
    assert (project / "detlint-baseline.json").read_text() == written
    assert main(["src"]) == 0


def test_baseline_survives_line_shifts(project: Path) -> None:
    target = write_module(project, DIRTY_MODULE)
    assert main(["src", "--write-baseline"]) == 0
    # Push the finding three lines down; the fingerprint must still match.
    target.write_text("# a\n# b\n# c\n" + DIRTY_MODULE)
    assert main(["src"]) == 0


def test_fixed_code_makes_baseline_stale(
    project: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    target = write_module(project, DIRTY_MODULE)
    assert main(["src", "--write-baseline"]) == 0
    capsys.readouterr()
    target.write_text(CLEAN_MODULE)
    assert main(["src"]) == 1  # stale entries must be pruned
    assert "stale" in capsys.readouterr().out


def test_baseline_rejects_foreign_json(tmp_path: Path) -> None:
    bogus = tmp_path / "not-a-baseline.json"
    bogus.write_text('{"something": "else"}')
    with pytest.raises(ValueError):
        Baseline.load(str(bogus))


def test_missing_baseline_file_is_empty(tmp_path: Path) -> None:
    baseline = Baseline.load(str(tmp_path / "absent.json"))
    assert len(baseline) == 0


# ---------------------------------------------------------------------------
# Config


def test_builtin_config_matches_pyproject() -> None:
    """The no-TOML-parser fallback table must never drift from pyproject."""
    loaded = load_config(start=str(REPO_ROOT))
    if loaded.source != "pyproject":
        pytest.skip("no TOML parser available; builtin table is the config")
    builtin = config_from_table(
        DEFAULT_TOOL_TABLE, str(REPO_ROOT), "builtin"
    )
    assert loaded.paths == builtin.paths
    assert loaded.baseline == builtin.baseline
    assert loaded.exclude == builtin.exclude
    assert dict(loaded.rule_options) == dict(builtin.rule_options)


def test_include_restricts_and_allow_exempts() -> None:
    config = DetlintConfig(
        root="/nonexistent",
        baseline=None,
        rule_options={
            "DET003": {"include": ["src/repro/core"]},
            "DET002": {"allow": ["src/repro/core/budget.py"]},
        },
    )
    assert config.rule_applies("DET003", "src/repro/core/moves.py")
    assert not config.rule_applies("DET003", "src/repro/utils/graphs.py")
    assert not config.rule_applies("DET002", "src/repro/core/budget.py")
    assert config.rule_applies("DET002", "src/repro/core/moves.py")
    # A rule with no options applies everywhere.
    assert config.rule_applies("EXC001", "anything/at/all.py")


def test_vectorized_module_is_inside_the_guarded_perimeter() -> None:
    """The batch kernel must sit under every guard the scalar path has.

    Both the detlint includes and the mypy strict list are directory- /
    package-level (``src/repro/cost``, ``repro.cost.*``), so a new cost
    module is covered automatically — this pins that down against a
    future reorganisation moving the kernel outside the perimeter.
    """
    rel = "src/repro/cost/vectorized.py"
    assert (REPO_ROOT / rel).is_file()
    config = load_config(start=str(REPO_ROOT))
    for rule in ("DET003", "OVF001"):
        assert config.rule_applies(rule, rel), rule
    tomllib = pytest.importorskip("tomllib")
    table = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    overrides = table["tool"]["mypy"]["overrides"]
    strict_patterns = [
        pattern
        for override in overrides
        if override.get("disallow_untyped_defs")
        for pattern in override["module"]
    ]
    from fnmatch import fnmatch

    assert any(
        fnmatch("repro.cost.vectorized", pattern)
        for pattern in strict_patterns
    ), strict_patterns


def test_explicit_config_must_have_table(tmp_path: Path) -> None:
    empty = tmp_path / "pyproject.toml"
    empty.write_text("[project]\nname = 'x'\n")
    with pytest.raises(ConfigError):
        load_config(explicit_pyproject=str(empty))


# ---------------------------------------------------------------------------
# Meta-check: this repository's own source tree


def test_real_src_tree_is_clean() -> None:
    """The invariant CI gates on: zero open findings over the real src/."""
    config = load_config(start=str(REPO_ROOT))
    baseline = (
        Baseline.load(str(REPO_ROOT / config.baseline))
        if config.baseline
        else None
    )
    result = Analyzer(config, baseline=baseline).run()
    open_findings = [
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in result.unsuppressed
    ]
    assert not open_findings, "\n".join(open_findings)
    assert not result.stale_baseline
    assert result.files_checked > 50  # the whole src tree, not a subset


def test_real_src_suppressions_all_carry_reasons() -> None:
    config = load_config(start=str(REPO_ROOT))
    result = Analyzer(config, baseline=None).run()
    for finding in result.suppressed:
        assert finding.suppression_reason, (
            f"{finding.path}:{finding.line} suppressed without a reason"
        )
