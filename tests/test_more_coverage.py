"""Coverage for remaining corners: parameter pass-through, rendering of
real results, CLI experiment-all, and assorted accessors."""

import pytest

from repro.cost.disk import DiskCostModel
from repro.experiments.report import render_experiment
from repro.experiments.tables import table1
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark

TINY = dict(n_values=(10,), queries_per_n=2, units_per_n2=4, replicates=1, seed=0)


@pytest.mark.slow
class TestModelPassThrough:
    def test_table1_accepts_disk_model(self):
        result = table1(model=DiskCostModel(), **TINY)
        assert result.config.model.name == "disk"
        assert result.at("AUG3", 9.0) > 0

    def test_render_real_result(self):
        result = table1(**TINY)
        text = render_experiment("Mini table 1", result)
        assert "AUG1" in text and "9N^2" in text


@pytest.mark.slow
class TestCliExperimentAll:
    def test_runs_every_artifact(self, capsys):
        from repro.cli import main

        code = main(
            [
                "experiment",
                "all",
                "--n-values",
                "10",
                "--queries-per-n",
                "1",
                "--units-per-n2",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("table1", "Table 3", "figure4", "figure7"):
            assert marker in out


class TestAssortedAccessors:
    def test_spanning_tree_custom_start(self, cycle):
        edges = cycle.spanning_tree_edges(lambda p: p.selectivity, start=2)
        assert len(edges) == cycle.n_relations - 1

    def test_budget_can_afford_boundary(self):
        from repro.core.budget import Budget

        budget = Budget(limit=10)
        assert budget.can_afford(10)
        budget.charge(10)
        assert not budget.can_afford(1e-9)

    def test_outlier_counts_populated(self):
        from repro.experiments.runner import ExperimentConfig, run_experiment

        queries = generate_benchmark(
            DEFAULT_SPEC, n_values=(10,), queries_per_n=2, seed=0
        )
        config = ExperimentConfig(
            methods=("RANDOM",),
            time_factors=(0.5,),
            units_per_n2=4,
            replicates=1,
            reference_methods=("IAI",),
        )
        result = run_experiment(queries, config)
        assert set(result.outlier_counts) == {"RANDOM"}
        assert result.outlier_counts["RANDOM"][0.5] >= 0

    def test_method_params_frozen(self):
        from repro.core.combinations import MethodParams

        params = MethodParams()
        with pytest.raises(AttributeError):
            params.patience = 5

    def test_join_tree_explain_mentions_cross_product(self, two_components):
        from repro.plans.join_order import JoinOrder
        from repro.plans.join_tree import build_join_tree

        tree = build_join_tree(JoinOrder([0, 1, 2, 3, 4]), two_components)
        assert "cross product" in tree.explain()

    def test_dp_result_fields_consistent(self, chain):
        from repro.core.dynamic_programming import dp_optimal_order
        from repro.cost.memory import MainMemoryCostModel
        from repro.cost.static import StaticCostModel

        model = MainMemoryCostModel()
        result = dp_optimal_order(chain, model)
        static = StaticCostModel(model)
        assert result.cost == pytest.approx(
            static.plan_cost(result.order, chain)
        )

    def test_convergence_with_explicit_model(self):
        from repro.experiments.convergence import convergence_curves

        queries = generate_benchmark(
            DEFAULT_SPEC, n_values=(10,), queries_per_n=2, seed=4
        )
        curves = convergence_curves(
            queries,
            methods=("AGI",),
            max_factor=1.0,
            n_points=4,
            units_per_n2=4,
            model=DiskCostModel(),
            seed=4,
        )
        assert curves["AGI"].final() >= 1.0 - 1e-9
