"""Tests for simulated annealing."""

import random

import pytest

from repro.core.annealing import (
    AnnealingSchedule,
    initial_temperature,
    simulated_annealing,
)
from repro.core.budget import Budget
from repro.core.moves import MoveSet
from repro.core.state import Evaluator
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder
from repro.plans.validity import valid_orders

from tests.conftest import star_graph


def make_evaluator(graph, limit=1e6):
    return Evaluator(graph, MainMemoryCostModel(), Budget(limit=limit))


class TestSchedule:
    def test_defaults_valid(self):
        schedule = AnnealingSchedule()
        assert schedule.size_factor >= 1
        assert 0 < schedule.temp_factor < 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_factor": 0},
            {"temp_factor": 1.0},
            {"temp_factor": 0.0},
            {"initial_acceptance": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            AnnealingSchedule(**kwargs)


class TestInitialTemperature:
    def test_positive(self, chain):
        evaluator = make_evaluator(chain)
        start = JoinOrder([0, 1, 2, 3, 4])
        start_cost = evaluator.evaluate(start)
        temperature = initial_temperature(
            start,
            start_cost,
            evaluator,
            MoveSet(),
            random.Random(0),
            AnnealingSchedule(),
        )
        assert temperature > 0

    def test_higher_acceptance_means_higher_temperature(self, chain):
        evaluator = make_evaluator(chain)
        start = JoinOrder([0, 1, 2, 3, 4])
        start_cost = evaluator.evaluate(start)
        low = initial_temperature(
            start, start_cost, evaluator, MoveSet(), random.Random(0),
            AnnealingSchedule(initial_acceptance=0.2),
        )
        high = initial_temperature(
            start, start_cost, evaluator, MoveSet(), random.Random(0),
            AnnealingSchedule(initial_acceptance=0.8),
        )
        assert high > low


class TestSimulatedAnnealing:
    def test_returns_best_visited(self, star):
        evaluator = make_evaluator(star, limit=50_000)
        result = simulated_annealing(
            JoinOrder([0, 1, 2, 3, 4]), evaluator, MoveSet(), random.Random(0)
        )
        assert result.cost == evaluator.best.cost

    def test_finds_optimum_on_tiny_graph(self):
        graph = star_graph([1000, 10, 20, 30])
        best = min(
            MainMemoryCostModel().plan_cost(order, graph)
            for order in valid_orders(graph)
        )
        evaluator = make_evaluator(graph, limit=200_000)
        result = simulated_annealing(
            JoinOrder([0, 1, 2, 3]), evaluator, MoveSet(), random.Random(2)
        )
        assert result.cost == pytest.approx(best)

    def test_budget_bounded(self, medium_query):
        evaluator = Evaluator(
            medium_query.graph, MainMemoryCostModel(), Budget(limit=400)
        )
        result = simulated_annealing(
            _some_valid_order(medium_query.graph),
            evaluator,
            MoveSet(),
            random.Random(0),
        )
        assert result is not None
        assert evaluator.budget.spent <= 400

    def test_freezes_eventually(self, star):
        """Terminates with a generous but finite budget."""
        evaluator = make_evaluator(star, limit=5e5)
        result = simulated_annealing(
            JoinOrder([0, 1, 2, 3, 4]),
            evaluator,
            MoveSet(),
            random.Random(7),
            AnnealingSchedule(size_factor=2, temp_factor=0.8),
        )
        assert not evaluator.budget.exhausted
        assert result.cost <= evaluator.trajectory[0][1]


def _some_valid_order(graph):
    from repro.plans.validity import random_valid_order

    return random_valid_order(graph, random.Random(9))
