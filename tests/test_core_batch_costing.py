"""Bit-identity of ``optimize(batch_costing=True)`` with the scalar paths.

Batched costing speculates runs of moves under the all-rejected
assumption, prices them through the vectorized kernel, and replays the
scalar bookkeeping move by move — restoring RNG snapshots on acceptance
so the observable random stream never diverges.  These tests hold the
whole stack to that promise: every search method, both cost models,
bound-pruned annealing, parallel restarts, disconnected graphs, traced
runs, and the no-numpy fallback must produce *exactly* the scalar
result — order, cost, units spent, evaluation count, and trajectory.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.core.batching import BatchSizer, speculate_moves
from repro.core.budget import Budget
from repro.core.combinations import MethodParams, compare_methods
from repro.core.moves import MoveSet
from repro.core.optimizer import optimize
from repro.core.state import BatchEvaluator, Evaluator
from repro.cost import vectorized
from repro.cost.cardinality import CostOverflowError
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.cost.static import StaticCostModel
from repro.obs import RecordingTracer
from repro.plans.validity import random_valid_order
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query

from .conftest import chain_graph, two_component_graph

METHODS = (
    "II", "SA", "SAA", "SAK", "IAI", "IKI", "IAL", "AGI", "KBI",
    "2PO", "RANDOM", "WALK",
)

MODELS = (MainMemoryCostModel(), DiskCostModel())


def run(query, method, *, seed=0, batch=False, **kwargs):
    return optimize(
        query,
        method=method,
        seed=seed,
        time_factor=2.0,
        batch_costing=batch,
        **kwargs,
    )


def assert_same_result(a, b):
    assert a.order == b.order
    assert a.cost == b.cost
    assert a.units_spent == b.units_spent
    assert a.n_evaluations == b.n_evaluations
    assert a.trajectory == b.trajectory


# ---------------------------------------------------------------------------
# Method sweep: batch ≡ incremental-scalar ≡ full-scalar


@pytest.mark.parametrize("method", METHODS)
def test_batch_matches_scalar_all_methods(method):
    query = generate_query(DEFAULT_SPEC, n_joins=9, seed=21)
    scalar = run(query, method)
    batched = run(query, method, batch=True)
    full = run(query, method, incremental=False)
    assert_same_result(scalar, batched)
    assert_same_result(scalar, full)


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
@pytest.mark.parametrize("method", ("II", "SA", "IAL", "RANDOM"))
def test_batch_matches_scalar_both_models(method, model):
    query = generate_query(DEFAULT_SPEC, n_joins=12, seed=4)
    assert_same_result(
        run(query, method, model=model),
        run(query, method, model=model, batch=True),
    )


@pytest.mark.parametrize("seed", (1, 7))
@pytest.mark.parametrize("method", ("II", "SA", "2PO"))
def test_batch_matches_scalar_across_seeds(method, seed):
    query = generate_query(DEFAULT_SPEC, n_joins=8, seed=33)
    assert_same_result(
        run(query, method, seed=seed),
        run(query, method, seed=seed, batch=True),
    )


@pytest.mark.parametrize("method", ("SA", "SAA", "2PO"))
def test_batch_matches_scalar_with_bound_pruning(method):
    query = generate_query(DEFAULT_SPEC, n_joins=10, seed=5)
    params = MethodParams(sa_bound_pruning=True)
    assert_same_result(
        run(query, method, params=params),
        run(query, method, params=params, batch=True),
    )


def test_batch_matches_scalar_with_early_stop():
    query = generate_query(DEFAULT_SPEC, n_joins=10, seed=9)
    assert_same_result(
        run(query, "II", stop_at_bound=True),
        run(query, "II", stop_at_bound=True, batch=True),
    )


def test_batch_matches_scalar_on_disconnected_graph():
    graph = two_component_graph()
    for method in ("II", "SA"):
        assert_same_result(
            run(graph, method),
            run(graph, method, batch=True),
        )


def test_batch_matches_scalar_with_restarts_and_workers():
    query = generate_query(DEFAULT_SPEC, n_joins=9, seed=2)
    serial = run(query, "II", restarts=3, workers=1)
    batched = run(query, "II", restarts=3, workers=1, batch=True)
    threaded = run(query, "II", restarts=3, workers=2, batch=True)
    assert_same_result(serial, batched)
    assert_same_result(serial, threaded)


def test_compare_methods_batch_parity():
    query = generate_query(DEFAULT_SPEC, n_joins=8, seed=6)
    scalar = compare_methods(query, methods=("II", "SA"), seed=1)
    batched = compare_methods(
        query, methods=("II", "SA"), seed=1, batch_costing=True
    )
    for name in ("II", "SA"):
        assert_same_result(scalar[name], batched[name])


# ---------------------------------------------------------------------------
# Mode interactions


def test_batch_with_per_join_accounting_is_rejected():
    query = generate_query(DEFAULT_SPEC, n_joins=6, seed=0)
    with pytest.raises(ValueError, match="per-join"):
        optimize(query, batch_costing=True, budget_accounting="per-join")


def test_unsupported_model_falls_back_to_scalar_evaluator():
    # StaticCostModel overrides plan_cost: BatchEvaluator.supports is
    # False, so batch_costing silently uses the base evaluator — results
    # must still match the plain scalar run exactly.
    query = generate_query(DEFAULT_SPEC, n_joins=8, seed=3)
    model = StaticCostModel(MainMemoryCostModel())
    assert not BatchEvaluator.supports(model)
    assert_same_result(
        run(query, "II", model=model),
        run(query, "II", model=model, batch=True),
    )


def test_batch_without_numpy_matches_numpy(monkeypatch):
    query = generate_query(DEFAULT_SPEC, n_joins=8, seed=13)
    fast = run(query, "SA", batch=True)
    monkeypatch.setattr(vectorized, "numpy", None)
    monkeypatch.setattr(vectorized, "HAVE_NUMPY", False)
    slow = run(query, "SA", batch=True)
    assert_same_result(fast, slow)


# ---------------------------------------------------------------------------
# Tracing: batched runs stay trace-invariant and feed the batch counters


@pytest.mark.parametrize("method", ("II", "SA", "RANDOM"))
def test_traced_batched_run_matches_untraced(method):
    query = generate_query(DEFAULT_SPEC, n_joins=9, seed=8)
    untraced = run(query, method, batch=True)
    tracer = RecordingTracer()
    traced = run(query, method, batch=True, trace=tracer)
    assert_same_result(untraced, traced)
    metrics = tracer.metrics
    kernel = metrics.counters.get("batch_kernel_invocations")
    assert kernel is not None and kernel > 0
    sizes = metrics.histograms.get("batch_size")
    assert sizes is not None and sizes.count == kernel
    assert sizes.total >= sizes.count  # batches hold >= 1 candidate


def test_traced_batched_equals_traced_scalar_metrics():
    # The move/evaluation counters a batched run reports must equal the
    # scalar run's: the batch layer only changes *when* pricing happens.
    query = generate_query(DEFAULT_SPEC, n_joins=9, seed=15)
    scalar_tracer = RecordingTracer()
    batch_tracer = RecordingTracer()
    assert_same_result(
        run(query, "II", trace=scalar_tracer),
        run(query, "II", batch=True, trace=batch_tracer),
    )
    for counter in (
        "evaluations", "moves_accepted", "moves_rejected",
        "moves_pruned", "restarts",
    ):
        assert scalar_tracer.metrics.counters.get(counter) == \
            batch_tracer.metrics.counters.get(counter), counter


# ---------------------------------------------------------------------------
# BatchEvaluator unit behaviour


def graph_and_budget():
    graph = generate_query(DEFAULT_SPEC, n_joins=7, seed=42).graph
    return graph, Budget.unlimited()


def test_price_batch_then_consume_matches_scalar_evaluator():
    graph, _ = graph_and_budget()
    model = MainMemoryCostModel()
    rng = random.Random(0)
    orders = [random_valid_order(graph, rng) for _ in range(16)]
    batch_ev = BatchEvaluator(graph, model, Budget.unlimited())
    scalar_ev = Evaluator(graph, model, Budget.unlimited())
    costs, saturated = batch_ev.price_batch([o.positions for o in orders])
    for order, cost, flag in zip(orders, costs, saturated):
        got = batch_ev.consume(order, cost, flag)
        want = scalar_ev.evaluate_candidate(order)
        assert got == want
    assert batch_ev.n_evaluations == scalar_ev.n_evaluations
    assert batch_ev.budget.spent == scalar_ev.budget.spent
    assert batch_ev.best.order == scalar_ev.best.order
    assert batch_ev.best.cost == scalar_ev.best.cost


def test_consume_redispatches_saturated_rows_to_the_scalar_oracle():
    relations = [Relation("a", 100), Relation("b", 50)]
    graph = JoinGraph(relations, [JoinPredicate(0, 1, 10.0, 5.0)])
    poisoned = list(graph.relations)
    import copy
    bad = copy.copy(poisoned[0])
    object.__setattr__(bad, "base_cardinality", math.inf)
    poisoned[0] = bad
    graph = JoinGraph(poisoned, list(graph.predicates), validate=False)
    evaluator = BatchEvaluator(graph, MainMemoryCostModel(), Budget.unlimited())
    order = random_valid_order(graph, random.Random(0))
    costs, saturated = evaluator.price_batch([order.positions])
    assert bool(saturated[0]) and math.isinf(float(costs[0]))
    with pytest.raises(CostOverflowError):
        evaluator.consume(order, float(costs[0]), bool(saturated[0]))
    assert evaluator.n_saturated == 1


def test_price_batch_is_side_effect_free():
    graph, budget = graph_and_budget()
    evaluator = BatchEvaluator(graph, MainMemoryCostModel(), budget)
    order = random_valid_order(graph, random.Random(1))
    evaluator.price_batch([order.positions] * 4)
    assert evaluator.budget.spent == 0.0
    assert evaluator.n_evaluations == 0
    assert evaluator.best is None
    assert evaluator.n_batches == 1


# ---------------------------------------------------------------------------
# Speculation primitives


def test_speculated_snapshots_replay_the_draw_stream():
    graph = chain_graph()
    move_set = MoveSet()
    order = random_valid_order(graph, random.Random(3))
    rng = random.Random(99)
    specs, exhausted = speculate_moves(order, graph, move_set, rng, 6)
    assert not exhausted and len(specs) == 6
    # Restoring the snapshot after spec[i] and redrawing must reproduce
    # spec[i+1] exactly: that is the all-rejected replay invariant.
    for i in range(len(specs) - 1):
        rng.setstate(specs[i].state_after_move)
        move, neighbor = move_set.random_valid_move(order, graph, rng)
        assert move == specs[i + 1].move
        assert neighbor == specs[i + 1].neighbor


def test_speculated_uniforms_follow_their_move_draw():
    graph = chain_graph()
    move_set = MoveSet()
    order = random_valid_order(graph, random.Random(3))
    rng = random.Random(7)
    specs, _ = speculate_moves(
        order, graph, move_set, rng, 4, draw_uniform=True
    )
    for spec in specs:
        assert spec.u is not None and 0.0 <= spec.u < 1.0
        assert spec.state_after_u is not None
        replay = random.Random()
        replay.setstate(spec.state_after_move)
        assert replay.random() == spec.u


def test_batch_sizer_growth_and_shrink():
    sizer = BatchSizer()
    assert sizer.size == 8
    sizer.grow()
    sizer.grow()
    assert sizer.size == 32
    for _ in range(10):
        sizer.grow()
    assert sizer.size == 128  # capped
    sizer.shrink(3)
    assert sizer.size == 6  # 2 * consumed
    sizer.shrink(1)
    assert sizer.size == 4  # floored at minimum
    sizer.shrink(1000)
    assert sizer.size == 128  # re-capped
    with pytest.raises(ValueError):
        BatchSizer(initial=2, minimum=4, maximum=128)
    with pytest.raises(ValueError):
        BatchSizer(initial=16, minimum=4, maximum=8)
