"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestMethodsCommand:
    def test_lists_methods(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "IAI" in out and "SA" in out and "AUG3" in out


class TestBenchmarksCommand:
    def test_lists_ten_specs(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 10
        assert "star" in out and "chain" in out


class TestOptimizeCommand:
    def test_runs_and_reports(self, capsys):
        code = main(
            ["optimize", "--joins", "10", "--time-factor", "1", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan cost" in out
        assert "IAI" in out

    def test_explain_prints_tree(self, capsys):
        main(
            [
                "optimize",
                "--joins",
                "8",
                "--time-factor",
                "1",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert "hash join" in out

    def test_disk_model(self, capsys):
        assert (
            main(
                [
                    "optimize",
                    "--joins",
                    "8",
                    "--time-factor",
                    "1",
                    "--model",
                    "disk",
                ]
            )
            == 0
        )

    def test_unknown_method_exits_with_usage_code(self, capsys):
        assert main(["optimize", "--joins", "8", "--method", "NOPE"]) == 2
        assert "unknown method" in capsys.readouterr().err


class TestEvaluationFlags:
    """--no-incremental / --budget-accounting (see docs/performance.md)."""

    BASE = ["optimize", "--joins", "10", "--time-factor", "1", "--seed", "3"]

    def test_no_incremental_is_bit_identical(self, capsys):
        assert main(self.BASE) == 0
        default = capsys.readouterr().out
        assert main(self.BASE + ["--no-incremental"]) == 0
        reference = capsys.readouterr().out
        assert default == reference

    def test_per_join_accounting_runs(self, capsys):
        code = main(self.BASE + ["--budget-accounting", "per-join"])
        assert code == 0
        assert "plan cost" in capsys.readouterr().out

    def test_unknown_accounting_rejected(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--budget-accounting", "per-query"])

    def test_compare_accepts_flags(self, capsys):
        code = main(
            [
                "compare",
                "--joins",
                "8",
                "--time-factor",
                "1",
                "--methods",
                "II",
                "--budget-accounting",
                "per-join",
            ]
        )
        assert code == 0
        assert "II" in capsys.readouterr().out


class TestCompareCommand:
    def test_league_table(self, capsys):
        code = main(
            [
                "compare",
                "--joins",
                "8",
                "--time-factor",
                "1",
                "--methods",
                "II",
                "AGI",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "II" in out and "AGI" in out and "scaled" in out

    def test_validates_method_names_before_running(self, capsys):
        assert main(["compare", "--joins", "8", "--methods", "II", "BOGUS"]) == 2
        assert "unknown method" in capsys.readouterr().err


class TestExperimentCommand:
    def test_table1_tiny(self, capsys):
        code = main(
            [
                "experiment",
                "table1",
                "--n-values",
                "10",
                "--queries-per-n",
                "1",
                "--units-per-n2",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AUG3" in out

    def test_table3_tiny(self, capsys):
        code = main(
            [
                "experiment",
                "table3",
                "--n-values",
                "10",
                "--queries-per-n",
                "1",
                "--units-per-n2",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Bench" in out and "IAI" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table9"])


class TestRobustnessCommand:
    TINY = [
        "robustness",
        "--queries",
        "2",
        "--joins",
        "6",
        "--trials",
        "1",
        "-q",
        "1",
        "5",
        "--time-factor",
        "1",
        "--seed",
        "7",
    ]

    def test_prints_regret_matrix(self, capsys):
        assert main(self.TINY) == 0
        out = capsys.readouterr().out
        assert "median regret" in out
        assert "SIMPLI_SQUARED" in out
        assert "worst regret observed" in out

    def test_json_report_is_byte_stable(self, capsys, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main([*self.TINY, "--json", str(first)]) == 0
        assert main([*self.TINY, "--json", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        assert b'"version":1' in first.read_bytes()

    def test_rejects_q_below_one(self, capsys):
        assert main(["robustness", "--queries", "2", "-q", "0.5"]) == 2
        assert "q" in capsys.readouterr().err

    def test_rejects_unknown_method(self, capsys):
        assert (
            main(["robustness", "--queries", "2", "--methods", "NOPE"]) == 2
        )
        assert "unknown method" in capsys.readouterr().err

    def test_feedback_flag(self, capsys):
        code = main(
            [
                "robustness",
                "--queries",
                "2",
                "--joins",
                "5",
                "--trials",
                "1",
                "-q",
                "2",
                "--time-factor",
                "1",
                "--seed",
                "3",
                "--feedback",
                "--feedback-max-rows",
                "120",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "feedback" in out
        assert "median regret" in out


class TestExactCommand:
    def test_reports_optimum(self, capsys):
        assert main(["exact", "--joins", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "optimal order" in out
        assert "subsets explored" in out

    def test_refuses_large_n(self, capsys):
        assert main(["exact", "--joins", "20", "--max-relations", "16"]) == 2
        assert "subsets" in capsys.readouterr().err

    def test_bnb_engine_reports_proof(self, capsys):
        code = main(
            ["exact", "--joins", "8", "--seed", "2", "--engine", "bnb"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimal cost" in out
        assert "proven" in out
        assert "nodes expanded" in out

    def test_bnb_cost_lower_bounds_dp_recost(self, capsys):
        """The B&B works in the propagating world the DP only re-prices."""
        import re

        main(["exact", "--joins", "8", "--seed", "2", "--engine", "bnb"])
        bnb_out = capsys.readouterr().out
        main(["exact", "--joins", "8", "--seed", "2"])
        dp_out = capsys.readouterr().out
        bnb_cost = float(
            re.search(r"optimal cost\s*:\s*([\d,.]+)", bnb_out)
            .group(1)
            .replace(",", "")
        )
        dp_recost = float(
            re.search(r"propagated cost\s*:\s*([\d,.]+)", dp_out)
            .group(1)
            .replace(",", "")
        )
        assert bnb_cost <= dp_recost + 1e-9


class TestGapCommand:
    TINY = [
        "gap",
        "--joins",
        "7",
        "--seed",
        "4",
        "--time-factor",
        "1",
        "--methods",
        "II",
        "AGI",
    ]

    def test_prints_gap_matrix(self, capsys):
        assert main(self.TINY) == 0
        out = capsys.readouterr().out
        assert "optimality gaps" in out
        assert "gap" in out
        assert "exact cost" in out
        assert "II" in out and "AGI" in out

    def test_gaps_at_least_one(self, capsys):
        import re

        assert main(self.TINY) == 0
        out = capsys.readouterr().out
        gaps = [
            float(match)
            for line in out.splitlines()
            if re.match(r"\s*(II|AGI)\b", line)
            for match in re.findall(r"\d+\.\d+", line)[:1]
        ]
        assert gaps
        assert all(gap >= 1.0 for gap in gaps)

    def test_json_byte_identical_across_workers(self, capsys, tmp_path):
        serial = tmp_path / "serial.json"
        fanned = tmp_path / "fanned.json"
        assert main([*self.TINY, "--json", str(serial)]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main([*self.TINY, "--workers", "3", "--json", str(fanned)]) == 0
        )
        fanned_out = capsys.readouterr().out
        assert serial.read_bytes() == fanned.read_bytes()
        assert serial_out == fanned_out

    def test_rejects_unknown_method(self, capsys):
        assert main(["gap", "--joins", "6", "--methods", "NOPE"]) == 2
        assert "unknown method" in capsys.readouterr().err


class TestCompareGapFlag:
    BASE = [
        "compare",
        "--joins",
        "7",
        "--seed",
        "4",
        "--time-factor",
        "1",
        "--methods",
        "II",
        "AGI",
    ]

    def test_gap_adds_columns_and_anchor(self, capsys):
        assert main([*self.BASE, "--gap"]) == 0
        out = capsys.readouterr().out
        assert "gap" in out
        assert "exact anchor" in out

    def test_plain_output_unchanged_without_gap(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "gap" not in out
        assert "exact anchor" not in out


class TestLandscapeCommand:
    def test_reports_distribution(self, capsys):
        assert main(["landscape", "--joins", "10", "--samples", "50"]) == 0
        out = capsys.readouterr().out
        assert "spread" in out
        assert "within 2x" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestExitCodes:
    """The documented exit-code contract: 0 ok, 2 usage, 3 degraded, 4 no plan."""

    def test_clean_resilient_run_exits_zero(self, capsys):
        code = main(
            [
                "optimize",
                "--joins",
                "8",
                "--time-factor",
                "1",
                "--resilient",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "degraded" not in captured.out
        assert captured.err == ""

    def test_degraded_run_exits_three_with_failure_log(self, capsys):
        # A budget too small for even one evaluation forces the chain all
        # the way down to the deterministic spanning order.
        code = main(
            [
                "optimize",
                "--joins",
                "8",
                "--time-factor",
                "0.0001",
                "--resilient",
            ]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert "degraded" in captured.out
        assert "SPANNING" in captured.out
        assert "failure(s) during optimization" in captured.err
        assert "fallback" in captured.err

    def test_non_resilient_tiny_budget_still_raises(self):
        from repro.core.budget import BudgetExhausted

        with pytest.raises(BudgetExhausted):
            main(["optimize", "--joins", "8", "--time-factor", "0.0001"])

    def test_no_valid_plan_exits_four(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.robustness.resilience import FailureLog, NoValidPlanError

        def explode(*args, **kwargs):
            raise NoValidPlanError("nothing verifies", FailureLog())

        monkeypatch.setattr(cli, "optimize", explode)
        code = main(
            ["optimize", "--joins", "8", "--time-factor", "1", "--resilient"]
        )
        assert code == 4
        assert "nothing verifies" in capsys.readouterr().err

    def test_max_retries_flag_is_accepted(self, capsys):
        code = main(
            [
                "optimize",
                "--joins",
                "8",
                "--time-factor",
                "1",
                "--resilient",
                "--max-retries",
                "0",
            ]
        )
        assert code == 0

    def test_sql_usage_error_exits_two(self, tmp_path, capsys):
        catalog = tmp_path / "catalog.json"
        catalog.write_text('{"tables": {"t": {"cardinality": 100}}}')
        code = main(
            ["sql", "SELECT FROM WHERE", "--catalog", str(catalog)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_sql_invalid_stats_exit_two(self, tmp_path, capsys):
        # distinct > cardinality is rejected at catalog load time
        catalog = tmp_path / "catalog.json"
        catalog.write_text(
            '{"tables": {"t": {"cardinality": 10,'
            ' "columns": {"c": {"distinct": 100}}}}}'
        )
        code = main(["sql", "SELECT * FROM t", "--catalog", str(catalog)])
        assert code == 2
        assert "distinct" in capsys.readouterr().err

    def test_sql_resilient_flag(self, tmp_path, capsys):
        catalog = tmp_path / "catalog.json"
        catalog.write_text(
            '{"tables": {'
            '"a": {"cardinality": 1000, "columns": {"x": {"distinct": 100}}},'
            '"b": {"cardinality": 2000, "columns": {"x": {"distinct": 200}}}'
            "}}"
        )
        code = main(
            [
                "sql",
                "SELECT * FROM a, b WHERE a.x = b.x",
                "--catalog",
                str(catalog),
                "--resilient",
            ]
        )
        assert code == 0
        assert "plan cost" in capsys.readouterr().out
