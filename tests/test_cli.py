"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestMethodsCommand:
    def test_lists_methods(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "IAI" in out and "SA" in out and "AUG3" in out


class TestBenchmarksCommand:
    def test_lists_ten_specs(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 10
        assert "star" in out and "chain" in out


class TestOptimizeCommand:
    def test_runs_and_reports(self, capsys):
        code = main(
            ["optimize", "--joins", "10", "--time-factor", "1", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan cost" in out
        assert "IAI" in out

    def test_explain_prints_tree(self, capsys):
        main(
            [
                "optimize",
                "--joins",
                "8",
                "--time-factor",
                "1",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert "hash join" in out

    def test_disk_model(self, capsys):
        assert (
            main(
                [
                    "optimize",
                    "--joins",
                    "8",
                    "--time-factor",
                    "1",
                    "--model",
                    "disk",
                ]
            )
            == 0
        )

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            main(["optimize", "--joins", "8", "--method", "NOPE"])


class TestCompareCommand:
    def test_league_table(self, capsys):
        code = main(
            [
                "compare",
                "--joins",
                "8",
                "--time-factor",
                "1",
                "--methods",
                "II",
                "AGI",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "II" in out and "AGI" in out and "scaled" in out

    def test_validates_method_names_before_running(self):
        with pytest.raises(ValueError, match="unknown method"):
            main(["compare", "--joins", "8", "--methods", "II", "BOGUS"])


class TestExperimentCommand:
    def test_table1_tiny(self, capsys):
        code = main(
            [
                "experiment",
                "table1",
                "--n-values",
                "10",
                "--queries-per-n",
                "1",
                "--units-per-n2",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AUG3" in out

    def test_table3_tiny(self, capsys):
        code = main(
            [
                "experiment",
                "table3",
                "--n-values",
                "10",
                "--queries-per-n",
                "1",
                "--units-per-n2",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Bench" in out and "IAI" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table9"])


class TestExactCommand:
    def test_reports_optimum(self, capsys):
        assert main(["exact", "--joins", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "optimal order" in out
        assert "subsets explored" in out

    def test_refuses_large_n(self):
        with pytest.raises(ValueError, match="subsets"):
            main(["exact", "--joins", "20", "--max-relations", "16"])


class TestLandscapeCommand:
    def test_reports_distribution(self, capsys):
        assert main(["landscape", "--joins", "10", "--samples", "50"]) == 0
        out = capsys.readouterr().out
        assert "spread" in out
        assert "within 2x" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
