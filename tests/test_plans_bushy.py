"""Tests for bushy join trees."""

import random

import pytest

from repro.cost.memory import MainMemoryCostModel
from repro.cost.static import StaticCostModel
from repro.plans.bushy import (
    BushyTree,
    bushy_cost,
    is_valid_bushy,
    join,
    leaf,
    linear_to_bushy,
    random_bushy_tree,
    tree_sizes,
)
from repro.plans.join_order import JoinOrder

from tests.conftest import chain_graph, star_graph


class TestConstruction:
    def test_leaf(self):
        node = leaf(3)
        assert node.is_leaf
        assert node.relations == frozenset((3,))

    def test_join_node(self):
        tree = join(leaf(0), leaf(1))
        assert not tree.is_leaf
        assert tree.relations == frozenset((0, 1))

    def test_rejects_leaf_with_children(self):
        with pytest.raises(ValueError):
            BushyTree(relation=0, left=leaf(1), right=leaf(2))

    def test_rejects_half_internal(self):
        with pytest.raises(ValueError):
            BushyTree(left=leaf(1), right=None)

    def test_leaves_in_order(self):
        tree = join(join(leaf(2), leaf(0)), leaf(1))
        assert list(tree.leaves()) == [2, 0, 1]

    def test_depth(self):
        assert leaf(0).depth() == 0
        assert join(leaf(0), leaf(1)).depth() == 1
        assert join(join(leaf(0), leaf(1)), leaf(2)).depth() == 2

    def test_render(self, chain):
        tree = join(leaf(0), leaf(1))
        assert tree.render() == "(R0 |><| R1)"
        assert tree.render(chain) == "(R0 |><| R1)"


class TestLinearToBushy:
    def test_shape_is_left_deep(self):
        tree = linear_to_bushy(JoinOrder([2, 0, 1, 3]))
        assert tree.is_left_deep()
        assert list(tree.leaves()) == [2, 0, 1, 3]

    def test_balanced_tree_is_not_left_deep(self):
        tree = join(join(leaf(0), leaf(1)), join(leaf(2), leaf(3)))
        assert not tree.is_left_deep()


class TestValidity:
    def test_left_deep_of_valid_order_is_valid(self, chain):
        tree = linear_to_bushy(JoinOrder([0, 1, 2, 3, 4]))
        assert is_valid_bushy(tree, chain)

    def test_cross_product_detected(self, chain):
        # (R0 |><| R2) crosses the chain.
        tree = join(join(leaf(0), leaf(2)), join(leaf(1), join(leaf(3), leaf(4))))
        assert not is_valid_bushy(tree, chain)

    def test_balanced_valid_tree_on_chain(self, chain):
        # ((R0 R1) (R2... no: (R0 R1) joined with (R2 (R3 R4)) crosses via 1-2.
        tree = join(
            join(leaf(0), leaf(1)), join(leaf(2), join(leaf(3), leaf(4)))
        )
        assert is_valid_bushy(tree, chain)


class TestSizesAndCost:
    def test_left_deep_cost_matches_static_linear(self, chain):
        """A left-deep bushy tree costs exactly its linear equivalent
        under the static model."""
        order = JoinOrder([0, 1, 2, 3, 4])
        tree = linear_to_bushy(order)
        model = MainMemoryCostModel()
        static = StaticCostModel(model)
        assert bushy_cost(tree, chain, model) == pytest.approx(
            static.plan_cost(order, chain)
        )

    def test_tree_sizes_root_is_total(self, chain):
        tree = linear_to_bushy(JoinOrder([0, 1, 2, 3, 4]))
        sizes = tree_sizes(tree, chain)
        order = JoinOrder([0, 1, 2, 3, 4])
        model = StaticCostModel(MainMemoryCostModel())
        detail = model.plan_cost_detail(order, chain)
        assert sizes[tree] == pytest.approx(detail.prefix_sizes[-1])

    def test_leaf_size_is_cardinality(self, chain):
        node = leaf(2)
        sizes = tree_sizes(node, chain)
        assert sizes[node] == chain.cardinality(2)

    def test_commuted_children_same_size_different_cost(self, chain):
        model = MainMemoryCostModel()
        a = join(leaf(0), leaf(1))
        b = join(leaf(1), leaf(0))
        assert tree_sizes(a, chain)[a] == pytest.approx(tree_sizes(b, chain)[b])
        # Asymmetric cost model: outer/inner roles matter.
        assert bushy_cost(a, chain, model) != pytest.approx(
            bushy_cost(b, chain, model)
        )


class TestRandomBushyTree:
    @pytest.mark.parametrize("seed", range(10))
    def test_always_valid(self, cycle, seed):
        tree = random_bushy_tree(cycle, random.Random(seed))
        assert is_valid_bushy(tree, cycle)
        assert tree.relations == frozenset(range(cycle.n_relations))

    def test_produces_bushy_shapes(self, star):
        shapes = {
            random_bushy_tree(star, random.Random(seed)).is_left_deep()
            for seed in range(30)
        }
        assert False in shapes  # at least one genuinely bushy tree

    def test_rejects_disconnected(self, two_components):
        with pytest.raises(ValueError, match="connected"):
            random_bushy_tree(two_components, random.Random(0))

    def test_deterministic(self, chain):
        a = random_bushy_tree(chain, random.Random(4))
        b = random_bushy_tree(chain, random.Random(4))
        assert a == b
