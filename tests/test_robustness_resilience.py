"""Chaos tests: every fault class through ``optimize(..., resilient=True)``.

The acceptance bar: on a 20-join connected query, each injected failure
mode must still yield a plan that passes the verification gate, with
``degraded``/``failures`` accurately describing what happened — and a
seeded faulty run must be bit-for-bit reproducible.
"""

import math

import pytest

from repro.catalog.relation import Relation
from repro.catalog.join_graph import JoinGraph
from repro.core.budget import Budget, WallClockBudget
from repro.core.optimizer import optimize
from repro.cost.memory import MainMemoryCostModel
from repro.plans.validity import first_invalid_position
from repro.robustness import (
    CORRUPTION_KINDS,
    FaultSpec,
    FaultyCostModel,
    FaultyStrategy,
    NoValidPlanError,
    StallingClock,
    corrupt_catalog,
    deterministic_fallback_order,
    verify_plan,
)
from repro.robustness.estimates import ErrorModel
from repro.robustness.faults import COST_EXCEPTION, INF_COST, NAN_COST
from repro.robustness.resilience import FailureLog, resilient_optimize

MODEL = MainMemoryCostModel()


def assert_gate_passes(result, graph, model=None):
    report = verify_plan(result.order, result.cost, graph, model or MODEL)
    assert report.ok, report.violations


class TestCleanRuns:
    def test_resilient_matches_non_resilient_bit_for_bit(self, medium_query):
        plain = optimize(medium_query, method="IAI", seed=3, time_factor=1.0)
        resilient = optimize(
            medium_query, method="IAI", seed=3, time_factor=1.0, resilient=True
        )
        assert list(resilient.order) == list(plain.order)
        assert resilient.cost == plain.cost
        assert resilient.degraded is False
        assert resilient.failures == ()

    def test_single_relation_query(self):
        graph = JoinGraph([Relation("R0", 100)], [])
        result = optimize(graph, resilient=True)
        assert list(result.order) == [0]
        assert result.cost == 0.0
        assert not result.degraded

    def test_rejects_negative_max_retries(self, chain):
        with pytest.raises(ValueError, match="max_retries"):
            optimize(chain, resilient=True, max_retries=-1)


class TestCostFaults:
    """NaN/inf cost storms and cost-model exceptions on a 20-join query."""

    @pytest.mark.parametrize("kind", [NAN_COST, INF_COST])
    def test_cost_storm_yields_verified_plan(self, medium_query, kind):
        graph = medium_query.graph
        model = FaultyCostModel(
            MODEL, [FaultSpec(kind=kind, probability=0.05)], seed=5
        )
        result = optimize(
            graph, method="IAI", seed=3, time_factor=1.0,
            resilient=True, model=model,
        )
        assert model.n_injected > 0  # the storm actually happened
        assert_gate_passes(result, graph, model=MODEL)
        # NaN/inf plans were skipped by the evaluator; whether the run is
        # flagged degraded must agree with the recorded failures.
        assert result.degraded == bool(result.failures)

    def test_one_shot_nan_is_absorbed_cleanly(self, medium_query):
        graph = medium_query.graph
        model = FaultyCostModel(
            MODEL, [FaultSpec(kind=NAN_COST, at_evaluation=5)], seed=5
        )
        result = optimize(
            graph, method="IAI", seed=3, time_factor=1.0,
            resilient=True, model=model,
        )
        assert model.n_injected == 1
        assert_gate_passes(result, graph)
        # One poisoned plan out of hundreds never becomes the best: the
        # result is not degraded and the cost matches a clean recomputation.
        assert not result.degraded

    def test_exception_mid_search_keeps_best_so_far(self, medium_query):
        graph = medium_query.graph
        model = FaultyCostModel(
            MODEL, [FaultSpec(kind=COST_EXCEPTION, at_evaluation=900)], seed=5
        )
        result = optimize(
            graph, method="IAI", seed=3, time_factor=1.0,
            resilient=True, model=model,
        )
        assert_gate_passes(result, graph)
        assert result.degraded
        assert any(f.kind == "exception" for f in result.failures)
        assert any(f.stage == "attempt" for f in result.failures)

    def test_hopeless_model_raises_no_valid_plan(self, medium_query):
        # Every join cost NaN: no stage, not even the spanning order, can
        # produce a verifiable cost — the chain must say so, with the log.
        graph = medium_query.graph
        model = FaultyCostModel(
            MODEL, [FaultSpec(kind=NAN_COST, every=1)], seed=5
        )
        with pytest.raises(NoValidPlanError) as info:
            optimize(
                graph, method="IAI", seed=3, time_factor=1.0,
                resilient=True, model=model,
            )
        failures = info.value.failures
        stages = {record.stage for record in failures}
        assert "attempt" in stages
        assert any(stage.startswith("fallback-") for stage in stages)
        assert any(stage.startswith("last-resort") for stage in stages)


class TestStrategyFaults:
    def test_strategy_crash_recovers(self, medium_query):
        graph = medium_query.graph
        strategy = FaultyStrategy("IAI", fail_after=10)
        result = optimize(
            graph, method=strategy, seed=3, time_factor=1.0, resilient=True
        )
        assert_gate_passes(result, graph)
        assert result.degraded
        assert any(
            f.kind == "exception" and "crash" in f.detail
            for f in result.failures
        )

    def test_immediate_crash_falls_through_to_retries(self, medium_query):
        graph = medium_query.graph
        strategy = FaultyStrategy("IAI", fail_after=0)  # dies before any eval
        result = optimize(
            graph, method=strategy, seed=3, time_factor=1.0, resilient=True
        )
        assert_gate_passes(result, graph)
        assert result.degraded
        # Retries rerun the same (still crashing) wrapper, so recovery came
        # from the method-degradation fallbacks.
        assert result.method in ("AUG", "KBZ", "SPANNING")


class TestCorruptedCatalogs:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_every_corruption_kind_recovers(self, medium_query, kind):
        corrupted = corrupt_catalog(medium_query.graph, kind, seed=1)
        result = optimize(
            corrupted, method="IAI", seed=3, time_factor=1.0, resilient=True
        )
        assert result.degraded
        preflight = [f for f in result.failures if f.stage == "preflight"]
        assert len(preflight) == 1
        assert preflight[0].kind == "corrupt-catalog"
        # The plan verifies against the *sanitized* graph the result carries.
        assert_gate_passes(result, result.graph)
        assert result.graph.n_relations == corrupted.n_relations


class TestBudgetFaults:
    def test_budget_too_small_for_any_evaluation(self, medium_query):
        graph = medium_query.graph
        result = optimize(
            graph, method="IAI", seed=3, resilient=True,
            budget=Budget(limit=1.0),
        )
        assert_gate_passes(result, graph)
        assert result.degraded
        assert result.method == "SPANNING"
        assert all(f.kind == "no-plan" for f in result.failures)

    def test_wall_clock_stall_before_first_evaluation(self, medium_query):
        graph = medium_query.graph
        # The machine stalls 100s on the attempt's very first budget check;
        # the retry's carved allowance starts after the stall and succeeds.
        clock = StallingClock(tick=0.01, jumps={2: 100.0})
        budget = WallClockBudget(seconds=5.0, clock=clock)
        result = optimize(
            graph, method="IAI", seed=3, resilient=True, budget=budget
        )
        assert_gate_passes(result, graph)
        assert result.degraded
        assert result.failures[0].stage == "attempt"
        assert result.failures[0].kind == "no-plan"


class TestReproducibility:
    def test_seeded_fault_run_is_bit_for_bit_reproducible(self, medium_query):
        graph = medium_query.graph

        def run():
            model = FaultyCostModel(
                MainMemoryCostModel(),
                [FaultSpec(kind=NAN_COST, probability=0.05)],
                seed=5,
            )
            return optimize(
                graph, method="IAI", seed=3, time_factor=1.0,
                resilient=True, model=model,
            )

        a, b = run(), run()
        assert list(a.order) == list(b.order)
        assert a.cost == b.cost
        assert a.method == b.method
        assert a.failures == b.failures
        assert a.trajectory == b.trajectory

    def test_retry_seeds_rotate_deterministically(self, medium_query):
        graph = medium_query.graph
        result = optimize(
            graph, method="IAI", seed=3, resilient=True,
            budget=Budget(limit=1.0),
        )
        seeds = [f.seed for f in result.failures if f.stage.startswith("retry")]
        assert len(seeds) == 2
        assert len(set(seeds + [3])) == 3  # all distinct from the root seed


class TestDeterministicFallbackOrder:
    def test_valid_on_every_fixture_graph(
        self, chain, star, cycle, two_components
    ):
        for graph in (chain, star, cycle, two_components):
            order = deterministic_fallback_order(graph)
            assert sorted(order) == list(range(graph.n_relations))
            assert first_invalid_position(order, graph) is None

    def test_stable_across_calls(self, medium_query):
        graph = medium_query.graph
        assert list(deterministic_fallback_order(graph)) == list(
            deterministic_fallback_order(graph)
        )

    def test_starts_each_component_at_its_smallest_relation(self, two_components):
        order = list(deterministic_fallback_order(two_components))
        # Component {3, 2, 4} has the smallest relation (R3, 40 rows) and
        # the smallest minimum, so it comes first, starting at vertex 3.
        assert order[0] == 3


class TestDisconnectedResilience:
    def test_clean_disconnected_run(self, two_components):
        result = optimize(
            two_components, method="II", seed=1, time_factor=1.0,
            resilient=True,
        )
        assert_gate_passes(result, two_components)
        assert not result.degraded

    def test_disconnected_with_corrupt_component(self, two_components):
        corrupted = corrupt_catalog(two_components, "zero-cardinality", seed=1)
        result = optimize(
            corrupted, method="II", seed=1, time_factor=1.0, resilient=True
        )
        assert result.degraded
        assert any(f.kind == "corrupt-catalog" for f in result.failures)
        assert_gate_passes(result, result.graph)

    def test_disconnected_budget_shared_when_component_falls_back(
        self, two_components
    ):
        # A budget large enough for the small component but starving the
        # big one: both components still land in the final order exactly
        # once, and the overall spend never exceeds the limit.
        budget = Budget(limit=10.0)
        result = optimize(
            two_components, method="II", seed=1, resilient=True, budget=budget
        )
        assert_gate_passes(result, two_components)
        assert sorted(result.order) == list(range(5))
        assert budget.spent <= budget.limit


class TestFailureLog:
    def test_summary_formats_records(self, medium_query):
        result = optimize(
            medium_query.graph, method="IAI", seed=3, resilient=True,
            budget=Budget(limit=1.0),
        )
        log = FailureLog(records=list(result.failures))
        text = log.summary()
        assert "failure(s) during optimization" in text
        assert "[attempt]" in text
        assert len(text.splitlines()) == len(result.failures) + 1

    def test_empty_log(self):
        log = FailureLog()
        assert not log
        assert len(log) == 0
        assert log.summary() == "no failures recorded"


class TestEstimateErrorInterplay:
    """Chaos interplay: lying cardinality estimates *and* injected cost
    faults at the same time. The resilience chain must still return a
    plan that verifies against the catalog it optimized (the lying one),
    and the failure log must record what was absorbed."""

    def test_fault_storm_on_perturbed_catalog_yields_verified_plan(
        self, medium_query
    ):
        lying = ErrorModel(q=10.0, seed=11).perturb(medium_query.graph)
        model = FaultyCostModel(
            MODEL, [FaultSpec(kind=NAN_COST, probability=0.05)], seed=5
        )
        result = optimize(
            lying, method="IAI", seed=3, time_factor=1.0,
            resilient=True, model=model,
        )
        assert model.n_injected > 0
        assert_gate_passes(result, lying, model=MODEL)
        assert result.degraded == bool(result.failures)

    def test_exception_on_perturbed_catalog_populates_failure_log(
        self, medium_query
    ):
        lying = ErrorModel(q=5.0, seed=2).perturb(medium_query.graph)
        model = FaultyCostModel(
            MODEL, [FaultSpec(kind=COST_EXCEPTION, at_evaluation=50)], seed=5
        )
        result = optimize(
            lying, method="IAI", seed=3, time_factor=1.0,
            resilient=True, model=model,
        )
        assert_gate_passes(result, lying, model=MODEL)
        assert result.degraded
        log = FailureLog(records=list(result.failures))
        assert log  # populated, not empty
        assert any(record.stage == "attempt" for record in log.records)

    def test_perturbation_alone_never_degrades(self, medium_query):
        """Lying estimates are not faults: without injection the
        resilient path must report a clean, non-degraded run."""
        lying = ErrorModel(q=10.0, seed=7).perturb(medium_query.graph)
        result = optimize(
            lying, method="IAI", seed=3, time_factor=1.0, resilient=True
        )
        assert not result.degraded
        assert result.failures == ()
        assert_gate_passes(result, lying, model=MODEL)
