"""Tests for JSON catalog loading and the sql CLI command."""

import json

import pytest

from repro.cli import main
from repro.frontend.catalog import StatsCatalog

DOCUMENT = {
    "tables": {
        "orders": {
            "cardinality": 100_000,
            "columns": {
                "cid": {"distinct": 5_000},
                "flag": {"distinct": 2, "equality_selectivity": 0.7},
            },
        },
        "customers": {"cardinality": 5_000, "columns": {"id": {"distinct": 5_000}}},
    }
}


class TestFromDict:
    def test_tables_registered(self):
        catalog = StatsCatalog.from_dict(DOCUMENT)
        assert len(catalog) == 2
        assert catalog.table("orders").cardinality == 100_000

    def test_column_stats(self):
        catalog = StatsCatalog.from_dict(DOCUMENT)
        column = catalog.table("orders").column("cid")
        assert column.distinct == 5_000

    def test_equality_selectivity_override(self):
        catalog = StatsCatalog.from_dict(DOCUMENT)
        assert catalog.table("orders").column("flag").selectivity == 0.7

    def test_missing_tables_key(self):
        with pytest.raises(ValueError, match='"tables"'):
            StatsCatalog.from_dict({})

    def test_missing_cardinality(self):
        with pytest.raises(KeyError):
            StatsCatalog.from_dict({"tables": {"t": {}}})


class TestFromJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "catalog.json"
        path.write_text(json.dumps(DOCUMENT))
        catalog = StatsCatalog.from_json(path)
        assert catalog.table("customers").cardinality == 5_000


class TestSqlCommand:
    @pytest.fixture
    def catalog_path(self, tmp_path):
        path = tmp_path / "catalog.json"
        path.write_text(json.dumps(DOCUMENT))
        return str(path)

    def test_optimizes_sql(self, catalog_path, capsys):
        code = main(
            [
                "sql",
                "SELECT * FROM orders o, customers c WHERE o.cid = c.id",
                "--catalog",
                catalog_path,
                "--time-factor",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan cost" in out
        assert "joins: 1" in out

    def test_explain_flag(self, catalog_path, capsys):
        main(
            [
                "sql",
                "SELECT * FROM orders o, customers c WHERE o.cid = c.id",
                "--catalog",
                catalog_path,
                "--time-factor",
                "1",
                "--explain",
            ]
        )
        assert "hash join" in capsys.readouterr().out

    def test_parse_error_exits_with_usage_code(self, catalog_path, capsys):
        assert main(["sql", "NOT SQL AT ALL", "--catalog", catalog_path]) == 2
        assert "expected SELECT" in capsys.readouterr().err
