"""Tests for the benchmark parameter distributions."""

import random

import pytest

from repro.workloads.distributions import (
    Bucket,
    BucketDistribution,
    SELECTION_SELECTIVITIES,
    WorkloadSpec,
)


class TestBucket:
    def test_sample_within_range(self):
        bucket = Bucket(10, 20, 1.0)
        rng = random.Random(0)
        for _ in range(100):
            assert 10 <= bucket.sample(rng) < 20

    def test_point_mass(self):
        bucket = Bucket(1.0, 1.0, 0.5)
        assert bucket.sample(random.Random(0)) == 1.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            Bucket(20, 10, 1.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Bucket(0, 1, 1.5)


class TestBucketDistribution:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            BucketDistribution.from_triples((0, 1, 0.5), (1, 2, 0.4))

    def test_sampling_respects_weights(self):
        distribution = BucketDistribution.from_triples(
            (0, 1, 0.9), (100, 101, 0.1)
        )
        rng = random.Random(0)
        samples = [distribution.sample(rng) for _ in range(2000)]
        low_fraction = sum(1 for s in samples if s < 1) / len(samples)
        assert 0.85 < low_fraction < 0.95

    def test_uniform_constructor(self):
        distribution = BucketDistribution.uniform(5, 10)
        rng = random.Random(1)
        assert all(5 <= distribution.sample(rng) < 10 for _ in range(50))

    def test_point_mass_bucket_reachable(self):
        distribution = BucketDistribution.from_triples(
            (0.0, 0.5, 0.5), (1.0, 1.0, 0.5)
        )
        rng = random.Random(2)
        samples = {distribution.sample(rng) == 1.0 for _ in range(100)}
        assert samples == {True, False}


class TestWorkloadSpec:
    def test_default_matches_paper(self):
        spec = WorkloadSpec()
        assert spec.join_cutoff_probability == 0.01
        assert spec.max_selections == 2
        assert spec.graph_bias == "none"
        assert len(spec.selection_selectivities) == 15

    def test_selection_selectivities_encode_frequencies(self):
        assert SELECTION_SELECTIVITIES.count(0.34) == 5
        assert SELECTION_SELECTIVITIES.count(0.5) == 3

    def test_rejects_unknown_bias(self):
        with pytest.raises(ValueError, match="graph_bias"):
            WorkloadSpec(graph_bias="tree")

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            WorkloadSpec(join_cutoff_probability=2.0)

    def test_default_cardinality_distribution(self):
        spec = WorkloadSpec()
        rng = random.Random(3)
        samples = [spec.cardinality.sample(rng) for _ in range(500)]
        assert all(10 <= s < 10_000 for s in samples)
        mid = sum(1 for s in samples if 100 <= s < 1000) / len(samples)
        assert 0.5 < mid < 0.7
