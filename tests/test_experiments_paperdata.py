"""Tests for the embedded paper data and rank-agreement scoring."""

import pytest

from repro.experiments.paperdata import (
    TABLE1,
    TABLE2,
    TABLE3,
    ordering_agreement,
    spearman_rank_correlation,
)


class TestPaperData:
    def test_table1_shape(self):
        assert set(TABLE1) == {1.5, 3.0, 6.0, 9.0}
        for row in TABLE1.values():
            assert set(row) == {"AUG1", "AUG2", "AUG3", "AUG4", "AUG5"}

    def test_table1_criterion3_wins_every_row(self):
        for row in TABLE1.values():
            assert min(row, key=row.get) == "AUG3"

    def test_table2_criterion3_wins_every_row(self):
        for row in TABLE2.values():
            assert min(row, key=row.get) == "KBZ3"

    def test_table3_iai_wins_every_row(self):
        for row in TABLE3.values():
            assert min(row, key=row.get) == "IAI"

    def test_table3_has_nine_benchmarks(self):
        assert sorted(TABLE3) == list(range(1, 10))


class TestSpearman:
    def test_identical_orderings(self):
        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_reversed_orderings(self):
        assert spearman_rank_correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(
            -1.0
        )

    def test_ties_handled(self):
        rho = spearman_rank_correlation([1.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert -1.0 <= rho <= 1.0

    def test_constant_sample_gives_zero(self):
        assert spearman_rank_correlation([1.0, 1.0], [1.0, 2.0]) == 0.0

    def test_rejects_unpaired(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1.0], [1.0, 2.0])

    @pytest.mark.slow  # the scipy import alone dominates the quick loop
    def test_matches_scipy_when_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        a = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0]
        b = [2.0, 7.0, 1.0, 8.0, 2.5, 8.0]
        ours = spearman_rank_correlation(a, b)
        theirs = scipy_stats.spearmanr(a, b).statistic
        assert ours == pytest.approx(float(theirs))


class TestOrderingAgreement:
    def test_perfect_agreement(self):
        row = TABLE1[9.0]
        assert ordering_agreement(row, dict(row)) == pytest.approx(1.0)

    def test_only_shared_methods_compared(self):
        paper = {"A": 1.0, "B": 2.0, "C": 3.0}
        measured = {"B": 5.0, "C": 9.0, "D": 1.0}
        assert ordering_agreement(paper, measured) == pytest.approx(1.0)

    def test_needs_two_shared(self):
        with pytest.raises(ValueError):
            ordering_agreement({"A": 1.0}, {"A": 2.0})

    def test_measured_table1_agreement_positive(self):
        """The reproduction's Table 1 ordering correlates with the
        paper's (miniature run)."""
        from repro.experiments.tables import table1

        result = table1(
            n_values=(15,), queries_per_n=4, units_per_n2=8, replicates=1, seed=3
        )
        measured = {m: result.at(m, 9.0) for m in result.config.methods}
        rho = ordering_agreement(TABLE1[9.0], measured)
        assert rho > 0.0
