"""Smoke tests keeping the example scripts runnable.

Each quick example is executed in-process with its ``main()`` (stdout
captured); the slower ones are marked ``slow``.  A broken example is a
broken quickstart for a new user, so these are worth their runtime.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


@pytest.mark.slow
class TestQuickExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Plan cost" in out or "cost" in out
        assert "hash join" in out

    def test_validate_estimates(self, capsys):
        out = run_example("validate_estimates", capsys)
        assert "measured/estimated" in out
        assert "Final result" in out

    def test_custom_query(self, capsys):
        out = run_example("custom_query", capsys)
        assert "cheaper" in out

    def test_landscape_analysis(self, capsys):
        out = run_example("landscape_analysis", capsys)
        assert "local minima" in out
        assert "within 2x of best" in out

    def test_sql_frontend(self, capsys):
        out = run_example("sql_frontend", capsys)
        assert "Plan cost" in out

    def test_sa_diagnostics(self, capsys):
        out = run_example("sa_diagnostics", capsys)
        assert "temperature" in out
        assert "JAMS87" in out
