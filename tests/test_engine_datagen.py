"""Tests for the statistics-matching data generator."""

import pytest

from repro.catalog.builder import QueryBuilder
from repro.engine.datagen import generate_database, join_column_name

from tests.conftest import chain_graph


class TestJoinColumnName:
    def test_unique_per_relation_and_edge(self):
        names = {
            join_column_name(r, e) for r in range(3) for e in range(3)
        }
        assert len(names) == 9


class TestGenerateDatabase:
    def test_one_table_per_relation(self, chain):
        tables = generate_database(chain, seed=0)
        assert set(tables) == set(range(chain.n_relations))

    def test_row_counts_match_effective_cardinality(self):
        builder = QueryBuilder()
        a = builder.relation("A", 1000, selections=(0.1,))
        b = builder.relation("B", 50)
        builder.join(a, b, left_distinct=10, right_distinct=10)
        graph = builder.build().graph
        tables = generate_database(graph, seed=0)
        assert tables[a].n_rows == 100
        assert tables[b].n_rows == 50

    def test_join_columns_present_on_both_sides(self, chain):
        tables = generate_database(chain, seed=0)
        for index, predicate in enumerate(chain.predicates):
            assert tables[predicate.left].has_column(
                join_column_name(predicate.left, index)
            )
            assert tables[predicate.right].has_column(
                join_column_name(predicate.right, index)
            )

    def test_values_within_distinct_domain(self, chain):
        tables = generate_database(chain, seed=0)
        for index, predicate in enumerate(chain.predicates):
            for side in predicate.endpoints:
                column = tables[side].column(join_column_name(side, index))
                domain = int(round(predicate.distinct_values(side)))
                assert all(0 <= v < domain for v in column.values)

    def test_deterministic(self, chain):
        a = generate_database(chain, seed=5)
        b = generate_database(chain, seed=5)
        for index in a:
            for name in a[index].column_names:
                assert a[index].column(name).values == b[index].column(name).values

    def test_max_rows_caps_and_scales(self):
        builder = QueryBuilder()
        a = builder.relation("A", 10_000)
        b = builder.relation("B", 100)
        builder.join(a, b, left_distinct=5_000, right_distinct=50)
        graph = builder.build().graph
        tables = generate_database(graph, seed=0, max_rows=500)
        assert tables[a].n_rows == 500
        column = tables[a].column(join_column_name(a, 0))
        # Domain scaled by 500/10000: 5000 * 0.05 = 250.
        assert max(column.values) < 250

    def test_selectivity_approximately_realised(self):
        """Measured match rate tracks the declared join selectivity."""
        builder = QueryBuilder()
        a = builder.relation("A", 2000)
        b = builder.relation("B", 2000)
        builder.join(a, b, left_distinct=100, right_distinct=50)
        graph = builder.build().graph
        tables = generate_database(graph, seed=3)
        left = tables[a].column(join_column_name(a, 0)).values
        right = tables[b].column(join_column_name(b, 0)).values
        from collections import Counter

        counts = Counter(right)
        matches = sum(counts.get(v, 0) for v in left)
        expected = 2000 * 2000 / 100
        assert matches == pytest.approx(expected, rel=0.15)
