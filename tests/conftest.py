"""Shared fixtures: small hand-built join graphs and generated queries.

Also auto-applies the ``fast`` marker to every test not marked ``slow``,
so the two tiers are selectable symmetrically (``-m fast`` / ``-m slow``)
without hand-marking hundreds of quick tests.
"""

from __future__ import annotations

import pytest

from repro.catalog.join_graph import JoinGraph, Query


def pytest_collection_modifyitems(config, items):
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.fast)
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query


def make_relations(cardinalities: list[int]) -> list[Relation]:
    return [
        Relation(f"R{i}", cardinality)
        for i, cardinality in enumerate(cardinalities)
    ]


def chain_graph(cardinalities: list[int] | None = None) -> JoinGraph:
    """R0 - R1 - R2 - ... (a chain), keys on the smaller side."""
    if cardinalities is None:
        cardinalities = [100, 1000, 50, 400, 800]
    relations = make_relations(cardinalities)
    predicates = [
        JoinPredicate(
            i,
            i + 1,
            left_distinct=max(1, cardinalities[i] // 2),
            right_distinct=max(1, cardinalities[i + 1] // 2),
        )
        for i in range(len(cardinalities) - 1)
    ]
    return JoinGraph(relations, predicates)


def star_graph(cardinalities: list[int] | None = None) -> JoinGraph:
    """R0 joined with every other relation (a star centred on R0)."""
    if cardinalities is None:
        cardinalities = [1000, 100, 200, 50, 400]
    relations = make_relations(cardinalities)
    predicates = [
        JoinPredicate(
            0,
            i,
            left_distinct=max(1, cardinalities[0] // 4),
            right_distinct=max(1, cardinalities[i] // 2),
        )
        for i in range(1, len(cardinalities))
    ]
    return JoinGraph(relations, predicates)


def cycle_graph(cardinalities: list[int] | None = None) -> JoinGraph:
    """A chain plus an edge closing the cycle (cyclic join graph)."""
    if cardinalities is None:
        cardinalities = [100, 1000, 50, 400]
    graph = chain_graph(cardinalities)
    last = len(cardinalities) - 1
    predicates = list(graph.predicates)
    predicates.append(
        JoinPredicate(
            0,
            last,
            left_distinct=max(1, cardinalities[0] // 3),
            right_distinct=max(1, cardinalities[last] // 3),
        )
    )
    return JoinGraph(graph.relations, predicates)


def two_component_graph() -> JoinGraph:
    """Two disjoint chains: {R0-R1} and {R2-R3-R4}."""
    relations = make_relations([100, 200, 300, 40, 500])
    predicates = [
        JoinPredicate(0, 1, 50, 100),
        JoinPredicate(2, 3, 150, 20),
        JoinPredicate(3, 4, 20, 250),
    ]
    return JoinGraph(relations, predicates)


@pytest.fixture
def chain():
    return chain_graph()


@pytest.fixture
def star():
    return star_graph()


@pytest.fixture
def cycle():
    return cycle_graph()


@pytest.fixture
def two_components():
    return two_component_graph()


@pytest.fixture
def small_query() -> Query:
    """A generated 10-join query from the default benchmark."""
    return generate_query(DEFAULT_SPEC, n_joins=10, seed=42)


@pytest.fixture
def medium_query() -> Query:
    """A generated 20-join query from the default benchmark."""
    return generate_query(DEFAULT_SPEC, n_joins=20, seed=7)
