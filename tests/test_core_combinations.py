"""Tests for the combined strategies and the method registry."""

import pytest

from repro.core.budget import Budget
from repro.core.combinations import (
    PAPER_METHODS,
    TOP_FIVE_METHODS,
    MethodParams,
    available_method_names,
    make_strategy,
)
from repro.core.optimizer import optimize
from repro.core.state import Evaluator
from repro.cost.memory import MainMemoryCostModel
from repro.plans.validity import is_valid_order
from repro.utils.rng import derive_rng


class TestRegistry:
    def test_all_paper_methods_available(self):
        names = available_method_names()
        for method in PAPER_METHODS:
            assert method in names

    def test_top_five_subset_of_paper_methods(self):
        assert set(TOP_FIVE_METHODS) <= set(PAPER_METHODS)

    def test_pure_heuristics_available(self):
        names = available_method_names()
        for name in ("AUG1", "AUG5", "KBZ3", "KBZ5", "AUG", "KBZ"):
            assert name in names

    def test_case_insensitive(self):
        assert make_strategy("iai").name == "IAI"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            make_strategy("DOES-NOT-EXIST")

    def test_aug_alias_uses_criterion_3(self):
        assert make_strategy("AUG").name == "AUG3"

    def test_strategies_have_descriptions(self):
        for name in PAPER_METHODS:
            assert make_strategy(name).description


@pytest.mark.parametrize("method", PAPER_METHODS)
class TestEveryMethod:
    def test_produces_valid_plan(self, small_query, method):
        result = optimize(
            small_query, method=method, time_factor=1.0, units_per_n2=5, seed=2
        )
        assert is_valid_order(result.order, small_query.graph)
        assert result.cost > 0

    def test_respects_budget(self, small_query, method):
        n = small_query.n_joins
        limit = 1.0 * n * n * 5
        result = optimize(
            small_query, method=method, time_factor=1.0, units_per_n2=5, seed=2
        )
        assert result.units_spent <= limit + 1e-9

    def test_deterministic_given_seed(self, small_query, method):
        a = optimize(small_query, method=method, time_factor=0.5, units_per_n2=5, seed=9)
        b = optimize(small_query, method=method, time_factor=0.5, units_per_n2=5, seed=9)
        assert a.cost == b.cost
        assert a.order == b.order

    def test_seed_changes_search(self, small_query, method):
        """Different seeds explore differently (trajectories differ)."""
        a = optimize(small_query, method=method, time_factor=1.0, units_per_n2=5, seed=1)
        b = optimize(small_query, method=method, time_factor=1.0, units_per_n2=5, seed=2)
        # Heuristic-only phases are deterministic, so compare trajectories,
        # which include the stochastic II/SA phases for every method here.
        assert a.trajectory != b.trajectory or a.cost == b.cost


class TestMethodBehaviour:
    def test_more_time_never_hurts(self, small_query):
        short = optimize(small_query, "IAI", time_factor=0.5, units_per_n2=5, seed=4)
        long = optimize(small_query, "IAI", time_factor=5.0, units_per_n2=5, seed=4)
        assert long.cost <= short.cost

    def test_heuristic_methods_beat_worst_case(self, small_query):
        """AUG/KBZ states are far better than the worst valid plans."""
        aug = optimize(small_query, "AUG3", time_factor=9, units_per_n2=5, seed=0)
        sa = optimize(small_query, "SA", time_factor=9, units_per_n2=5, seed=0)
        assert aug.cost <= sa.cost * 10

    def test_iai_uses_augmentation_starts(self, small_query):
        """IAI's first start equals AUG's first state (same criterion)."""
        from repro.core.augmentation import augmentation_orders

        first_aug = next(augmentation_orders(small_query.graph))
        result = optimize(small_query, "IAI", time_factor=9, units_per_n2=5, seed=0)
        # The first trajectory entry corresponds to evaluating that state.
        model = MainMemoryCostModel()
        assert result.trajectory[0][1] == pytest.approx(
            model.plan_cost(first_aug, small_query.graph)
        )

    def test_pure_heuristic_stops_early(self, small_query):
        """AUG alone cannot use the whole budget (finite state set)."""
        result = optimize(small_query, "AUG3", time_factor=9, units_per_n2=30, seed=0)
        n = small_query.n_joins
        assert result.units_spent < 9 * n * n * 30

    def test_method_params_overrides(self):
        params = MethodParams()
        changed = params.with_overrides(patience=3)
        assert changed.patience == 3
        assert params.patience is None


class TestEvaluatorIntegration:
    def test_strategy_run_populates_evaluator(self, small_query):
        graph = small_query.graph
        evaluator = Evaluator(graph, MainMemoryCostModel(), Budget(limit=2000))
        strategy = make_strategy("AGI")
        strategy.run(evaluator, derive_rng(0, "t"), MethodParams())
        assert evaluator.best is not None
        assert evaluator.n_evaluations > 0
