"""Tests for the 2PO demonstration strategy and the wall-clock budget."""

import pytest

from repro.core.budget import Budget, BudgetExhausted, WallClockBudget
from repro.core.optimizer import optimize
from repro.plans.validity import is_valid_order


class TestTwoPhase:
    def test_registered(self):
        from repro.core.combinations import make_strategy

        strategy = make_strategy("2PO")
        assert strategy.name == "2PO"
        assert "SA" in strategy.description or "anneal" in strategy.description

    def test_produces_valid_plan(self, small_query):
        result = optimize(
            small_query, method="2PO", time_factor=2, units_per_n2=10, seed=1
        )
        assert is_valid_order(result.order, small_query.graph)

    def test_competitive_with_ii(self, small_query):
        two_phase = optimize(
            small_query, method="2PO", time_factor=5, units_per_n2=10, seed=2
        )
        ii = optimize(
            small_query, method="II", time_factor=5, units_per_n2=10, seed=2
        )
        assert two_phase.cost <= ii.cost * 1.5

    def test_deterministic(self, small_query):
        a = optimize(small_query, method="2PO", time_factor=2, units_per_n2=10, seed=5)
        b = optimize(small_query, method="2PO", time_factor=2, units_per_n2=10, seed=5)
        assert a.cost == b.cost and a.order == b.order

    def test_respects_budget(self, small_query):
        n = small_query.n_joins
        result = optimize(
            small_query, method="2PO", time_factor=2, units_per_n2=10, seed=1
        )
        assert result.units_spent <= 2 * n * n * 10 + 1e-9


class TestWallClockBudget:
    def test_exhausts_by_time(self):
        ticks = iter([0.0, 0.1, 0.2, 0.9, 1.5, 2.0])
        budget = WallClockBudget(seconds=1.0, clock=lambda: next(ticks))
        budget.charge(5)  # elapsed 0.1
        budget.charge(5)  # elapsed 0.2
        budget.charge(5)  # elapsed 0.9
        with pytest.raises(BudgetExhausted):
            budget.charge(5)  # elapsed 1.5
        assert budget.spent == 15

    def test_remaining_in_seconds(self):
        ticks = iter([0.0, 0.25])
        budget = WallClockBudget(seconds=1.0, clock=lambda: next(ticks))
        assert budget.remaining == pytest.approx(0.75)

    def test_rejects_nonpositive_seconds(self):
        with pytest.raises(ValueError):
            WallClockBudget(seconds=0)

    def test_optimize_with_wall_clock(self, small_query):
        budget = WallClockBudget(seconds=0.2)
        result = optimize(small_query, method="II", budget=budget, seed=1)
        assert result.cost > 0
        assert budget.elapsed >= 0.2 or result.n_evaluations > 0

    def test_is_a_budget(self):
        assert isinstance(WallClockBudget(seconds=1.0), Budget)
