"""Tests for the solution-space landscape analysis."""

import pytest

from repro.cost.memory import MainMemoryCostModel
from repro.experiments.landscape import (
    local_minima_census,
    sample_cost_distribution,
    summarize,
)
from repro.plans.validity import count_valid_orders, valid_orders

from tests.conftest import star_graph


class TestSampleCostDistribution:
    def test_sorted_and_sized(self, chain):
        costs = sample_cost_distribution(chain, MainMemoryCostModel(), 50, seed=1)
        assert len(costs) == 50
        assert costs == sorted(costs)

    def test_deterministic(self, chain):
        a = sample_cost_distribution(chain, MainMemoryCostModel(), 20, seed=2)
        b = sample_cost_distribution(chain, MainMemoryCostModel(), 20, seed=2)
        assert a == b

    def test_rejects_zero_samples(self, chain):
        with pytest.raises(ValueError):
            sample_cost_distribution(chain, MainMemoryCostModel(), 0)


class TestSummarize:
    def test_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 100.0])
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.mean == pytest.approx(26.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.fraction_within_2x == pytest.approx(0.5)
        assert summary.fraction_within_10x == pytest.approx(0.75)
        assert summary.spread == pytest.approx(100.0)

    def test_odd_median(self):
        assert summarize([3.0, 1.0, 2.0]).median == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestLocalMinimaCensus:
    def test_counts_consistent(self, star):
        census = local_minima_census(star, MainMemoryCostModel())
        assert census.n_valid_orders == count_valid_orders(star)
        assert 1 <= census.n_local_minima <= census.n_valid_orders
        assert len(census.minima_costs) == census.n_local_minima

    def test_global_minimum_is_a_local_minimum(self, star):
        census = local_minima_census(star, MainMemoryCostModel())
        assert census.minima_costs[0] == pytest.approx(census.global_minimum)

    def test_global_minimum_matches_enumeration(self, star):
        model = MainMemoryCostModel()
        best = min(model.plan_cost(order, star) for order in valid_orders(star))
        census = local_minima_census(star, model)
        assert census.global_minimum == pytest.approx(best)

    def test_deep_minima_bounds(self):
        graph = star_graph([500, 20, 60, 110])
        census = local_minima_census(graph, MainMemoryCostModel())
        assert 1 <= census.deep_minima(2.0) <= census.n_local_minima
        assert census.deep_minima(1e9) == census.n_local_minima

    def test_fraction_minima(self, star):
        census = local_minima_census(star, MainMemoryCostModel())
        assert 0 < census.fraction_minima <= 1
