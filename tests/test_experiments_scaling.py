"""Tests for the scaled-cost methodology."""

import math

import pytest

from repro.experiments.scaling import OUTLIER_CAP, coerce_outlier, mean, scale_costs


class TestCoerceOutlier:
    def test_below_cap_unchanged(self):
        assert coerce_outlier(3.7) == 3.7

    def test_at_cap_coerced(self):
        assert coerce_outlier(10.0) == 10.0

    def test_above_cap_coerced(self):
        assert coerce_outlier(100.0) == OUTLIER_CAP

    def test_infinity_coerced(self):
        assert coerce_outlier(math.inf) == OUTLIER_CAP

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            coerce_outlier(math.nan)

    def test_custom_cap(self):
        assert coerce_outlier(7.0, cap=5.0) == 5.0


class TestScaleCosts:
    def test_scales_by_best(self):
        scaled = scale_costs({"a": 100.0, "b": 200.0}, best=100.0)
        assert scaled == {"a": 1.0, "b": 2.0}

    def test_outliers_coerced(self):
        scaled = scale_costs({"a": 100.0, "b": 5000.0}, best=100.0)
        assert scaled["b"] == OUTLIER_CAP

    def test_missing_solution_becomes_cap(self):
        scaled = scale_costs({"a": math.inf}, best=1.0)
        assert scaled["a"] == OUTLIER_CAP

    def test_rejects_nonpositive_base(self):
        with pytest.raises(ValueError):
            scale_costs({"a": 1.0}, best=0.0)


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
