"""Tests for the optimization budget (the abstract clock)."""

import math

import pytest

from repro.core.budget import Budget, BudgetExhausted


class TestBudget:
    def test_charge_accumulates(self):
        budget = Budget(limit=10)
        budget.charge(3)
        budget.charge(4)
        assert budget.spent == 7
        assert budget.remaining == 3

    def test_charge_beyond_limit_raises(self):
        budget = Budget(limit=10)
        budget.charge(9)
        with pytest.raises(BudgetExhausted):
            budget.charge(2)

    def test_exhausting_charge_pins_spent_to_limit(self):
        budget = Budget(limit=10)
        with pytest.raises(BudgetExhausted):
            budget.charge(11)
        assert budget.spent == 10
        assert budget.exhausted

    def test_exact_limit_allowed(self):
        budget = Budget(limit=10)
        budget.charge(10)
        assert budget.exhausted
        assert budget.remaining == 0

    def test_can_afford(self):
        budget = Budget(limit=10)
        budget.charge(6)
        assert budget.can_afford(4)
        assert not budget.can_afford(5)

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            Budget(limit=0)

    def test_for_query_scales_with_n_squared(self):
        a = Budget.for_query(10, time_factor=1.0, units_per_n2=2.0)
        b = Budget.for_query(20, time_factor=1.0, units_per_n2=2.0)
        assert b.limit == pytest.approx(4 * a.limit)
        assert a.limit == pytest.approx(200.0)

    def test_for_query_scales_with_factor(self):
        a = Budget.for_query(10, time_factor=1.5)
        b = Budget.for_query(10, time_factor=3.0)
        assert b.limit == pytest.approx(2 * a.limit)

    def test_unlimited_never_exhausts(self):
        budget = Budget.unlimited()
        budget.charge(1e18)
        assert not budget.exhausted
        assert budget.remaining == math.inf
