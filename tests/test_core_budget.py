"""Tests for the optimization budget (the abstract clock)."""

import math

import pytest

from repro.core.budget import Budget, BudgetExhausted


class TestBudget:
    def test_charge_accumulates(self):
        budget = Budget(limit=10)
        budget.charge(3)
        budget.charge(4)
        assert budget.spent == 7
        assert budget.remaining == 3

    def test_charge_beyond_limit_raises(self):
        budget = Budget(limit=10)
        budget.charge(9)
        with pytest.raises(BudgetExhausted):
            budget.charge(2)

    def test_exhausting_charge_pins_spent_to_limit(self):
        budget = Budget(limit=10)
        with pytest.raises(BudgetExhausted):
            budget.charge(11)
        assert budget.spent == 10
        assert budget.exhausted

    def test_exact_limit_allowed(self):
        budget = Budget(limit=10)
        budget.charge(10)
        assert budget.exhausted
        assert budget.remaining == 0

    def test_can_afford(self):
        budget = Budget(limit=10)
        budget.charge(6)
        assert budget.can_afford(4)
        assert not budget.can_afford(5)

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            Budget(limit=0)

    def test_for_query_scales_with_n_squared(self):
        a = Budget.for_query(10, time_factor=1.0, units_per_n2=2.0)
        b = Budget.for_query(20, time_factor=1.0, units_per_n2=2.0)
        assert b.limit == pytest.approx(4 * a.limit)
        assert a.limit == pytest.approx(200.0)

    def test_for_query_scales_with_factor(self):
        a = Budget.for_query(10, time_factor=1.5)
        b = Budget.for_query(10, time_factor=3.0)
        assert b.limit == pytest.approx(2 * a.limit)

    def test_unlimited_never_exhausts(self):
        budget = Budget.unlimited()
        budget.charge(1e18)
        assert not budget.exhausted
        assert budget.remaining == math.inf


class TestBudgetEdgeCases:
    """Exact-at-limit semantics and the resilience carve."""

    def test_charge_landing_exactly_on_limit_succeeds(self):
        budget = Budget(limit=10)
        budget.charge(10)  # spent + units == limit is affordable
        assert budget.spent == 10
        assert budget.exhausted
        assert budget.remaining == 0

    def test_next_charge_after_exact_exhaustion_raises(self):
        budget = Budget(limit=10)
        budget.charge(10)
        with pytest.raises(BudgetExhausted):
            budget.charge(1e-9)
        assert budget.spent == 10  # pinned, not overshot

    def test_can_afford_at_exact_boundary(self):
        budget = Budget(limit=10)
        budget.charge(4)
        assert budget.can_afford(6)
        assert not budget.can_afford(6.0000001)

    def test_carve_is_a_fraction_of_the_original_limit(self):
        budget = Budget(limit=100)
        budget.charge(90)  # nearly drained
        carved = budget.carve(0.25)
        assert carved.limit == 25  # original limit, not remaining
        assert carved.spent == 0
        # Spending the carve does not touch the parent.
        carved.charge(10)
        assert budget.spent == 90

    def test_carve_has_a_floor_of_one_unit(self):
        assert Budget(limit=2).carve(0.1).limit == 1.0

    def test_carve_rejects_nonpositive_fraction(self):
        with pytest.raises(ValueError):
            Budget(limit=10).carve(0)


class TestWallClockBudgetWithStalls:
    """Wall-clock expiry driven by a deterministic stalling clock."""

    def test_stall_exhausts_budget_between_charges(self):
        from repro.core.budget import WallClockBudget
        from repro.robustness import StallingClock

        clock = StallingClock(tick=0.1, jumps={4: 30.0})
        budget = WallClockBudget(seconds=5.0, clock=clock)  # clock call 1
        budget.charge(1.0)  # call 2: 0.2s elapsed
        budget.charge(1.0)  # call 3: 0.3s elapsed
        with pytest.raises(BudgetExhausted, match="wall-clock"):
            budget.charge(1.0)  # call 4 stalls 30s
        assert budget.spent == 2.0  # work units still only count real work

    def test_remaining_is_seconds_not_units(self):
        from repro.core.budget import WallClockBudget
        from repro.robustness import StallingClock

        clock = StallingClock(tick=1.0)
        budget = WallClockBudget(seconds=10.0, clock=clock)  # clock call 1
        budget.charge(100.0)  # huge unit charge is fine; only time matters
        # Reading ``remaining`` is clock call 3: 2s elapsed since the start.
        assert budget.remaining == pytest.approx(8.0)

    def test_carve_shares_the_injected_clock(self):
        from repro.core.budget import WallClockBudget
        from repro.robustness import StallingClock

        clock = StallingClock(tick=1.0)
        budget = WallClockBudget(seconds=40.0, clock=clock)
        carved = budget.carve(0.1)  # 4 seconds, starting now
        with pytest.raises(BudgetExhausted):
            for _ in range(100):
                carved.charge(1.0)
        assert not budget.exhausted  # parent has plenty of time left
