"""Tests for the exact System-R dynamic program and the static model."""

import pytest

from repro.core.budget import Budget, BudgetExhausted
from repro.core.dynamic_programming import dp_optimal_order
from repro.cost.memory import MainMemoryCostModel
from repro.cost.static import StaticCostModel
from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order, valid_orders
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query

from tests.conftest import chain_graph, two_component_graph


class TestStaticCostModel:
    def test_join_cost_delegates(self):
        inner = MainMemoryCostModel()
        static = StaticCostModel(inner)
        assert static.join_cost(10, 20, 30) == inner.join_cost(10, 20, 30)

    def test_name(self):
        assert StaticCostModel(MainMemoryCostModel()).name == "static-memory"

    def test_no_propagation_effect(self):
        """Where propagation inflates, the static model does not."""
        from repro.catalog.join_graph import JoinGraph
        from repro.catalog.predicates import JoinPredicate
        from repro.catalog.relation import Relation

        relations = [Relation("A", 10), Relation("B", 1000), Relation("C", 2000)]
        predicates = [
            JoinPredicate(0, 1, 10, 400),
            JoinPredicate(1, 2, 500, 100),
        ]
        graph = JoinGraph(relations, predicates)
        inner = MainMemoryCostModel()
        static = StaticCostModel(inner)
        order = JoinOrder([0, 1, 2])
        assert static.plan_cost(order, graph) < inner.plan_cost(order, graph)

    def test_final_size_subset_determined(self, cycle):
        """All orders of the same relation set share the final size."""
        static = StaticCostModel(MainMemoryCostModel())
        sizes = {
            round(static.plan_cost_detail(order, cycle).prefix_sizes[-1], 6)
            for order in valid_orders(cycle)
        }
        assert len(sizes) == 1

    def test_detail_matches_total(self, chain):
        static = StaticCostModel(MainMemoryCostModel())
        order = JoinOrder([0, 1, 2, 3, 4])
        detail = static.plan_cost_detail(order, chain)
        assert detail.total == pytest.approx(static.plan_cost(order, chain))


class TestDPOptimalOrder:
    @pytest.mark.parametrize("seed", range(8))
    def test_exact_vs_enumeration(self, seed):
        query = generate_query(DEFAULT_SPEC, n_joins=6, seed=seed)
        graph = query.graph
        model = MainMemoryCostModel()
        static = StaticCostModel(model)
        best = min(static.plan_cost(order, graph) for order in valid_orders(graph))
        result = dp_optimal_order(graph, model)
        assert result.cost == pytest.approx(best)

    def test_order_is_valid(self, cycle):
        result = dp_optimal_order(cycle, MainMemoryCostModel())
        assert is_valid_order(result.order, cycle)

    def test_recost_uses_original_model(self, chain):
        model = MainMemoryCostModel()
        result = dp_optimal_order(chain, model)
        assert result.recost == pytest.approx(model.plan_cost(result.order, chain))

    def test_single_relation(self):
        graph = chain_graph([42])
        result = dp_optimal_order(graph, MainMemoryCostModel())
        assert result.order == JoinOrder([0])
        assert result.cost == 0.0

    def test_refuses_large_queries(self):
        query = generate_query(DEFAULT_SPEC, n_joins=25, seed=0)
        with pytest.raises(ValueError, match="2\\^26"):
            dp_optimal_order(query.graph, MainMemoryCostModel())

    def test_max_relations_override(self):
        query = generate_query(DEFAULT_SPEC, n_joins=10, seed=0)
        result = dp_optimal_order(
            query.graph, MainMemoryCostModel(), max_relations=11
        )
        assert result.n_subsets > 0

    def test_refuses_disconnected(self):
        with pytest.raises(ValueError, match="connected"):
            dp_optimal_order(two_component_graph(), MainMemoryCostModel())

    def test_budget_charged_and_enforced(self, chain):
        budget = Budget(limit=1e9)
        result = dp_optimal_order(chain, MainMemoryCostModel(), budget=budget)
        assert budget.spent == pytest.approx(result.n_cost_evaluations)
        with pytest.raises(BudgetExhausted):
            dp_optimal_order(chain, MainMemoryCostModel(), budget=Budget(limit=2))

    def test_subset_count_chain(self, chain):
        """A 5-chain has exactly the contiguous-interval subsets."""
        result = dp_optimal_order(chain, MainMemoryCostModel())
        # Connected subsets of a path of 5 = 5+4+3+2+1 = 15.
        assert result.n_subsets == 15

    def test_budget_death_mid_layer_raises_by_default(self):
        """A truncated table must never be presented as an optimum."""
        query = generate_query(DEFAULT_SPEC, n_joins=7, seed=5)
        # Enough budget to finish the 2-subset layer but die inside a
        # later one: the full-set entry either does not exist or is
        # unproven, so the default contract is to raise.
        with pytest.raises(BudgetExhausted):
            dp_optimal_order(
                query.graph, MainMemoryCostModel(), budget=Budget(limit=40)
            )

    def test_budget_death_partial_returns_valid_incomplete_result(self):
        query = generate_query(DEFAULT_SPEC, n_joins=7, seed=5)
        model = MainMemoryCostModel()
        result = dp_optimal_order(
            query.graph, model, budget=Budget(limit=40), allow_partial=True
        )
        assert result.complete is False
        assert is_valid_order(result.order, query.graph)
        static = StaticCostModel(model)
        assert result.cost == pytest.approx(
            static.plan_cost(result.order, query.graph)
        )
        assert result.recost == pytest.approx(
            model.plan_cost(result.order, query.graph)
        )

    def test_budget_death_partial_is_deterministic(self):
        query = generate_query(DEFAULT_SPEC, n_joins=7, seed=5)
        model = MainMemoryCostModel()
        runs = [
            dp_optimal_order(
                query.graph, model, budget=Budget(limit=40), allow_partial=True
            )
            for _ in range(3)
        ]
        assert all(run.order == runs[0].order for run in runs)
        assert all(run.cost == runs[0].cost for run in runs)
        assert all(
            run.n_cost_evaluations == runs[0].n_cost_evaluations for run in runs
        )

    def test_budget_death_partial_records_failure(self):
        from repro.robustness.resilience import FailureLog

        query = generate_query(DEFAULT_SPEC, n_joins=7, seed=5)
        log = FailureLog()
        dp_optimal_order(
            query.graph,
            MainMemoryCostModel(),
            budget=Budget(limit=40),
            allow_partial=True,
            failure_log=log,
        )
        assert len(log.records) == 1
        record = log.records[0]
        assert record.kind == "budget-exhausted"
        assert record.stage == "dp"
        assert "priced" in record.detail

    def test_generous_budget_partial_flag_is_complete(self):
        """allow_partial changes nothing when the budget suffices."""
        query = generate_query(DEFAULT_SPEC, n_joins=6, seed=2)
        model = MainMemoryCostModel()
        full = dp_optimal_order(query.graph, model)
        partial_ok = dp_optimal_order(
            query.graph,
            model,
            budget=Budget(limit=1e9),
            allow_partial=True,
        )
        assert partial_ok.complete is True
        assert partial_ok.order == full.order
        assert partial_ok.cost == full.cost

    def test_budget_death_in_first_priced_layer(self):
        """Even a budget too small for one extension yields a valid order."""
        query = generate_query(DEFAULT_SPEC, n_joins=6, seed=0)
        result = dp_optimal_order(
            query.graph,
            MainMemoryCostModel(),
            budget=Budget(limit=0.5),
            allow_partial=True,
        )
        assert result.complete is False
        assert is_valid_order(result.order, query.graph)

    def test_beats_or_ties_every_heuristic(self):
        """DP's static-world optimum lower-bounds the heuristics."""
        from repro.core.augmentation import augmentation_orders

        query = generate_query(DEFAULT_SPEC, n_joins=8, seed=3)
        graph = query.graph
        model = MainMemoryCostModel()
        static = StaticCostModel(model)
        result = dp_optimal_order(graph, model)
        for order in augmentation_orders(graph):
            assert result.cost <= static.plan_cost(order, graph) + 1e-9
