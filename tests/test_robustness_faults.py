"""Tests for the deterministic fault-injection harness."""

import math

import pytest

from repro.core.budget import Budget, BudgetExhausted, WallClockBudget
from repro.core.combinations import MethodParams, make_strategy
from repro.core.state import Evaluator
from repro.cost.memory import MainMemoryCostModel
from repro.plans.join_order import JoinOrder
from repro.robustness import (
    CORRUPTION_KINDS,
    FaultSpec,
    FaultyCostModel,
    FaultyStrategy,
    InjectedFault,
    StallingClock,
    catalog_violations,
    corrupt_catalog,
)
from repro.robustness.faults import (
    COST_EXCEPTION,
    INF_COST,
    NAN_COST,
    NEGATIVE_COST,
    STALL,
)
from repro.utils.rng import derive_rng


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meltdown", at_evaluation=1)

    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(kind=NAN_COST)
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(kind=NAN_COST, at_evaluation=1, every=2)

    def test_at_evaluation_fires_once(self):
        spec = FaultSpec(kind=NAN_COST, at_evaluation=3)
        rng = derive_rng(0, "test")
        fired = [spec.fires(i, rng) for i in range(1, 10)]
        assert fired == [False, False, True] + [False] * 6

    def test_every_fires_periodically(self):
        spec = FaultSpec(kind=NAN_COST, every=4)
        rng = derive_rng(0, "test")
        fired = [i for i in range(1, 13) if spec.fires(i, rng)]
        assert fired == [4, 8, 12]


class TestFaultyCostModel:
    def _model(self, faults, seed=0, **kwargs):
        return FaultyCostModel(MainMemoryCostModel(), faults, seed=seed, **kwargs)

    def test_nan_injection(self, chain):
        model = self._model([FaultSpec(kind=NAN_COST, at_evaluation=1)])
        order = JoinOrder(range(chain.n_relations))
        assert math.isnan(model.plan_cost(order, chain))
        assert model.n_injected == 1
        # The fault was one-shot: the next pricing is healthy and agrees
        # with the unwrapped model.
        clean = MainMemoryCostModel().plan_cost(order, chain)
        assert model.plan_cost(order, chain) == pytest.approx(clean)

    def test_inf_and_negative_injection(self, chain):
        order = JoinOrder(range(chain.n_relations))
        assert math.isinf(
            self._model([FaultSpec(kind=INF_COST, at_evaluation=2)]).plan_cost(
                order, chain
            )
        )
        clean = MainMemoryCostModel().plan_cost(order, chain)
        poisoned = self._model(
            [FaultSpec(kind=NEGATIVE_COST, at_evaluation=1)]
        ).plan_cost(order, chain)
        assert poisoned < clean

    def test_exception_injection(self, chain):
        model = self._model([FaultSpec(kind=COST_EXCEPTION, at_evaluation=3)])
        order = JoinOrder(range(chain.n_relations))
        with pytest.raises(InjectedFault, match="evaluation 3"):
            model.plan_cost(order, chain)

    def test_probability_faults_are_seed_deterministic(self, chain):
        order = JoinOrder(range(chain.n_relations))

        def run(seed):
            model = self._model(
                [FaultSpec(kind=NAN_COST, probability=0.3)], seed=seed
            )
            costs = [model.plan_cost(order, chain) for _ in range(20)]
            return [math.isnan(c) for c in costs], model.n_injected

        assert run(5) == run(5)
        assert run(5) != run(6)  # different stream, different fault plan

    def test_stall_advances_injected_clock(self, chain):
        clock = StallingClock(tick=0.001)
        model = self._model(
            [FaultSpec(kind=STALL, at_evaluation=1, stall_seconds=100.0)],
            stall_hook=clock.advance,
        )
        order = JoinOrder(range(chain.n_relations))
        before = clock.now
        cost = model.plan_cost(order, chain)  # stall, then price normally
        assert clock.now - before >= 100.0
        assert math.isfinite(cost)


class TestStallingClock:
    def test_ticks_and_jumps(self):
        clock = StallingClock(tick=1.0, jumps={3: 10.0})
        assert clock() == pytest.approx(1.0)
        assert clock() == pytest.approx(2.0)
        assert clock() == pytest.approx(13.0)  # tick + scheduled jump

    def test_expires_wall_clock_budget_without_waiting(self):
        clock = StallingClock(tick=0.0, jumps={3: 60.0})
        budget = WallClockBudget(seconds=5.0, clock=clock)  # consumes call 1
        budget.charge(1.0)  # call 2: clock at 0, fine
        with pytest.raises(BudgetExhausted, match="wall-clock"):
            budget.charge(1.0)  # call 3 hits the 60s stall


class TestCorruptCatalog:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_every_kind_produces_detectable_corruption(self, medium_query, kind):
        corrupted = corrupt_catalog(medium_query.graph, kind, seed=3)
        assert catalog_violations(corrupted)
        # Structure untouched: only statistics are corrupted.
        assert corrupted.n_relations == medium_query.graph.n_relations
        assert len(corrupted.predicates) == len(medium_query.graph.predicates)

    def test_victim_choice_is_seed_deterministic(self, medium_query):
        a = corrupt_catalog(medium_query.graph, "zero-cardinality", seed=9)
        b = corrupt_catalog(medium_query.graph, "zero-cardinality", seed=9)
        assert [r.base_cardinality for r in a.relations] == [
            r.base_cardinality for r in b.relations
        ]

    def test_unknown_kind_rejected(self, chain):
        with pytest.raises(ValueError, match="unknown corruption kind"):
            corrupt_catalog(chain, "gremlins")

    def test_original_graph_is_untouched(self, chain):
        before = [r.base_cardinality for r in chain.relations]
        corrupt_catalog(chain, "nan-cardinality", seed=0)
        assert [r.base_cardinality for r in chain.relations] == before


class TestFaultyStrategy:
    def test_crashes_but_keeps_best_so_far(self, small_query):
        graph = small_query.graph
        strategy = FaultyStrategy("II", fail_after=5)
        evaluator = Evaluator(graph, MainMemoryCostModel(), Budget.unlimited())
        rng = derive_rng(0, "test")
        with pytest.raises(InjectedFault, match="after 5 evaluations"):
            strategy.run(evaluator, rng, MethodParams())
        assert evaluator.n_evaluations == 5
        assert evaluator.best is not None  # best-so-far survives the crash

    def test_wraps_either_name_or_instance(self):
        by_name = FaultyStrategy("IAI", fail_after=1)
        by_instance = FaultyStrategy(make_strategy("IAI"), fail_after=1)
        assert by_name.name == by_instance.name == "IAI"
