#!/usr/bin/env python3
"""How far from the true optimum do the heuristics land?

For queries small enough (N ≈ 10) the System-R dynamic program is
feasible and yields the exact optimum under the classic (static)
estimator.  This example measures each method's optimality gap against
it — something the paper could not report for its large queries (which
is precisely why it scales costs by the best *known* solution instead).

Run:  python examples/optimality_gap.py
"""

from repro import DEFAULT_SPEC, MainMemoryCostModel, generate_query
from repro.core.dynamic_programming import dp_optimal_order
from repro.core.optimizer import optimize
from repro.cost.static import StaticCostModel

METHODS = ("IAI", "AGI", "II", "SA", "AUG3", "KBZ3")
N_JOINS = 10
N_QUERIES = 5


def main() -> None:
    base_model = MainMemoryCostModel()
    static = StaticCostModel(base_model)

    gaps: dict[str, list[float]] = {method: [] for method in METHODS}
    dp_work = []
    for index in range(N_QUERIES):
        query = generate_query(DEFAULT_SPEC, n_joins=N_JOINS, seed=100 + index)
        exact = dp_optimal_order(query.graph, base_model)
        dp_work.append(exact.n_cost_evaluations)
        for method in METHODS:
            result = optimize(
                query, method=method, model=static, time_factor=9.0, seed=1
            )
            gaps[method].append(result.cost / exact.cost)

    print(f"Optimality gaps over {N_QUERIES} queries with N = {N_JOINS}")
    print(f"(exact optimum by DP; ~{sum(dp_work)//len(dp_work):,} join-cost")
    print(" evaluations per query — the 2^N blow-up the paper escapes)")
    print()
    print("method    mean gap    worst gap")
    print("-" * 34)
    for method in METHODS:
        values = gaps[method]
        mean = sum(values) / len(values)
        print(f"{method:8s} {mean:9.3f}x {max(values):11.3f}x")
    print()
    print(
        "At N = 10 the combined methods sit within a few percent of the\n"
        "true optimum at the 9N^2 limit — context for the paper's scaled\n"
        "costs, which are relative to the best *found*, not the optimum."
    )


if __name__ == "__main__":
    main()
