#!/usr/bin/env python3
"""Star-shaped vs chain-shaped join graphs (benchmarks 8 and 9).

The paper's §5 singles out star-like and chain-like join graphs as
"important kinds of queries which are good tests of query optimizers":
stars blow up the valid search space; chains shrink it.  This example
generates both kinds, reports the search-space contrast, and shows how
IAI copes with each.

Run:  python examples/star_vs_chain.py
"""

from repro import benchmark_spec, generate_query, optimize


def describe(kind: str, spec_number: int, seed: int) -> None:
    spec = benchmark_spec(spec_number)
    query = generate_query(spec, n_joins=25, seed=seed)
    graph = query.graph
    degrees = sorted(
        (graph.degree(i) for i in range(graph.n_relations)), reverse=True
    )
    result = optimize(query, method="IAI", time_factor=9.0, seed=0)
    baseline = optimize(query, method="SA", time_factor=9.0, seed=0)

    print(f"{kind} join graph (benchmark {spec_number}, spec {spec.name!r})")
    print(f"  relations          : {graph.n_relations}")
    print(f"  join predicates    : {len(graph.predicates)}")
    print(f"  top degrees        : {degrees[:5]}")
    print(f"  IAI plan cost      : {result.cost:,.0f}")
    print(f"  SA  plan cost      : {baseline.cost:,.0f}")
    print(f"  SA / IAI           : {baseline.cost / result.cost:.2f}x")
    print()


def main() -> None:
    describe("Star-like", spec_number=8, seed=5)
    describe("Chain-like", spec_number=9, seed=5)
    print(
        "Stars concentrate many joins on a few hub relations (large\n"
        "search space); chains force nearly linear orders (small search\n"
        "space).  The paper finds IAI the method of choice on both."
    )


if __name__ == "__main__":
    main()
