#!/usr/bin/env python3
"""Watch simulated annealing cool (or fail to).

The paper's negative result on SA depends on the schedule actually
freezing within the time limit.  This example instruments two anneals on
the same query — the library's recalibrated schedule and JAMS87's
original chain length — and prints temperature and acceptance ratio
chain by chain.  The long-chain variant exhausts its budget while still
hot: it never stops behaving like a random walk.

Run:  python examples/sa_diagnostics.py
"""

import random

from repro import Budget, DEFAULT_SPEC, MainMemoryCostModel, generate_query
from repro.core.annealing import AnnealingSchedule, simulated_annealing
from repro.core.moves import MoveSet
from repro.core.state import Evaluator
from repro.plans.validity import random_valid_order


def anneal_with_diagnostics(label: str, schedule: AnnealingSchedule) -> None:
    query = generate_query(DEFAULT_SPEC, n_joins=25, seed=3)
    n = query.n_joins
    budget = Budget.for_query(n, time_factor=9.0, units_per_n2=20)
    evaluator = Evaluator(query.graph, MainMemoryCostModel(), budget)
    rng = random.Random(0)
    chains = []
    result = simulated_annealing(
        random_valid_order(query.graph, rng),
        evaluator,
        MoveSet(),
        rng,
        schedule,
        observer=chains.append,
    )

    print(f"{label} (size_factor={schedule.size_factor}, "
          f"temp_factor={schedule.temp_factor})")
    print("chain   temperature   acceptance   best cost")
    step = max(1, len(chains) // 10)
    for stats in chains[::step]:
        print(
            f"{stats.chain_index:5d}   {stats.temperature:11.1f}"
            f"   {stats.acceptance_ratio:10.2f}   {stats.best_cost:9.0f}"
        )
    last = chains[-1] if chains else None
    frozen = last is not None and last.acceptance_ratio < 0.02
    print(f"chains run : {len(chains)}")
    print(f"budget used: {budget.spent:,.0f} / {budget.limit:,.0f}")
    print(f"ended      : {'frozen' if frozen else 'budget expired while hot'}")
    print(f"best cost  : {result.cost:,.0f}")
    print()


def main() -> None:
    anneal_with_diagnostics(
        "Recalibrated schedule", AnnealingSchedule()
    )
    anneal_with_diagnostics(
        "JAMS87 chain length", AnnealingSchedule(size_factor=16, temp_factor=0.95)
    )


if __name__ == "__main__":
    main()
