#!/usr/bin/env python3
"""Close the loop: execute an optimized plan on real data.

The paper compares *estimated* plan costs; a real system must also get
the estimates right.  This example generates concrete tables matching a
query's catalog statistics, executes the optimized join order with the
bundled hash-join engine, and compares measured intermediate sizes with
the optimizer's estimates, join by join.

Run:  python examples/validate_estimates.py
"""

from repro import DEFAULT_SPEC, generate_query, optimize
from repro.engine import execute_order, generate_database


def main() -> None:
    # Seed 5 yields a query whose relations are small enough to
    # materialise in full, so measured and estimated sizes are directly
    # comparable (no row capping in the generator).
    query = generate_query(DEFAULT_SPEC, n_joins=8, seed=5)
    print(f"Query: {query} ({query.graph})")

    result = optimize(query, method="IAI", time_factor=9.0, seed=0)
    print(f"Optimized order: {result.order}")
    print(f"Estimated cost : {result.cost:,.0f}")
    print()

    tables = generate_database(query.graph, seed=11)
    execution = execute_order(result.order, query.graph, tables)

    print("join   measured rows   estimated rows   measured/estimated")
    print("-" * 60)
    for index, (measured, estimated) in enumerate(
        zip(execution.intermediate_sizes, execution.estimated_sizes[1:]), start=1
    ):
        ratio = measured / estimated if estimated else float("nan")
        print(f"{index:>4}   {measured:>13,}   {estimated:>14,.0f}   {ratio:>10.2f}")
    print()
    print(f"Final result: {execution.n_rows:,} rows")
    mean_ratio = sum(execution.size_ratios()) / len(execution.size_ratios())
    print(f"Mean measured/estimated ratio: {mean_ratio:.2f}")


if __name__ == "__main__":
    main()
