#!/usr/bin/env python3
"""Optimize star and snowflake warehouse queries.

The paper's introduction motivates large join queries with applications
that generate many joins mechanically — views, object mappers, logic
programs.  A normalized snowflake schema is the classic concrete case: a
fact table with many dimensions, each dimension a chain of hierarchy
levels.  This example generates a 24-join snowflake query, optimizes it,
and draws the methods' convergence curves.

Run:  python examples/warehouse_snowflake.py
"""

from repro import optimize
from repro.experiments.convergence import convergence_curves
from repro.experiments.report import render_ascii_chart
from repro.workloads.schemas import StarSchemaSpec, generate_star_query


def main() -> None:
    spec = StarSchemaSpec(n_dimensions=8, hierarchy_depth=3)
    query = generate_star_query(spec, seed=2)
    print(f"Query: {query} — {query.graph}")

    result = optimize(query, method="IAI", time_factor=9.0, seed=0)
    print(f"IAI plan cost: {result.cost:,.0f}")
    tree = result.join_tree()
    print("First joins of the chosen plan:")
    for line in tree.explain().splitlines()[:6]:
        print(f"  {line}")
    print()

    curves = convergence_curves(
        [query],
        methods=("IAI", "AGI", "SA"),
        max_factor=9.0,
        n_points=16,
        units_per_n2=20,
        seed=0,
    )
    series = {name: curve.points() for name, curve in curves.items()}
    print(render_ascii_chart(
        "Convergence on the snowflake query (mean scaled cost vs kN^2)",
        series,
    ))


if __name__ == "__main__":
    main()
