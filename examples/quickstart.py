#!/usr/bin/env python3
"""Quickstart: optimize one large join query and inspect the plan.

Generates a 20-join query from the paper's default synthetic benchmark,
optimizes it with the paper's recommended method (IAI — iterative
improvement seeded with augmentation-heuristic states), and prints the
chosen outer-linear join tree with its estimated intermediate sizes.

Run:  python examples/quickstart.py
"""

from repro import DEFAULT_SPEC, generate_query, optimize


def main() -> None:
    query = generate_query(DEFAULT_SPEC, n_joins=20, seed=42)
    print(f"Query: {query}")
    print(f"Join graph: {query.graph}")
    print()

    # The paper's time limits are multiples of N^2; 9N^2 is the largest
    # limit it studies and the point where all methods have flattened.
    result = optimize(query, method="IAI", time_factor=9.0, seed=0)

    print(f"Method          : {result.method}")
    print(f"Plan cost       : {result.cost:,.0f}")
    print(f"Plans evaluated : {result.n_evaluations:,}")
    print(f"Work units spent: {result.units_spent:,.0f}")
    print()
    print("Improvement trajectory (units -> best cost):")
    for spent, cost in result.trajectory[:8]:
        print(f"  {spent:>10,.0f} -> {cost:,.0f}")
    if len(result.trajectory) > 8:
        print(f"  ... {len(result.trajectory) - 8} more improvements")
    print()
    print(result.join_tree().explain())


if __name__ == "__main__":
    main()
