#!/usr/bin/env python3
"""Compare all nine of the paper's methods on one query.

Runs II, SA, SAA, SAK, IAI, IKI, IAL, AGI, and KBI on the same 30-join
query at increasing time limits and prints a small league table — a
single-query miniature of the paper's Figure 4.

Run:  python examples/compare_methods.py
"""

from repro import DEFAULT_SPEC, generate_query, optimize
from repro.core.combinations import PAPER_METHODS
from repro.core.budget import DEFAULT_UNITS_PER_N2

TIME_FACTORS = (0.3, 1.5, 9.0)


def main() -> None:
    query = generate_query(DEFAULT_SPEC, n_joins=30, seed=7)
    n = query.n_joins
    print(f"Query: {query} ({query.graph})")
    print()

    # One run per method at the largest limit; read smaller limits off
    # the improvement trajectory (the harness's trick).
    results = {
        method: optimize(query, method=method, time_factor=max(TIME_FACTORS), seed=1)
        for method in PAPER_METHODS
    }
    best_final = min(result.cost for result in results.values())

    header = "method".ljust(8) + "".join(
        f"{factor:g}N^2".rjust(12) for factor in TIME_FACTORS
    )
    print(header)
    print("-" * len(header))
    for method, result in sorted(results.items(), key=lambda kv: kv[1].cost):
        cells = []
        for factor in TIME_FACTORS:
            units = factor * n * n * DEFAULT_UNITS_PER_N2
            cost = result.best_cost_within(units)
            cells.append(
                "--".rjust(12)
                if cost is None
                else f"{cost / best_final:.2f}x".rjust(12)
            )
        print(method.ljust(8) + "".join(cells))
    print()
    print("(values are scaled costs: 1.00x = best solution found at 9N^2)")


if __name__ == "__main__":
    main()
