#!/usr/bin/env python3
"""Pose a concrete query by hand with the QueryBuilder.

Models a small warehouse-style schema — a fact table joined to a chain
of dimension and bridge tables — and shows how the choice of join order
changes the estimated cost, comparing a naive left-to-right order with
the optimizer's.

Run:  python examples/custom_query.py
"""

from repro import MainMemoryCostModel, QueryBuilder, optimize
from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order


def build_query():
    builder = QueryBuilder("warehouse")
    facts = builder.relation("facts", 1_000_000, selections=(0.2,))
    customers = builder.relation("customers", 50_000)
    regions = builder.relation("regions", 50)
    products = builder.relation("products", 10_000, selections=(0.1,))
    categories = builder.relation("categories", 100)
    suppliers = builder.relation("suppliers", 2_000)
    dates = builder.relation("dates", 3_650, selections=(0.05,))

    builder.join(facts, customers, left_distinct=50_000, right_distinct=50_000)
    builder.join(customers, regions, left_distinct=50, right_distinct=50)
    builder.join(facts, products, left_distinct=10_000, right_distinct=10_000)
    builder.join(products, categories, left_distinct=100, right_distinct=100)
    builder.join(products, suppliers, left_distinct=2_000, right_distinct=2_000)
    builder.join(facts, dates, left_distinct=3_650, right_distinct=3_650)
    return builder.build()


def main() -> None:
    query = build_query()
    graph = query.graph
    model = MainMemoryCostModel()
    print(f"Query: {query} ({graph})")
    print()

    naive = JoinOrder(list(range(graph.n_relations)))
    assert is_valid_order(naive, graph)
    naive_cost = model.plan_cost(naive, graph)
    print(f"Naive order {naive}: cost {naive_cost:,.0f}")

    result = optimize(query, method="IAI", time_factor=9.0, seed=0)
    print(f"IAI order   {result.order}: cost {result.cost:,.0f}")
    print(f"Improvement: {naive_cost / result.cost:.1f}x cheaper")
    print()
    print(result.join_tree().explain())


if __name__ == "__main__":
    main()
