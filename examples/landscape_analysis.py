#!/usr/bin/env python3
"""Explore the solution-space landscape (the paper's §7 future work).

The paper conjectures that the valid join-order space has "a large
number of local minima, with a small but significant fraction of them
being deep" — the property that makes multi-start iterative improvement
so effective.  This example measures that directly:

1. samples the cost distribution over random valid orders of a 20-join
   query (how rare are good plans?), and
2. exhaustively censuses the local minima of a small query under the
   search move set (how many minima, how many deep?).

Run:  python examples/landscape_analysis.py
"""

from repro import DEFAULT_SPEC, MainMemoryCostModel, generate_query
from repro.experiments.landscape import (
    local_minima_census,
    sample_cost_distribution,
    summarize,
)


def main() -> None:
    model = MainMemoryCostModel()

    query = generate_query(DEFAULT_SPEC, n_joins=20, seed=17)
    print(f"Cost distribution over random valid orders — {query}")
    costs = sample_cost_distribution(query.graph, model, n_samples=2000, seed=1)
    summary = summarize(costs)
    print(f"  samples            : {summary.n_samples}")
    print(f"  min / median / max : {summary.minimum:,.0f} / "
          f"{summary.median:,.0f} / {summary.maximum:,.0f}")
    print(f"  spread (max/min)   : {summary.spread:,.0f}x")
    print(f"  within 2x of best  : {summary.fraction_within_2x:.1%}")
    print(f"  within 10x of best : {summary.fraction_within_10x:.1%}")
    print()

    small = generate_query(DEFAULT_SPEC, n_joins=6, seed=4)
    print(f"Exhaustive local-minima census — {small}")
    census = local_minima_census(small.graph, model)
    print(f"  valid orders       : {census.n_valid_orders}")
    print(f"  local minima       : {census.n_local_minima} "
          f"({census.fraction_minima:.1%} of the space)")
    print(f"  deep minima (<=2x) : {census.deep_minima(2.0)}")
    print(f"  global minimum cost: {census.global_minimum:,.0f}")
    print()
    print(
        "A heavy right tail with few deep minima is exactly the regime\n"
        "where IAI's heuristic-seeded multi-start wins, matching the\n"
        "paper's §6.4 explanation."
    )


if __name__ == "__main__":
    main()
