#!/usr/bin/env python3
"""Pose a query as SQL text and optimize it.

Registers a small warehouse catalog, parses a 5-way join written in the
frontend's SQL dialect, and shows the optimizer's plan — the whole
pipeline a downstream user would run.

Run:  python examples/sql_frontend.py
"""

from repro import optimize
from repro.frontend import ColumnStats, StatsCatalog, parse_query

SQL = """
    SELECT o.id, c.name, r.name, p.name, s.name
    FROM orders o, customers c, regions r, products p, suppliers s
    WHERE o.customer_id = c.id
      AND c.region_id = r.id
      AND o.product_id = p.id
      AND p.supplier_id = s.id
      AND o.status = 'shipped'
      AND r.name = 'EMEA'
"""


def build_catalog() -> StatsCatalog:
    catalog = StatsCatalog()
    catalog.add_table(
        "orders",
        2_000_000,
        {
            "customer_id": ColumnStats(distinct=80_000),
            "product_id": ColumnStats(distinct=30_000),
            "status": ColumnStats(distinct=4),
        },
    )
    catalog.add_table(
        "customers",
        80_000,
        {"id": ColumnStats(distinct=80_000), "region_id": ColumnStats(distinct=40)},
    )
    catalog.add_table("regions", 40, {"id": ColumnStats(distinct=40),
                                      "name": ColumnStats(distinct=40)})
    catalog.add_table(
        "products",
        30_000,
        {"id": ColumnStats(distinct=30_000), "supplier_id": ColumnStats(distinct=900)},
    )
    catalog.add_table("suppliers", 900, {"id": ColumnStats(distinct=900)})
    return catalog


def main() -> None:
    catalog = build_catalog()
    query = parse_query(SQL, catalog, name="shipped-orders-emea")
    print(f"Parsed: {query} — {query.graph}")
    for relation in query.graph.relations:
        print(f"  {relation}")
    print()

    result = optimize(query, method="IAI", time_factor=9.0, seed=0)
    print(f"Plan cost: {result.cost:,.0f}")
    print(result.join_tree().explain())


if __name__ == "__main__":
    main()
