#!/usr/bin/env python3
"""How wrong can the statistics be before plans go bad?

Perturbs a 20-join query's catalog statistics by growing error factors,
re-optimizes under the wrong numbers, and prices the chosen plans under
the truth.  Join-order optimization is famously tolerant of moderate
estimation error — and famously not of order-of-magnitude error.

Run:  python examples/estimation_errors.py
"""

from repro import DEFAULT_SPEC, generate_query
from repro.experiments.sensitivity import sensitivity_analysis


def main() -> None:
    query = generate_query(DEFAULT_SPEC, n_joins=20, seed=12)
    print(f"Query: {query} — {query.graph}")
    print()

    points = sensitivity_analysis(
        query,
        error_factors=(1.0, 1.5, 2.0, 5.0, 10.0, 30.0),
        n_trials=6,
        method="IAI",
        time_factor=3.0,
        seed=4,
    )

    print("error factor   mean degradation   worst degradation")
    print("-" * 52)
    for point in points:
        print(
            f"{point.error_factor:12.1f}   {point.mean_degradation:16.2f}x"
            f"   {point.worst_degradation:16.2f}x"
        )
    print()
    print(
        "Degradation = true cost of the plan chosen under perturbed\n"
        "statistics, relative to the plan chosen under the truth."
    )


if __name__ == "__main__":
    main()
