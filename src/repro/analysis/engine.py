"""The analyzer: discovery, local pass, global pass, status layering.

One :class:`Analyzer` run is deterministic end to end (fitting, for this
package): files are discovered in sorted order, rules run in registry
order, the call-graph fixpoint iterates in sorted order, and findings
are sorted by location before anything downstream sees them — so
reports, baselines, and exit codes never depend on filesystem
enumeration order or cache state.

The v2 pipeline splits into two passes:

1. **Local pass** (per file, cacheable): parse, run the intraprocedural
   rules, extract :class:`~repro.analysis.dataflow.ModuleFacts`, parse
   suppression pragmas.  Every output is a pure function of the file's
   bytes under one configuration, which is exactly what the content-hash
   summary cache (:mod:`repro.analysis.cache`) memoizes.
2. **Global pass** (project-wide, always recomputed): resolve the call
   graph, run the effect/raise fixpoint, evaluate the project rules
   (PURE001/DET005/RACE001/ASYNC001/EXC002) over the summaries.

Status layering happens strictly after both passes:

3. occurrence indices are assigned per file over the merged local +
   project findings (stable fingerprints for duplicates);
4. line suppressions mark findings ``suppressed`` and raise the
   SUP001/SUP002 hygiene findings;
5. the baseline marks surviving findings ``baselined`` and reports any
   stale entries.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.cache import (
    SummaryCache,
    content_digest,
    payload_facts,
    payload_findings,
    payload_suppressions,
    record_payload,
    run_signature,
)
from repro.analysis.callgraph import build_callgraph
from repro.analysis.config import DetlintConfig
from repro.analysis.dataflow import (
    ImportMap,
    ModuleFacts,
    extract_module_facts,
)
from repro.analysis.findings import Finding, Rule
from repro.analysis.rules import RULES
from repro.analysis.rules_interproc import PROJECT_RULES, ProjectRule
from repro.analysis.suppressions import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)

#: Engine-level rule code for files the parser rejects.
PARSE_ERROR = "SYN001"

#: Bumped whenever local-pass semantics change (rule logic, extraction,
#: suppression grammar) so stale caches self-invalidate.
ANALYSIS_VERSION = "2.0"


@dataclass
class ModuleContext:
    """Everything an intraprocedural rule may look at for one module."""

    path: str  # absolute
    rel_path: str  # POSIX-style, relative to the project root
    source: str
    lines: list[str]
    tree: ast.Module
    imports: ImportMap
    config: DetlintConfig

    def options(self, rule_code: str) -> Mapping[str, Any]:
        return self.config.options_for(rule_code)


@dataclass
class FileRecord:
    """One file's local-pass output (the unit the summary cache stores)."""

    rel_path: str
    lines: list[str]
    findings: list[Finding]
    facts: ModuleFacts | None
    suppressions: list[Suppression]


@dataclass
class AnalysisResult:
    """Everything one run produced, pre-sorted and classified."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    stale_baseline: list[str] = field(default_factory=list)
    baseline_path: str | None = None
    rule_codes: tuple[str, ...] = ()
    #: Summary-cache statistics for this run (0/0 when caching is off).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.counts]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed and not self.stale_baseline

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _discover(paths: Iterable[str], root: str) -> list[str]:
    """All ``.py`` files under ``paths`` (absolute, sorted, de-duplicated)."""
    found: set[str] = set()
    for entry in paths:
        absolute = (
            entry if os.path.isabs(entry) else os.path.join(root, entry)
        )
        if os.path.isfile(absolute):
            if absolute.endswith(".py"):
                found.add(os.path.abspath(absolute))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if not name.startswith(".") and name != "__pycache__"
            )
            for filename in filenames:
                if filename.endswith(".py"):
                    found.add(os.path.abspath(os.path.join(dirpath, filename)))
    return sorted(found)


def _assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Index duplicate (rule, snippet) pairs in line order."""
    ordered = sorted(findings, key=lambda f: (f.line, f.column, f.rule))
    counts: dict[tuple[str, str], int] = {}
    out: list[Finding] = []
    for finding in ordered:
        key = (finding.rule, finding.snippet)
        index = counts.get(key, 0)
        counts[key] = index + 1
        out.append(finding.with_status(occurrence=index))
    return out


#: Default for ``Analyzer(baseline=...)``: load the configured baseline.
#: Pass ``None`` explicitly to run without one (``--no-baseline``).
_AUTO_BASELINE: Any = object()


class Analyzer:
    """Run the rule library over a file set under one configuration."""

    def __init__(
        self,
        config: DetlintConfig,
        rules: Sequence[Rule] | None = None,
        baseline: Baseline | None = _AUTO_BASELINE,
        project_rules: Sequence[ProjectRule] | None = None,
        use_cache: bool | None = None,
    ) -> None:
        self.config = config
        self.rules: tuple[Rule, ...] = tuple(rules if rules is not None else RULES)
        self.project_rules: tuple[ProjectRule, ...] = tuple(
            project_rules if project_rules is not None else PROJECT_RULES
        )
        if baseline is _AUTO_BASELINE:
            baseline = (
                Baseline.load(os.path.join(config.root, config.baseline))
                if config.baseline is not None
                else None
            )
        self.baseline = baseline
        #: Relative cache path, or None when caching is disabled
        #: (``use_cache=False`` overrides the config; ``None`` defers).
        self.cache_path: str | None
        if use_cache is False:
            self.cache_path = None
        else:
            self.cache_path = config.cache

    def _rel_path(self, path: str) -> str:
        rel = os.path.relpath(os.path.abspath(path), self.config.root)
        return rel.replace(os.sep, "/")

    def _cache_key(self) -> str:
        """Everything that can change a file's local-pass results."""
        return run_signature(
            {
                "analysis": ANALYSIS_VERSION,
                "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
                "rules": sorted(rule.code for rule in self.rules),
                "project_rules": sorted(
                    rule.code for rule in self.project_rules
                ),
                "rule_options": {
                    code: dict(options)
                    for code, options in sorted(
                        self.config.rule_options.items()
                    )
                },
            }
        )

    # ------------------------------------------------------------------
    # Local pass

    def _local_pass(self, source: str, rel_path: str) -> FileRecord:
        """Parse one module and run everything per-file and cacheable."""
        lines = source.splitlines()
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return FileRecord(
                rel_path=rel_path,
                lines=lines,
                findings=[
                    Finding(
                        rule=PARSE_ERROR,
                        path=rel_path,
                        line=exc.lineno or 1,
                        column=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                        snippet=(exc.text or "").strip(),
                    )
                ],
                facts=None,
                suppressions=[],
            )
        ctx = ModuleContext(
            path=rel_path,
            rel_path=rel_path,
            source=source,
            lines=lines,
            tree=tree,
            imports=ImportMap(tree),
            config=self.config,
        )
        raw: list[Finding] = []
        for rule in self.rules:
            if not self.config.rule_applies(rule.code, rel_path):
                continue
            raw.extend(rule.check(ctx))
        facts = extract_module_facts(rel_path, tree, lines, imports=ctx.imports)
        return FileRecord(
            rel_path=rel_path,
            lines=lines,
            findings=raw,
            facts=facts,
            suppressions=parse_suppressions(lines),
        )

    # ------------------------------------------------------------------
    # Global pass + status layering

    def _project_findings(
        self, records: Sequence[FileRecord]
    ) -> dict[str, list[Finding]]:
        modules = {
            record.rel_path: record.facts
            for record in records
            if record.facts is not None
        }
        graph = build_callgraph(modules)
        by_path: dict[str, list[Finding]] = {}
        for rule in self.project_rules:
            for finding in rule.check_project(graph, self.config):
                by_path.setdefault(finding.path, []).append(finding)
        return by_path

    def _finalize(self, records: Sequence[FileRecord]) -> list[Finding]:
        """Merge local + project findings, layer occurrences/suppressions."""
        project = self._project_findings(records)
        findings: list[Finding] = []
        for record in records:
            combined = record.findings + project.pop(record.rel_path, [])
            indexed = _assign_occurrences(combined)
            outcome = apply_suppressions(
                record.rel_path, record.lines, indexed, record.suppressions
            )
            findings.extend(outcome.findings + outcome.hygiene)
        # A project rule can only anchor findings in analyzed files, but
        # stay safe if that invariant ever breaks: report, don't drop.
        for leftovers in project.values():
            findings.extend(leftovers)
        return findings

    # ------------------------------------------------------------------
    # Public API

    def check_source(self, source: str, rel_path: str) -> list[Finding]:
        """Analyze one in-memory module (the unit the fixture tests use).

        The project rules run over a single-module call graph, so
        intra-module interprocedural findings (a local helper returning a
        set into ``list(...)``, a blocking call under ``async def``) are
        visible.  Occurrence indices and suppressions are applied; the
        baseline is **not** (that is a run-level concern).
        """
        record = self._local_pass(source, rel_path)
        findings = self._finalize([record])
        return sorted(findings, key=lambda f: (f.line, f.column, f.rule))

    def check_file(self, path: str) -> list[Finding]:
        rel_path = self._rel_path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            return [
                Finding(
                    rule=PARSE_ERROR,
                    path=rel_path,
                    line=1,
                    column=0,
                    message=f"file is unreadable: {exc}",
                    snippet="",
                )
            ]
        return self.check_source(source, rel_path)

    def run(self, paths: Sequence[str] | None = None) -> AnalysisResult:
        """Analyze ``paths`` (default: the configured paths)."""
        targets = list(paths) if paths else list(self.config.paths)
        files = [
            path
            for path in _discover(targets, self.config.root)
            if not self.config.exclude
            or not any(
                self._rel_path(path) == ex
                or self._rel_path(path).startswith(ex.rstrip("/") + "/")
                for ex in self.config.exclude
            )
        ]
        cache: SummaryCache | None = None
        if self.cache_path is not None:
            cache = SummaryCache.load(
                os.path.join(self.config.root, self.cache_path),
                self._cache_key(),
            )
        records: list[FileRecord] = []
        seen: set[str] = set()
        for path in files:
            rel_path = self._rel_path(path)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except (OSError, UnicodeDecodeError) as exc:
                records.append(
                    FileRecord(
                        rel_path=rel_path,
                        lines=[],
                        findings=[
                            Finding(
                                rule=PARSE_ERROR,
                                path=rel_path,
                                line=1,
                                column=0,
                                message=f"file is unreadable: {exc}",
                                snippet="",
                            )
                        ],
                        facts=None,
                        suppressions=[],
                    )
                )
                continue
            seen.add(rel_path)
            digest = content_digest(source)
            payload = (
                cache.lookup(rel_path, digest) if cache is not None else None
            )
            if payload is not None:
                records.append(
                    FileRecord(
                        rel_path=rel_path,
                        lines=source.splitlines(),
                        findings=payload_findings(payload),
                        facts=payload_facts(payload),
                        suppressions=payload_suppressions(payload),
                    )
                )
            else:
                record = self._local_pass(source, rel_path)
                if cache is not None:
                    cache.store(
                        rel_path,
                        digest,
                        record_payload(
                            record.findings, record.facts, record.suppressions
                        ),
                    )
                records.append(record)
        if cache is not None:
            cache.save(seen)

        findings = self._finalize(records)
        stale: list[str] = []
        baseline_path = None
        if self.baseline is not None:
            findings = self.baseline.apply(findings)
            stale = self.baseline.stale_fingerprints(findings)
            baseline_path = self.baseline.path
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        return AnalysisResult(
            findings=findings,
            files_checked=len(files),
            stale_baseline=stale,
            baseline_path=baseline_path,
            rule_codes=tuple(rule.code for rule in self.rules)
            + tuple(rule.code for rule in self.project_rules),
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
        )
