"""The analyzer: file discovery, parsing, rule dispatch, status layering.

One :class:`Analyzer` run is deterministic end to end (fitting, for this
package): files are discovered in sorted order, rules run in registry
order, and findings are sorted by location before anything downstream
sees them — so reports, baselines, and exit codes never depend on
filesystem enumeration order.

Status layering happens strictly after the rules run:

1. rules produce raw findings (pure functions of the AST);
2. occurrence indices are assigned (stable fingerprints for duplicates);
3. line suppressions mark findings ``suppressed`` and raise the
   SUP001/SUP002 hygiene findings;
4. the baseline marks surviving findings ``baselined`` and reports any
   stale entries.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.config import DetlintConfig
from repro.analysis.findings import Finding, Rule
from repro.analysis.rules import RULES, ImportMap
from repro.analysis.suppressions import apply_suppressions, parse_suppressions

#: Engine-level rule code for files the parser rejects.
PARSE_ERROR = "SYN001"


@dataclass
class ModuleContext:
    """Everything a rule may look at for one module."""

    path: str  # absolute
    rel_path: str  # POSIX-style, relative to the project root
    source: str
    lines: list[str]
    tree: ast.Module
    imports: ImportMap
    config: DetlintConfig

    def options(self, rule_code: str) -> Mapping[str, Any]:
        return self.config.options_for(rule_code)


@dataclass
class AnalysisResult:
    """Everything one run produced, pre-sorted and classified."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    stale_baseline: list[str] = field(default_factory=list)
    baseline_path: str | None = None
    rule_codes: tuple[str, ...] = ()

    @property
    def unsuppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.counts]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed and not self.stale_baseline

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _discover(paths: Iterable[str], root: str) -> list[str]:
    """All ``.py`` files under ``paths`` (absolute, sorted, de-duplicated)."""
    found: set[str] = set()
    for entry in paths:
        absolute = (
            entry if os.path.isabs(entry) else os.path.join(root, entry)
        )
        if os.path.isfile(absolute):
            if absolute.endswith(".py"):
                found.add(os.path.abspath(absolute))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if not name.startswith(".") and name != "__pycache__"
            )
            for filename in filenames:
                if filename.endswith(".py"):
                    found.add(os.path.abspath(os.path.join(dirpath, filename)))
    return sorted(found)


def _assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Index duplicate (rule, snippet) pairs in line order."""
    ordered = sorted(findings, key=lambda f: (f.line, f.column, f.rule))
    counts: dict[tuple[str, str], int] = {}
    out: list[Finding] = []
    for finding in ordered:
        key = (finding.rule, finding.snippet)
        index = counts.get(key, 0)
        counts[key] = index + 1
        out.append(finding.with_status(occurrence=index))
    return out


#: Default for ``Analyzer(baseline=...)``: load the configured baseline.
#: Pass ``None`` explicitly to run without one (``--no-baseline``).
_AUTO_BASELINE: Any = object()


class Analyzer:
    """Run the rule library over a file set under one configuration."""

    def __init__(
        self,
        config: DetlintConfig,
        rules: Sequence[Rule] | None = None,
        baseline: Baseline | None = _AUTO_BASELINE,
    ) -> None:
        self.config = config
        self.rules: tuple[Rule, ...] = tuple(rules if rules is not None else RULES)
        if baseline is _AUTO_BASELINE:
            baseline = (
                Baseline.load(os.path.join(config.root, config.baseline))
                if config.baseline is not None
                else None
            )
        self.baseline = baseline

    def _rel_path(self, path: str) -> str:
        rel = os.path.relpath(os.path.abspath(path), self.config.root)
        return rel.replace(os.sep, "/")

    def check_source(self, source: str, rel_path: str) -> list[Finding]:
        """Analyze one in-memory module (the unit the fixture tests use).

        Returns findings with occurrence indices and suppressions applied;
        the baseline is **not** applied (that is a run-level concern).
        """
        lines = source.splitlines()
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Finding(
                    rule=PARSE_ERROR,
                    path=rel_path,
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    snippet=(exc.text or "").strip(),
                )
            ]
        ctx = ModuleContext(
            path=rel_path,
            rel_path=rel_path,
            source=source,
            lines=lines,
            tree=tree,
            imports=ImportMap(tree),
            config=self.config,
        )
        raw: list[Finding] = []
        for rule in self.rules:
            if not self.config.rule_applies(rule.code, rel_path):
                continue
            raw.extend(rule.check(ctx))
        indexed = _assign_occurrences(raw)
        suppressions = parse_suppressions(lines)
        outcome = apply_suppressions(rel_path, lines, indexed, suppressions)
        return sorted(
            outcome.findings + outcome.hygiene,
            key=lambda f: (f.line, f.column, f.rule),
        )

    def check_file(self, path: str) -> list[Finding]:
        rel_path = self._rel_path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            return [
                Finding(
                    rule=PARSE_ERROR,
                    path=rel_path,
                    line=1,
                    column=0,
                    message=f"file is unreadable: {exc}",
                    snippet="",
                )
            ]
        return self.check_source(source, rel_path)

    def run(self, paths: Sequence[str] | None = None) -> AnalysisResult:
        """Analyze ``paths`` (default: the configured paths)."""
        targets = list(paths) if paths else list(self.config.paths)
        files = [
            path
            for path in _discover(targets, self.config.root)
            if not self.config.exclude
            or not any(
                self._rel_path(path) == ex
                or self._rel_path(path).startswith(ex.rstrip("/") + "/")
                for ex in self.config.exclude
            )
        ]
        findings: list[Finding] = []
        for path in files:
            findings.extend(self.check_file(path))
        stale: list[str] = []
        baseline_path = None
        if self.baseline is not None:
            findings = self.baseline.apply(findings)
            stale = self.baseline.stale_fingerprints(findings)
            baseline_path = self.baseline.path
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        return AnalysisResult(
            findings=findings,
            files_checked=len(files),
            stale_baseline=stale,
            baseline_path=baseline_path,
            rule_codes=tuple(rule.code for rule in self.rules),
        )
