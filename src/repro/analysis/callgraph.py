"""Project-wide call graph: resolution, summaries, fixpoint propagation.

The local pass (:mod:`repro.analysis.dataflow`) leaves every call site
as an unresolved *reference* — ``local:helper``, ``import:repro.cost.
base.CostModel.plan_cost``, ``self:Class.method``, ``method:step``.
This module resolves those references against the whole project's fact
set and propagates effect summaries transitively to a fixpoint, so a
rule can ask "is anything reachable from here impure / blocking /
raising X?" and get an answer with a concrete witness chain.

Resolution is deliberately conservative (over-approximate):

* ``import:`` references chase re-exports through ``__init__`` modules,
  so ``from repro.cost import extend_state`` lands on
  ``repro.cost.incremental.extend_state``;
* ``self:`` calls dispatch virtually — to the method on the class, its
  name-based ancestors (inherited implementation), *and* every
  name-based subclass (overrides), because the receiver's runtime type
  is any of them;
* ``method:`` calls on untyped receivers fan out to every project class
  defining that method (minus a builtin-container denylist applied at
  extraction time);
* ``registry:`` calls — the lazy-factory pattern in
  ``repro.core.combinations`` — edge to every callable registered into
  the registry dict at module level.

Everything is iterated in sorted order, so two runs over the same file
set produce identical summaries, witnesses, and therefore reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.dataflow import (
    EFFECT_KINDS,
    GLOBAL_WRITE,
    PARAM_MUTATION,
    CallSite,
    FunctionFacts,
    ModuleFacts,
)

#: Cap on witness-chain reconstruction (cycles in mutual recursion).
_MAX_CHAIN = 12


@dataclass(frozen=True)
class Witness:
    """Why a function has an effect: a site in its *own* source file.

    For a direct effect the site is the offending expression; for an
    inherited one it is the call that reaches it, and ``via`` names the
    callee whose witness continues the chain.
    """

    line: int
    snippet: str
    detail: str
    via: str | None = None  # callee function id, None for direct effects


@dataclass
class FunctionNode:
    """One function in the resolved graph."""

    fid: str  # e.g. "repro.cost.base.CostModel.plan_cost"
    module: str
    rel_path: str
    facts: FunctionFacts
    #: Resolved outgoing edges: (call site, sorted target fids).
    edges: list[tuple[CallSite, tuple[str, ...]]] = field(default_factory=list)


class CallGraph:
    """The resolved project: functions, edges, and fixpoint summaries."""

    def __init__(self, modules: Mapping[str, ModuleFacts]) -> None:
        #: rel_path → facts, in sorted path order everywhere below.
        self.modules: dict[str, ModuleFacts] = dict(sorted(modules.items()))
        self.by_module_name: dict[str, ModuleFacts] = {}
        for facts in self.modules.values():
            self.by_module_name[facts.module] = facts
        self.functions: dict[str, FunctionNode] = {}
        self._index_functions()
        self._index_classes()
        self._resolve_edges()
        self._propagate()

    # ------------------------------------------------------------------
    # Indexing

    def _index_functions(self) -> None:
        for rel_path, facts in self.modules.items():
            for qualname, function in sorted(facts.functions.items()):
                fid = f"{facts.module}.{qualname}"
                self.functions[fid] = FunctionNode(
                    fid=fid,
                    module=facts.module,
                    rel_path=rel_path,
                    facts=function,
                )

    def _index_classes(self) -> None:
        #: class name → [(module, class name)] for name-based hierarchy.
        self.classes: dict[str, list[tuple[str, str]]] = {}
        #: method name → sorted fids of every class method with that name.
        self.methods_by_name: dict[str, list[str]] = {}
        #: (module, class) → {method name → fid}.
        self.class_methods: dict[tuple[str, str], dict[str, str]] = {}
        #: class name → subclass names (one name-based step).
        self.subclasses: dict[str, set[str]] = {}
        self.bases: dict[str, set[str]] = {}
        for facts in self.modules.values():
            for cls_name, info in sorted(facts.classes.items()):
                self.classes.setdefault(cls_name, []).append(
                    (facts.module, cls_name)
                )
                for base in info["bases"]:
                    self.subclasses.setdefault(base, set()).add(cls_name)
                    self.bases.setdefault(cls_name, set()).add(base)
                methods: dict[str, str] = {}
                for method in info["methods"]:
                    fid = f"{facts.module}.{cls_name}.{method}"
                    if fid in self.functions:
                        methods[method] = fid
                        self.methods_by_name.setdefault(method, []).append(fid)
                self.class_methods[(facts.module, cls_name)] = methods
        for name in self.methods_by_name:
            self.methods_by_name[name] = sorted(
                set(self.methods_by_name[name])
            )

    def _class_closure(self, cls_name: str, direction: str) -> set[str]:
        """Name-based transitive closure over sub- or superclasses."""
        table = self.subclasses if direction == "down" else self.bases
        seen: set[str] = {cls_name}
        frontier = [cls_name]
        while frontier:
            current = frontier.pop()
            for neighbor in sorted(table.get(current, ())):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    # ------------------------------------------------------------------
    # Reference resolution

    def resolve_ref(self, owner: ModuleFacts, ref: str) -> tuple[str, ...]:
        """All function ids a reference may denote (sorted, maybe empty)."""
        kind, _, rest = ref.partition(":")
        if kind == "local":
            return self._resolve_dotted(f"{owner.module}.{rest}")
        if kind == "import":
            return self._resolve_dotted(rest)
        if kind == "self":
            cls_name, _, method = rest.rpartition(".")
            return self._resolve_virtual(cls_name, method)
        if kind == "typed":
            class_ref, _, method = rest.rpartition(".")
            return self._resolve_typed(owner, class_ref, method)
        if kind == "method":
            return tuple(self.methods_by_name.get(rest, ()))
        if kind == "registry":
            targets: set[str] = set()
            for registered in owner.registries.get(rest, ()):
                targets.update(self.resolve_ref(owner, registered))
            return tuple(sorted(targets))
        return ()

    def _resolve_dotted(self, dotted: str, depth: int = 0) -> tuple[str, ...]:
        """Resolve a dotted origin to function ids, chasing re-exports."""
        if depth > 8:
            return ()
        if dotted in self.functions:
            return (dotted,)
        # Class constructor: Module.Class → Module.Class.__init__.
        init = f"{dotted}.__init__"
        if init in self.functions:
            return (init,)
        # Maybe Module.Class with no explicit __init__, or Class.method
        # spelled through an alias: find the longest module prefix and
        # chase the next component through that module's import map.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:cut])
            module = self.by_module_name.get(module_name)
            if module is None:
                continue
            head, rest = parts[cut], parts[cut + 1 :]
            # A name re-exported by this module?
            origin = module.imports.get(head)
            if origin is not None:
                return self._resolve_dotted(
                    ".".join([origin] + rest), depth + 1
                )
            # A class defined here, method named in the tail?
            if head in module.classes and rest:
                return self._resolve_member(
                    module.module, head, ".".join(rest)
                )
            return ()
        return ()

    def _resolve_member(
        self, module_name: str, cls_name: str, member: str
    ) -> tuple[str, ...]:
        methods = self.class_methods.get((module_name, cls_name), {})
        fid = methods.get(member)
        if fid is not None:
            return (fid,)
        # Inherited: walk name-based ancestors.
        for ancestor in sorted(self._class_closure(cls_name, "up") - {cls_name}):
            for ancestor_module, ancestor_cls in self.classes.get(ancestor, ()):
                fid = self.class_methods.get(
                    (ancestor_module, ancestor_cls), {}
                ).get(member)
                if fid is not None:
                    return (fid,)
        return ()

    def _resolve_virtual(
        self, cls_name: str, method: str
    ) -> tuple[str, ...]:
        """``self.method()``: the class, its ancestors, and its overrides."""
        targets: set[str] = set()
        for candidate in sorted(
            self._class_closure(cls_name, "down")
            | self._class_closure(cls_name, "up")
        ):
            for module_name, candidate_cls in self.classes.get(candidate, ()):
                fid = self.class_methods.get(
                    (module_name, candidate_cls), {}
                ).get(method)
                if fid is not None:
                    targets.add(fid)
        return tuple(sorted(targets))

    def _resolve_typed(
        self, owner: ModuleFacts, class_ref: str, method: str
    ) -> tuple[str, ...]:
        kind, _, rest = class_ref.partition(":")
        if kind == "local":
            return self._resolve_member(owner.module, rest, method)
        if kind == "import":
            resolved = self._resolve_dotted(f"{rest}.{method}")
            if resolved:
                return resolved
            # The class path may point at a re-export; fall back to the
            # bare class name if the project defines exactly one.
            cls_name = rest.rpartition(".")[2]
            locations = self.classes.get(cls_name, [])
            if len(locations) == 1:
                return self._resolve_member(*locations[0], method)
        return ()

    # ------------------------------------------------------------------
    # Edges

    def _resolve_edges(self) -> None:
        for fid in sorted(self.functions):
            node = self.functions[fid]
            owner = self.by_module_name[node.module]
            for site in node.facts.calls:
                targets = self.resolve_ref(owner, site.ref)
                targets = tuple(t for t in targets if t != fid)
                if targets:
                    node.edges.append((site, targets))

    # ------------------------------------------------------------------
    # Fixpoint propagation

    def _propagate(self) -> None:
        #: fid → {effect kind → Witness}
        self.summaries: dict[str, dict[str, Witness]] = {}
        #: fid → {exception name → Witness}
        self.raise_summaries: dict[str, dict[str, Witness]] = {}
        #: fid → {mutated parameter name → Witness} — the per-parameter
        #: refinement behind PARAM_MUTATION: a callee mutating its own
        #: ``self`` (e.g. any ``__init__``) only taints a caller whose
        #: *operand* bound to that parameter is itself a parameter or a
        #: module global.
        self.mutated_params: dict[str, dict[str, Witness]] = {}
        #: fids whose return value is (possibly) an unordered iterable.
        self.unordered: set[str] = set()

        for fid in sorted(self.functions):
            node = self.functions[fid]
            effects: dict[str, Witness] = {}
            mutated: dict[str, Witness] = {}
            for site in node.facts.effects:
                witness = Witness(
                    line=site.line,
                    snippet=site.snippet,
                    detail=site.detail,
                )
                if site.kind not in effects:
                    effects[site.kind] = witness
                if site.kind == PARAM_MUTATION and site.subject:
                    mutated.setdefault(site.subject, witness)
            self.summaries[fid] = effects
            self.mutated_params[fid] = mutated
            raises: dict[str, Witness] = {}
            for raise_site in node.facts.raises:
                if raise_site.name not in raises:
                    raises[raise_site.name] = Witness(
                        line=raise_site.line,
                        snippet=raise_site.snippet,
                        detail=f"raise {raise_site.name}",
                    )
            self.raise_summaries[fid] = raises
            if node.facts.returns_unordered:
                self.unordered.add(fid)

        changed = True
        while changed:
            changed = False
            for fid in sorted(self.functions):
                node = self.functions[fid]
                owner = self.by_module_name[node.module]
                effects = self.summaries[fid]
                raises = self.raise_summaries[fid]
                for site, targets in node.edges:
                    for target in targets:
                        changed |= self._absorb(
                            fid, effects, raises, site, target
                        )
                # Unordered-return propagation through `return f(...)`.
                if fid not in self.unordered:
                    for ref in node.facts.returned_refs:
                        for target in self.resolve_ref(owner, ref):
                            if target in self.unordered:
                                self.unordered.add(fid)
                                changed = True
                                break

    def _map_operands(self, site: CallSite, target: str) -> dict[str, str]:
        """Callee parameter name → encoded root of the operand bound to it.

        The receiver (when the call has one) binds the callee's first
        parameter on a method; positional operands bind the following
        positional parameters; keywords bind by name.  A parameter with
        no mapped operand (constructor ``self``, defaulted parameter,
        operand past a ``*args`` splat) is simply absent.
        """
        node = self.functions[target]
        params = node.facts.params
        mapping: dict[str, str] = {}
        offset = 0
        if (
            node.facts.class_name is not None
            and params
            and params[0] in ("self", "cls")
        ):
            offset = 1
            if site.receiver_root is not None:
                mapping[params[0]] = site.receiver_root
        n_positional = node.facts.n_positional or len(params)
        for index, root in enumerate(site.arg_roots):
            slot = offset + index
            if slot >= n_positional:
                break
            mapping.setdefault(params[slot], root)
        for name, root in site.kwarg_roots:
            mapping.setdefault(name, root)
        return mapping

    def _absorb(
        self,
        fid: str,
        effects: dict[str, Witness],
        raises: dict[str, Witness],
        site: CallSite,
        target: str,
    ) -> bool:
        changed = False
        target_effects = self.summaries.get(target, {})
        target_mutated = self.mutated_params.get(target, {})
        if target_mutated:
            # Mutating *your own* argument is only the caller's problem
            # when the caller handed over state it does not own: map each
            # mutated callee parameter onto the operand bound to it.  A
            # parameter-rooted operand stays a parameter mutation, a
            # global-rooted one becomes a global write, and anything else
            # (fresh objects, locals) stops here.
            mapping = self._map_operands(site, target)
            mutated = self.mutated_params.setdefault(fid, {})
            for param in sorted(target_mutated):
                root = mapping.get(param)
                if not root:
                    continue
                klass, _, name = root.partition(":")
                if klass == "param" and name not in mutated:
                    witness = Witness(
                        line=site.line,
                        snippet=site.snippet,
                        detail=(
                            f"passes parameter {name!r} to {target}, "
                            f"which mutates it"
                        ),
                        via=target,
                    )
                    mutated[name] = witness
                    effects.setdefault(PARAM_MUTATION, witness)
                    changed = True
                elif klass == "global" and GLOBAL_WRITE not in effects:
                    effects[GLOBAL_WRITE] = Witness(
                        line=site.line,
                        snippet=site.snippet,
                        detail=(
                            f"passes module-level {name!r} to {target}, "
                            f"which mutates it"
                        ),
                        via=target,
                    )
                    changed = True
        for kind in EFFECT_KINDS:
            if kind not in target_effects or kind == PARAM_MUTATION:
                continue
            if kind not in effects:
                effects[kind] = Witness(
                    line=site.line,
                    snippet=site.snippet,
                    detail=f"calls {target}",
                    via=target,
                )
                changed = True
        for name in sorted(self.raise_summaries.get(target, {})):
            if name in site.caught or "*" in site.caught:
                continue
            if name not in raises:
                raises[name] = Witness(
                    line=site.line,
                    snippet=site.snippet,
                    detail=f"calls {target}",
                    via=target,
                )
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Queries (the rule-facing API)

    def functions_named(self, name: str) -> list[str]:
        """Sorted fids of every function/method with the bare name."""
        return sorted(
            fid
            for fid, node in self.functions.items()
            if node.facts.name == name
        )

    def effect_chain(self, fid: str, kind: str) -> list[str]:
        """The witness chain for an effect: [fid, callee, ..., origin]."""
        chain = [fid]
        current = fid
        for _ in range(_MAX_CHAIN):
            witness = self.summaries.get(current, {}).get(kind)
            if witness is None or witness.via is None:
                break
            if witness.via in chain:
                break
            chain.append(witness.via)
            current = witness.via
        return chain

    def raise_chain(self, fid: str, name: str) -> list[str]:
        chain = [fid]
        current = fid
        for _ in range(_MAX_CHAIN):
            witness = self.raise_summaries.get(current, {}).get(name)
            if witness is None or witness.via is None:
                break
            if witness.via in chain:
                break
            chain.append(witness.via)
            current = witness.via
        return chain

    def reachable_from(
        self, roots: Iterable[str]
    ) -> dict[str, tuple[str, ...]]:
        """BFS over edges: fid → path from the nearest root (inclusive)."""
        paths: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for root in sorted(set(roots)):
            if root in self.functions and root not in paths:
                paths[root] = (root,)
                frontier.append(root)
        while frontier:
            current = frontier.pop(0)
            for _site, targets in self.functions[current].edges:
                for target in targets:
                    if target not in paths:
                        paths[target] = paths[current] + (target,)
                        frontier.append(target)
        return paths

    def dispatch_roots(self) -> dict[str, list[str]]:
        """rel_path → resolved pool-dispatch target fids in that module."""
        roots: dict[str, list[str]] = {}
        for rel_path, facts in self.modules.items():
            resolved: set[str] = set()
            for ref in facts.dispatch_targets:
                resolved.update(self.resolve_ref(facts, ref))
            if resolved:
                roots[rel_path] = sorted(resolved)
        return roots

    def describe_chain(self, chain: list[str]) -> str:
        """Human-readable arrow chain with the final witness detail."""
        if not chain:
            return ""
        text = " -> ".join(chain)
        last = chain[-1]
        kinds = self.summaries.get(last, {})
        return text if kinds is not None else text


def build_callgraph(modules: Mapping[str, ModuleFacts]) -> CallGraph:
    """Resolve and summarize the project's modules (the global pass)."""
    return CallGraph(modules)
