"""Checked-in baseline: grandfathered findings that do not fail the run.

The baseline is a JSON file mapping finding fingerprints (which are
line-number free — see :class:`repro.analysis.findings.Finding`) to a
human-readable record of what was grandfathered.  Findings whose
fingerprint appears in the baseline are reported as ``baselined`` and do
not affect the exit code; fixing the underlying code makes the entry
*stale*, which the engine reports so the baseline only ever shrinks.

``python -m repro.analysis --write-baseline`` rewrites the file from the
current unsuppressed findings (sorted, stable diffs).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """The set of grandfathered fingerprints, with display metadata."""

    entries: dict[str, dict[str, object]] = field(default_factory=dict)
    path: str | None = None

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not os.path.isfile(path):
            return cls(entries={}, path=path)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if (
            not isinstance(document, dict)
            or document.get("version") != BASELINE_VERSION
            or not isinstance(document.get("findings"), dict)
        ):
            raise ValueError(
                f"{path} is not a detlint baseline "
                f"(expected version {BASELINE_VERSION})"
            )
        return cls(entries=dict(document["findings"]), path=path)

    @classmethod
    def from_findings(
        cls, findings: list[Finding], path: str | None = None
    ) -> "Baseline":
        """A baseline grandfathering every finding that currently counts."""
        entries: dict[str, dict[str, object]] = {}
        for finding in findings:
            if finding.suppressed:
                continue
            entries[finding.fingerprint] = {
                "rule": finding.rule,
                "path": finding.path,
                "snippet": finding.snippet,
                "message": finding.message,
            }
        return cls(entries=entries, path=path)

    def save(self, path: str | None = None) -> str:
        target = path or self.path
        if target is None:
            raise ValueError("no baseline path to save to")
        document = {
            "version": BASELINE_VERSION,
            "findings": {
                fingerprint: self.entries[fingerprint]
                for fingerprint in sorted(self.entries)
            },
        }
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target

    def apply(self, findings: list[Finding]) -> list[Finding]:
        """Mark findings whose fingerprint is grandfathered."""
        return [
            finding.with_status(baselined=True)
            if finding.fingerprint in self.entries and not finding.suppressed
            else finding
            for finding in findings
        ]

    def stale_fingerprints(self, findings: list[Finding]) -> list[str]:
        """Entries no current finding matches — fixed code, prune them."""
        live = {finding.fingerprint for finding in findings}
        return sorted(set(self.entries) - live)

    def __len__(self) -> int:
        return len(self.entries)
