"""Configuration: ``[tool.detlint]`` in ``pyproject.toml``.

The loader prefers :mod:`tomllib` (Python 3.11+) and falls back to
``tomli`` when present.  On interpreters with neither (a bare 3.10
environment), it falls back to :data:`DEFAULT_TOOL_TABLE` — a built-in
copy of this repository's own ``[tool.detlint]`` table — so the analyzer
behaves identically everywhere without requiring an install.  A config
parity test asserts the built-in copy never drifts from ``pyproject.toml``.

All paths in the config are POSIX-style and relative to the project root
(the directory holding ``pyproject.toml``).  ``allow`` entries exempt a
file or directory subtree from a rule; ``include`` entries *restrict* a
rule to the listed subtrees (a rule with no ``include`` applies
everywhere).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping

try:  # Python 3.11+
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - py3.10 path
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ModuleNotFoundError:
        _toml = None  # type: ignore[assignment]

#: Built-in copy of this repository's ``[tool.detlint]`` table, used when
#: no TOML parser is available.  Kept in lockstep with ``pyproject.toml``
#: by ``tests/test_analysis_cli.py::test_builtin_config_matches_pyproject``.
DEFAULT_TOOL_TABLE: dict[str, Any] = {
    "paths": ["src"],
    "baseline": "detlint-baseline.json",
    "cache": ".detlint-cache.json",
    "exclude": [],
    "rules": {
        "DET001": {"allow": ["src/repro/utils/rng.py"]},
        "DET002": {
            "allow": [
                "src/repro/core/budget.py",
                "src/repro/cost/calibration.py",
                "src/repro/obs/wallclock.py",
            ],
            "verified_clean": ["src/repro/obs"],
        },
        "DET003": {
            "include": [
                "src/repro/core",
                "src/repro/cost",
                "src/repro/obs",
                "src/repro/parallel",
                "src/repro/robustness/estimates.py",
                "src/repro/robustness/harness.py",
                "src/repro/robustness/feedback.py",
            ]
        },
        "DET004": {"include": ["src/repro/parallel"]},
        "OVF001": {
            "include": ["src/repro/cost"],
            "guards": ["clamp_cardinality", "join_result_cardinality"],
            "bound_names": ["MAX_CARDINALITY"],
        },
        "PURE001": {
            "include": ["src/repro/core", "src/repro/cost"],
            "entrypoints": [
                "batch_plan_cost",
                "extend_state",
                "plan_cost",
                "price_batch",
            ],
        },
        "DET005": {
            "include": [
                "src/repro/core",
                "src/repro/cost",
                "src/repro/obs",
                "src/repro/parallel",
            ]
        },
        "RACE001": {"include": ["src/repro/parallel"]},
        "EXC002": {
            "include": ["src/repro/core", "src/repro/cost"],
            "contracts": {
                "CostModel.plan_cost": [
                    "CostOverflowError",
                    "InjectedFault",
                    "ValueError",
                ],
                "cost.incremental.extend_state": ["CostOverflowError"],
                "vectorized.batch_plan_cost": ["InjectedFault", "ValueError"],
                "BatchEvaluator.price_batch": ["InjectedFault", "ValueError"],
                "core.optimizer.optimize": [
                    "BudgetExhausted",
                    "CostOverflowError",
                    "InjectedFault",
                    "KeyError",
                    "NoValidPlanError",
                    "PlanVerificationError",
                    "TypeError",
                    "ValueError",
                ],
            },
        },
    },
}


def _normalize(path: str) -> str:
    return path.replace(os.sep, "/").strip("/")


def path_matches(rel_path: str, prefixes: list[str]) -> bool:
    """True when ``rel_path`` is one of ``prefixes`` or inside one."""
    rel = _normalize(rel_path)
    for prefix in prefixes:
        pref = _normalize(prefix)
        if rel == pref or rel.startswith(pref + "/"):
            return True
    return False


@dataclass(frozen=True)
class DetlintConfig:
    """Resolved configuration for one analyzer run."""

    root: str  # absolute project root
    paths: tuple[str, ...] = ("src",)
    baseline: str | None = "detlint-baseline.json"
    #: Summary-cache path (relative to root); None disables caching.
    cache: str | None = ".detlint-cache.json"
    exclude: tuple[str, ...] = ()
    rule_options: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict
    )
    #: Where the table came from: "pyproject", "builtin", or "explicit".
    source: str = "builtin"

    def options_for(self, rule_code: str) -> Mapping[str, Any]:
        return self.rule_options.get(rule_code, {})

    def rule_applies(self, rule_code: str, rel_path: str) -> bool:
        """Apply per-rule ``include`` (restrict) and ``allow`` (exempt)."""
        options = self.options_for(rule_code)
        include = list(options.get("include", []))
        if include and not path_matches(rel_path, include):
            return False
        allow = list(options.get("allow", []))
        if allow and path_matches(rel_path, allow):
            return False
        return True


class ConfigError(ValueError):
    """The ``[tool.detlint]`` table is malformed."""


def find_project_root(start: str) -> str:
    """Walk upward from ``start`` to the nearest ``pyproject.toml``."""
    current = os.path.abspath(start)
    while True:
        if os.path.isfile(os.path.join(current, "pyproject.toml")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return os.path.abspath(start)
        current = parent


def _read_tool_table(pyproject_path: str) -> dict[str, Any] | None:
    """The ``[tool.detlint]`` table, or None when unreadable/absent."""
    if _toml is None or not os.path.isfile(pyproject_path):
        return None
    with open(pyproject_path, "rb") as handle:
        try:
            document = _toml.load(handle)
        except _toml.TOMLDecodeError as exc:
            raise ConfigError(f"invalid TOML in {pyproject_path}: {exc}")
    table = document.get("tool", {}).get("detlint")
    if table is None:
        return None
    if not isinstance(table, dict):
        raise ConfigError("[tool.detlint] must be a table")
    return table


def config_from_table(
    table: Mapping[str, Any], root: str, source: str
) -> DetlintConfig:
    """Validate and freeze one ``[tool.detlint]`` table."""
    known = {"paths", "baseline", "cache", "exclude", "rules"}
    unknown = sorted(set(table) - known)
    if unknown:
        raise ConfigError(
            f"unknown [tool.detlint] keys: {', '.join(unknown)}"
        )
    paths = table.get("paths", ["src"])
    if not isinstance(paths, list) or not all(
        isinstance(p, str) for p in paths
    ):
        raise ConfigError("[tool.detlint] paths must be a list of strings")
    baseline = table.get("baseline", "detlint-baseline.json")
    if baseline is not None and not isinstance(baseline, str):
        raise ConfigError("[tool.detlint] baseline must be a string")
    cache = table.get("cache", ".detlint-cache.json")
    if cache is not None and not isinstance(cache, str):
        raise ConfigError("[tool.detlint] cache must be a string")
    if cache == "":  # TOML has no null: empty string disables caching
        cache = None
    exclude = table.get("exclude", [])
    if not isinstance(exclude, list) or not all(
        isinstance(p, str) for p in exclude
    ):
        raise ConfigError("[tool.detlint] exclude must be a list of strings")
    rules = table.get("rules", {})
    if not isinstance(rules, dict):
        raise ConfigError("[tool.detlint.rules] must be a table")
    rule_options: dict[str, dict[str, Any]] = {}
    for code, options in rules.items():
        if not isinstance(options, dict):
            raise ConfigError(f"[tool.detlint.rules.{code}] must be a table")
        rule_options[str(code)] = dict(options)
    return DetlintConfig(
        root=os.path.abspath(root),
        paths=tuple(paths),
        baseline=baseline,
        cache=cache,
        exclude=tuple(exclude),
        rule_options=rule_options,
        source=source,
    )


def load_config(
    start: str = ".", explicit_pyproject: str | None = None
) -> DetlintConfig:
    """Load the config for a run rooted at (or above) ``start``.

    ``explicit_pyproject`` pins the file (CLI ``--config``); otherwise the
    nearest ``pyproject.toml`` above ``start`` is used, and the built-in
    table is the fallback when no TOML parser or no table is available.
    """
    if explicit_pyproject is not None:
        root = os.path.dirname(os.path.abspath(explicit_pyproject)) or "."
        table = _read_tool_table(explicit_pyproject)
        if table is None:
            raise ConfigError(
                f"no readable [tool.detlint] table in {explicit_pyproject}"
                + ("" if _toml is not None else " (no TOML parser available)")
            )
        return config_from_table(table, root, "explicit")
    root = find_project_root(start)
    table = _read_tool_table(os.path.join(root, "pyproject.toml"))
    if table is not None:
        return config_from_table(table, root, "pyproject")
    return config_from_table(DEFAULT_TOOL_TABLE, root, "builtin")
