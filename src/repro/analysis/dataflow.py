"""Local dataflow: per-module fact extraction for the call-graph pass.

This module answers one question per source file, in isolation: *what
does each function in this file do, syntactically?*  The answers —
:class:`FunctionFacts` records holding direct effect sites, outgoing
call sites, raise sites, and return shapes — are pure functions of the
file's bytes, which is what makes the content-hash summary cache sound:
a file whose hash is unchanged contributes byte-identical facts, so only
the (cheap) global resolution and fixpoint need to re-run on a warm
lint.

Everything project-wide — resolving a call site to the function it
names, propagating effects transitively, deciding whether a summary
violates a rule — lives in :mod:`repro.analysis.callgraph` and
:mod:`repro.analysis.rules_interproc`.  Nothing here looks at more than
one module.

The extraction is deliberately conservative in both directions:

* effects are recorded only for *syntactically certain* sites (a call
  resolving through the import map to ``time.sleep`` blocks; ``x.f()``
  on an untyped receiver is merely a dispatch edge), so a finding always
  has a concrete witness line;
* call edges over-approximate (an untyped method call fans out to every
  project class defining that method), so "transitively free of X"
  claims stay claims about every possible callee.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

# ---------------------------------------------------------------------------
# Shared syntactic tables (rules.py imports these; dataflow must not
# import rules, so the shared vocabulary lives here).


#: Wall-clock reading APIs (DET002 and the ``clock`` effect).
WALL_CLOCK_APIS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: RNG constructors that are deterministic *when given a seed argument*.
SEEDED_RNG_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
    "numpy.random.SeedSequence",
}

#: Exact dotted origins that perform IO (the purity-relevant subset).
IO_APIS = {
    "json.dump",
    "pickle.dump",
    "pickle.dumps",  # not IO, but environment-dependent for some types
    "os.remove",
    "os.unlink",
    "os.rename",
    "os.replace",
    "os.mkdir",
    "os.makedirs",
    "os.rmdir",
    "tempfile.mkstemp",
    "tempfile.mkdtemp",
    "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryDirectory",
    "shutil.copy",
    "shutil.copyfile",
    "shutil.copytree",
    "shutil.move",
    "shutil.rmtree",
}
# pickle.dumps removed: serialization is deterministic for the types the
# repo pickles and flagging it would poison the parallel orchestrator.
IO_APIS.discard("pickle.dumps")

#: Dotted-origin *prefixes* whose every member blocks (ASYNC001).
BLOCKING_PREFIXES = (
    "subprocess.",
    "socket.",
    "requests.",
    "urllib.request.",
    "http.client.",
)

#: Exact dotted origins that block the calling thread (ASYNC001).
BLOCKING_APIS = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.wait",
    "os.waitpid",
    "select.select",
    "signal.pause",
} | IO_APIS

#: Builtins that perform IO when called by bare name.
IO_BUILTINS = {"open", "input", "print"}

#: Builtins that block (``print`` excluded: console writes are not the
#: kind of stall ASYNC001 hunts, and flagging it would be pure noise).
BLOCKING_BUILTINS = {"open", "input"}

#: Method names that mutate their receiver in-place (builtin containers).
MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
    "sort",
    "reverse",
    "appendleft",
    "write",
    "writelines",
}

#: Attribute names never treated as project-method dispatch: they are
#: overwhelmingly builtin container/str/file operations, and fanning out
#: on them would wire every function to every same-named project method.
DISPATCH_DENYLIST = MUTATING_METHODS | {
    "get",
    "keys",
    "values",
    "items",
    "copy",
    "join",
    "split",
    "rsplit",
    "strip",
    "lstrip",
    "rstrip",
    "startswith",
    "endswith",
    "format",
    "replace",
    "encode",
    "decode",
    "lower",
    "upper",
    "index",
    "count",
    "read",
    "readline",
    "readlines",
    "close",
    "flush",
    "submit",
    "result",
    "shutdown",
    "bit_count",
    "bit_length",
    "isoformat",
}

#: Ordered consumers for DET003/DET005 (``sorted`` is deliberately
#: absent: wrapping in sorted() is the *fix*).
ORDERED_CONSUMERS = {"list", "tuple", "enumerate", "min", "max"}


# ---------------------------------------------------------------------------
# Import resolution (moved here from rules.py so both layers share it)


class ImportMap:
    """Local-name → dotted-origin resolution for one module.

    ``import numpy as np`` maps ``np`` to ``numpy``;
    ``from random import shuffle as sh`` maps ``sh`` to
    ``random.shuffle``; attribute chains resolve through the map, so
    ``np.random.seed`` resolves to ``numpy.random.seed``.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else local
                    self.names[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import: project-internal
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a Name/Attribute chain, or None."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        origin = self.names.get(current.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# Unordered-expression classification (shared with DET003)


def own_scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def is_unordered_expr(
    node: ast.AST, tainted: frozenset[str] = frozenset()
) -> bool:
    """Syntactically-certain unordered iterables.

    Sets, set comprehensions, ``set()``/``frozenset()`` calls, set
    algebra, ``.keys()`` views — plus, given a taint set, names proven
    to be bound to unordered values and hash-ordered views
    (``.items()``/``.values()``/``.keys()``) over such names.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "keys",
            "values",
            "items",
        ):
            # Dict views are insertion-ordered, but insertion order is
            # itself hash order whenever the dict was built from an
            # unordered source — which the taint set proves.
            if func.attr == "keys":
                return True
            return (
                isinstance(func.value, ast.Name) and func.value.id in tainted
            )
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_unordered_expr(node.left, tainted) or is_unordered_expr(
            node.right, tainted
        )
    return False


def _assignment_values(scope: ast.AST) -> dict[str, list[ast.AST] | None]:
    """Every single-Name assignment in a scope; ``None`` marks 'unknown'.

    A name is only taintable when *every* binding we can see is a value
    expression — loop targets, ``with ... as``, aug-assigns, tuple
    unpacking, and ``global``/``nonlocal`` all poison it to unknown, so
    the taint analysis stays conservative toward *not* flagging.
    """
    values: dict[str, list[ast.AST] | None] = {}

    def poison(name: str) -> None:
        values[name] = None

    def record(name: str, value: ast.AST) -> None:
        existing = values.get(name, [])
        if existing is not None:
            existing.append(value)
            values[name] = existing

    # A parameter default is a visible binding: ``def f(tags=frozenset(
    # {...}))`` declares an unordered expected type, so iterating ``tags``
    # orderly is flagged even though the caller could pass anything.
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = scope.args
        positional = list(args.posonlyargs) + list(args.args)
        defaulted = positional[len(positional) - len(args.defaults) :]
        for arg, default in zip(defaulted, args.defaults):
            record(arg.arg, default)
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                record(arg.arg, kw_default)

    for node in own_scope_walk(scope):
        if isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                record(node.targets[0].id, node.value)
            else:
                for target in node.targets:
                    for inner in ast.walk(target):
                        if isinstance(inner, ast.Name):
                            poison(inner.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                if node.value is not None:
                    record(node.target.id, node.value)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                poison(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for inner in ast.walk(node.target):
                if isinstance(inner, ast.Name):
                    poison(inner.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            for name in node.names:
                poison(name)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for inner in ast.walk(item.optional_vars):
                        if isinstance(inner, ast.Name):
                            poison(inner.id)
    return values


def unordered_tainted_names(scope: ast.AST) -> frozenset[str]:
    """Names in a scope whose every visible binding is an unordered value.

    Runs to a (tiny) fixpoint so second-order taint is caught: a dict
    comprehension over a tainted set taints the dict, whose ``.items()``
    view is then hash-ordered too.  Rebinding a name to anything ordered
    (``xs = sorted(xs)``) removes it from the set entirely.
    """
    values = _assignment_values(scope)
    tainted: frozenset[str] = frozenset()
    while True:
        new = set(tainted)
        for name, bindings in sorted(values.items()):
            if bindings is None or not bindings or name in new:
                continue
            if all(_taints(value, frozenset(new)) for value in bindings):
                new.add(name)
        if frozenset(new) == tainted:
            return tainted
        tainted = frozenset(new)


def _taints(value: ast.AST, tainted: frozenset[str]) -> bool:
    """Does binding a name to ``value`` make that name unordered?"""
    if is_unordered_expr(value, tainted):
        return True
    if isinstance(value, ast.DictComp):
        return any(
            is_unordered_expr(gen.iter, tainted) for gen in value.generators
        )
    if isinstance(value, ast.Call):
        func = value.func
        if (
            isinstance(func, ast.Name)
            and func.id == "dict"
            and value.args
            and is_unordered_expr(value.args[0], tainted)
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# Fact records (all JSON round-trippable for the summary cache)


#: Effect kinds (the vocabulary the fixpoint propagates).
RNG = "rng"
CLOCK = "clock"
IO = "io"
BLOCKING = "blocking"
GLOBAL_WRITE = "global-write"
PARAM_MUTATION = "param-mutation"

EFFECT_KINDS = (RNG, CLOCK, IO, BLOCKING, GLOBAL_WRITE, PARAM_MUTATION)


@dataclass(frozen=True)
class EffectSite:
    """One direct effect with its witness location.

    ``subject`` names what the effect acts on when that matters for
    propagation: for :data:`PARAM_MUTATION` it is the mutated parameter,
    so the call-graph pass can map it onto the caller's operands instead
    of assuming every argument is at risk.
    """

    kind: str
    line: int
    snippet: str
    detail: str
    subject: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "line": self.line,
            "snippet": self.snippet,
            "detail": self.detail,
            "subject": self.subject,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "EffectSite":
        return cls(
            kind=data["kind"],
            line=data["line"],
            snippet=data["snippet"],
            detail=data["detail"],
            subject=data.get("subject", ""),
        )


@dataclass(frozen=True)
class CallSite:
    """One outgoing call edge, unresolved (a *reference*, not a target).

    ``ref`` encodes what the resolver needs:

    * ``local:<name>`` — module-level function/class in the same module;
    * ``import:<dotted>`` — resolved through the import map;
    * ``self:<Class>.<method>`` — method call on ``self``;
    * ``typed:<dotted-class>.<method>`` — receiver's class is known from
      a constructor assignment or annotation in the same scope;
    * ``method:<name>`` — untyped method dispatch (fans out to every
      project class defining ``<name>``);
    * ``registry:<name>`` — a call through a lazy-factory registry dict.
    """

    ref: str
    line: int
    snippet: str
    #: Exception names caught by enclosing ``try`` blocks at this site
    #: ("*" = a catch-all handler).
    caught: tuple[str, ...] = ()
    #: Encoded root of the receiver (``"param:graph"``, ``"global:_C"``,
    #: ``"local:x"``), ``""`` when the receiver has no name root, or
    #: ``None`` when the call has no receiver at all (plain-name call,
    #: including constructors).  The distinction matters: a constructor
    #: call binds the callee's ``self`` to a *fresh* object, so the
    #: callee mutating ``self`` is invisible to the caller.
    receiver_root: str | None = None
    #: Encoded root per positional argument (``""`` when the operand has
    #: no name root).  Positions after a ``*args`` splat are dropped —
    #: the mapping onto callee parameters would be wrong.
    arg_roots: tuple[str, ...] = ()
    #: Sorted ``(keyword, encoded root)`` pairs.
    kwarg_roots: tuple[tuple[str, str], ...] = ()

    def to_json(self) -> dict[str, Any]:
        return {
            "ref": self.ref,
            "line": self.line,
            "snippet": self.snippet,
            "caught": list(self.caught),
            "receiver_root": self.receiver_root,
            "arg_roots": list(self.arg_roots),
            "kwarg_roots": {name: root for name, root in self.kwarg_roots},
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "CallSite":
        return cls(
            ref=data["ref"],
            line=data["line"],
            snippet=data["snippet"],
            caught=tuple(data["caught"]),
            receiver_root=data.get("receiver_root"),
            arg_roots=tuple(data["arg_roots"]),
            kwarg_roots=tuple(
                sorted(data.get("kwarg_roots", {}).items())
            ),
        )


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise ExceptionName(...)`` not caught locally."""

    name: str
    line: int
    snippet: str

    def to_json(self) -> dict[str, Any]:
        return {"name": self.name, "line": self.line, "snippet": self.snippet}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RaiseSite":
        return cls(
            name=data["name"], line=data["line"], snippet=data["snippet"]
        )


@dataclass(frozen=True)
class OrderedSite:
    """A call whose *result* feeds an ordered construct (DET005).

    If the callee turns out (after summary propagation) to return an
    unordered iterable, this site consumes hash order.
    """

    ref: str
    line: int
    snippet: str
    consumer: str

    def to_json(self) -> dict[str, Any]:
        return {
            "ref": self.ref,
            "line": self.line,
            "snippet": self.snippet,
            "consumer": self.consumer,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "OrderedSite":
        return cls(
            ref=data["ref"],
            line=data["line"],
            snippet=data["snippet"],
            consumer=data["consumer"],
        )


@dataclass
class FunctionFacts:
    """Everything the global pass needs to know about one function."""

    name: str  # bare name
    qualname: str  # e.g. "CostModel.plan_cost" or "helper.<locals>.inner"
    line: int
    is_async: bool
    class_name: str | None
    params: tuple[str, ...]
    #: How many leading entries of ``params`` accept positional binding
    #: (positional-only + regular); the call-graph pass maps positional
    #: call operands onto these and refuses to guess past them.
    n_positional: int = 0
    effects: list[EffectSite] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    raises: list[RaiseSite] = field(default_factory=list)
    #: Return expression is itself a syntactically-unordered iterable.
    returns_unordered: bool = False
    #: Refs returned directly (``return f(...)``) — unordered-ness
    #: propagates through these.
    returned_refs: tuple[str, ...] = ()
    #: Ordered-consumer call sites (DET005 candidates).
    ordered_sites: list[OrderedSite] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "line": self.line,
            "is_async": self.is_async,
            "class_name": self.class_name,
            "params": list(self.params),
            "n_positional": self.n_positional,
            "effects": [site.to_json() for site in self.effects],
            "calls": [site.to_json() for site in self.calls],
            "raises": [site.to_json() for site in self.raises],
            "returns_unordered": self.returns_unordered,
            "returned_refs": list(self.returned_refs),
            "ordered_sites": [site.to_json() for site in self.ordered_sites],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FunctionFacts":
        return cls(
            name=data["name"],
            qualname=data["qualname"],
            line=data["line"],
            is_async=data["is_async"],
            class_name=data["class_name"],
            params=tuple(data["params"]),
            n_positional=data.get("n_positional", 0),
            effects=[EffectSite.from_json(e) for e in data["effects"]],
            calls=[CallSite.from_json(c) for c in data["calls"]],
            raises=[RaiseSite.from_json(r) for r in data["raises"]],
            returns_unordered=data["returns_unordered"],
            returned_refs=tuple(data["returned_refs"]),
            ordered_sites=[
                OrderedSite.from_json(s) for s in data["ordered_sites"]
            ],
        )


@dataclass
class ModuleFacts:
    """The per-module unit the summary cache stores."""

    module: str  # dotted module name, e.g. "repro.cost.base"
    rel_path: str
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    #: class name → (base names, method names) for dispatch resolution.
    classes: dict[str, dict[str, list[str]]] = field(default_factory=dict)
    #: registry name → refs registered into it at module level.
    registries: dict[str, list[str]] = field(default_factory=dict)
    #: refs dispatched to a process pool (``.submit``/``.map`` targets).
    dispatch_targets: list[str] = field(default_factory=list)
    #: local name → dotted origin (the module's import map), kept so the
    #: resolver can chase re-exports through ``__init__`` modules.
    imports: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "rel_path": self.rel_path,
            "imports": dict(sorted(self.imports.items())),
            "functions": {
                name: facts.to_json()
                for name, facts in sorted(self.functions.items())
            },
            "classes": {
                name: {
                    "bases": list(info["bases"]),
                    "methods": list(info["methods"]),
                }
                for name, info in sorted(self.classes.items())
            },
            "registries": {
                name: list(refs)
                for name, refs in sorted(self.registries.items())
            },
            "dispatch_targets": list(self.dispatch_targets),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ModuleFacts":
        return cls(
            module=data["module"],
            rel_path=data["rel_path"],
            imports=dict(data.get("imports", {})),
            functions={
                name: FunctionFacts.from_json(facts)
                for name, facts in data["functions"].items()
            },
            classes={
                name: {
                    "bases": list(info["bases"]),
                    "methods": list(info["methods"]),
                }
                for name, info in data["classes"].items()
            },
            registries={
                name: list(refs)
                for name, refs in data["registries"].items()
            },
            dispatch_targets=list(data["dispatch_targets"]),
        )


# ---------------------------------------------------------------------------
# Extraction


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a POSIX-style relative path.

    ``src/repro/cost/base.py`` → ``repro.cost.base``;
    ``src/repro/cost/__init__.py`` → ``repro.cost``.  Paths outside a
    ``src/`` layout keep their directory spine, which is enough for the
    resolver (module names only need to be *consistent*, not importable).
    """
    path = rel_path
    if path.endswith(".py"):
        path = path[: -len(".py")]
    parts = [part for part in path.split("/") if part]
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "__root__"


def _snippet(lines: Sequence[str], lineno: int) -> str:
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


def _root_name(node: ast.AST) -> str | None:
    """The leftmost Name of an attribute/subscript/call chain."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript, ast.Call)):
        current = (
            current.func if isinstance(current, ast.Call) else current.value
        )
    if isinstance(current, ast.Name):
        return current.id
    return None


def _terminal_identifier(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _ModuleExtractor:
    """One pass over a parsed module, producing :class:`ModuleFacts`."""

    def __init__(
        self,
        rel_path: str,
        tree: ast.Module,
        lines: Sequence[str],
        imports: ImportMap | None = None,
    ) -> None:
        self.rel_path = rel_path
        self.tree = tree
        self.lines = lines
        self.imports = imports if imports is not None else ImportMap(tree)
        self.facts = ModuleFacts(
            module=module_name_for(rel_path), rel_path=rel_path
        )
        #: Module-level bindings (defs, classes, assigned names, imports):
        #: mutation of these from inside a function is a global write.
        self.module_names: set[str] = set(self.imports.names)
        self.module_functions: set[str] = set()
        self.module_classes: set[str] = set()

    # -- entry point ----------------------------------------------------

    def extract(self) -> ModuleFacts:
        self.facts.imports = dict(self.imports.names)
        self._scan_module_level()
        for top in ast.iter_child_nodes(self.tree):
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(top, class_name=None, prefix="")
            elif isinstance(top, ast.ClassDef):
                self._extract_class(top)
        self._scan_registries()
        self._scan_dispatch_targets()
        return self.facts

    # -- module-level scan ----------------------------------------------

    def _scan_module_level(self) -> None:
        for top in ast.iter_child_nodes(self.tree):
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_names.add(top.name)
                self.module_functions.add(top.name)
            elif isinstance(top, ast.ClassDef):
                self.module_names.add(top.name)
                self.module_classes.add(top.name)
        # Assigned module-level names (walk top-level statements incl.
        # loop/if bodies, but never inside defs/classes).
        for node in own_scope_walk(self.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for inner in ast.walk(target):
                        if isinstance(inner, ast.Name):
                            self.module_names.add(inner.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    self.module_names.add(node.target.id)

    def _extract_class(self, cls: ast.ClassDef) -> None:
        bases = sorted(
            {
                base_name
                for base in cls.bases
                for base_name in [_terminal_identifier(base)]
                if base_name is not None
            }
        )
        methods: list[str] = []
        for member in ast.iter_child_nodes(cls):
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(member.name)
                self._extract_function(
                    member, class_name=cls.name, prefix=f"{cls.name}."
                )
        self.facts.classes[cls.name] = {
            "bases": bases,
            "methods": sorted(methods),
        }

    # -- function extraction --------------------------------------------

    def _extract_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        prefix: str,
    ) -> None:
        qualname = f"{prefix}{node.name}"
        args = node.args
        params = tuple(
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        ) + tuple(
            arg.arg for arg in (args.vararg, args.kwarg) if arg is not None
        )
        facts = FunctionFacts(
            name=node.name,
            qualname=qualname,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_name,
            params=params,
            n_positional=len(args.posonlyargs) + len(args.args),
        )
        visitor = _FunctionVisitor(self, facts, node)
        visitor.run()
        self.facts.functions[qualname] = facts
        # Nested defs become their own facts with an implicit call edge
        # from the parent (over-approximate: defining is not calling,
        # but a closure's effects are almost always the parent's).
        for child in visitor.nested:
            child_prefix = f"{qualname}.<locals>."
            self._extract_function(child, class_name, child_prefix)
            facts.calls.append(
                CallSite(
                    ref=f"local:{child_prefix}{child.name}",
                    line=child.lineno,
                    snippet=_snippet(self.lines, child.lineno),
                    caught=(),
                    arg_roots=(),
                )
            )

    # -- registries (lazy-factory pattern in combinations.py) ------------

    def _scan_registries(self) -> None:
        registries: dict[str, list[str]] = {}

        def value_refs(value: ast.AST) -> list[str]:
            refs: list[str] = []
            if isinstance(value, ast.Name):
                ref = self._name_ref(value.id)
                if ref is not None:
                    refs.append(ref)
            elif isinstance(value, ast.Lambda):
                for inner in ast.walk(value.body):
                    if isinstance(inner, ast.Call):
                        ref = self._callable_ref(inner.func)
                        if ref is not None:
                            refs.append(ref)
            elif isinstance(value, ast.Attribute):
                origin = self.imports.resolve(value)
                if origin is not None:
                    refs.append(f"import:{origin}")
            return refs

        for node in own_scope_walk(self.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    node.value, ast.Dict
                ):
                    refs: list[str] = []
                    for value in node.value.values:
                        refs.extend(value_refs(value))
                    if refs:
                        registries.setdefault(target.id, []).extend(refs)
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    refs = value_refs(node.value)
                    if refs:
                        registries.setdefault(target.value.id, []).extend(refs)
        self.facts.registries = {
            name: sorted(set(refs)) for name, refs in sorted(registries.items())
        }

    # -- pool dispatch targets (RACE001 roots) ---------------------------

    def _scan_dispatch_targets(self) -> None:
        targets: set[str] = set()
        for node in ast.walk(self.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and node.args
            ):
                continue
            target = node.args[0]
            if isinstance(target, ast.Call):  # functools.partial(f, ...)
                origin = self.imports.resolve(target.func)
                if origin == "functools.partial" and target.args:
                    target = target.args[0]
            ref = self._callable_ref(target)
            if ref is not None:
                targets.add(ref)
        self.facts.dispatch_targets = sorted(targets)

    # -- ref construction -------------------------------------------------

    def _name_ref(self, name: str) -> str | None:
        if name in self.module_functions or name in self.module_classes:
            return f"local:{name}"
        origin = self.imports.names.get(name)
        if origin is not None:
            return f"import:{origin}"
        return None

    def _callable_ref(self, func: ast.AST) -> str | None:
        """Ref for an arbitrary callable expression (no receiver typing)."""
        if isinstance(func, ast.Name):
            return self._name_ref(func.id)
        if isinstance(func, ast.Attribute):
            origin = self.imports.resolve(func)
            if origin is not None:
                return f"import:{origin}"
            if func.attr not in DISPATCH_DENYLIST and not func.attr.startswith(
                "__"
            ):
                return f"method:{func.attr}"
        return None


class _FunctionVisitor:
    """Walks one function body (excluding nested defs) collecting facts."""

    def __init__(
        self,
        extractor: _ModuleExtractor,
        facts: FunctionFacts,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.extractor = extractor
        self.facts = facts
        self.node = node
        self.nested: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self.params = set(facts.params)
        self.locals = self._local_names(node)
        self.var_types = self._receiver_types(node)
        self.tainted = unordered_tainted_names(node)
        #: ids of Call nodes already consumed as effect sites or
        #: registry/ordered special cases, so they do not double-count.
        self._claimed: set[int] = set()

    # -- setup ------------------------------------------------------------

    def _local_names(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        names: set[str] = set()
        for inner in own_scope_walk(node):
            if isinstance(inner, ast.Name) and isinstance(
                inner.ctx, ast.Store
            ):
                names.add(inner.id)
            elif isinstance(inner, (ast.Global, ast.Nonlocal)):
                names.difference_update(inner.names)
        return names

    def _receiver_types(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, str]:
        """var name → dotted class ref, from constructors and annotations."""
        types: dict[str, str] = {}

        def class_ref(expr: ast.AST) -> str | None:
            name = _terminal_identifier(expr)
            if isinstance(expr, ast.Name):
                if name in self.extractor.module_classes:
                    return f"local:{name}"
                origin = self.extractor.imports.names.get(expr.id)
                if origin is not None:
                    return f"import:{origin}"
                return None
            if isinstance(expr, ast.Attribute):
                origin = self.extractor.imports.resolve(expr)
                if origin is not None:
                    return f"import:{origin}"
            return None

        # Parameter annotations.
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if arg.annotation is not None:
                ref = class_ref(arg.annotation)
                if ref is not None:
                    types[arg.arg] = ref
        # Constructor assignments: x = ClassName(...).
        for inner in own_scope_walk(node):
            if (
                isinstance(inner, ast.Assign)
                and len(inner.targets) == 1
                and isinstance(inner.targets[0], ast.Name)
                and isinstance(inner.value, ast.Call)
            ):
                ref = class_ref(inner.value.func)
                if ref is not None:
                    types[inner.targets[0].id] = ref
        return types

    # -- walk -------------------------------------------------------------

    def run(self) -> None:
        for stmt in self.node.body:
            self._visit(stmt, caught=())

    def _visit(self, node: ast.AST, caught: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append(node)
            return
        if isinstance(node, ast.Lambda):
            return  # a lambda's body runs later, elsewhere; skip
        if isinstance(node, ast.Try):
            handler_names = self._handler_names(node)
            inner_caught = tuple(sorted(set(caught) | handler_names))
            for stmt in node.body:
                self._visit(stmt, inner_caught)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._visit(stmt, caught)
            for stmt in node.orelse:
                self._visit(stmt, inner_caught)
            for stmt in node.finalbody:
                self._visit(stmt, caught)
            return

        self._inspect(node, caught)
        for child in ast.iter_child_nodes(node):
            self._visit(child, caught)

    @staticmethod
    def _handler_names(node: ast.Try) -> set[str]:
        names: set[str] = set()
        for handler in node.handlers:
            kind = handler.type
            if kind is None:
                names.add("*")
            elif isinstance(kind, ast.Tuple):
                for item in kind.elts:
                    name = _terminal_identifier(item)
                    if name is not None:
                        names.add(
                            "*"
                            if name in ("Exception", "BaseException")
                            else name
                        )
            else:
                name = _terminal_identifier(kind)
                if name is not None:
                    names.add(
                        "*" if name in ("Exception", "BaseException") else name
                    )
        return names

    # -- per-node inspection ----------------------------------------------

    def _inspect(self, node: ast.AST, caught: tuple[str, ...]) -> None:
        if isinstance(node, ast.Call):
            self._inspect_call(node, caught)
        elif isinstance(node, ast.Raise):
            self._inspect_raise(node, caught)
        elif isinstance(node, ast.Return):
            self._inspect_return(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._inspect_assignment(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._inspect_loop(node)
        elif isinstance(node, ast.ListComp):
            for generator in node.generators:
                if is_unordered_expr(generator.iter, self.tainted):
                    continue  # DET003's intraprocedural territory
                self._maybe_ordered_site(generator.iter, "list comprehension")

    def _effect(
        self, kind: str, node: ast.AST, detail: str, subject: str = ""
    ) -> None:
        line = getattr(node, "lineno", self.facts.line)
        self.facts.effects.append(
            EffectSite(
                kind=kind,
                line=line,
                snippet=_snippet(self.extractor.lines, line),
                detail=detail,
                subject=subject,
            )
        )

    def _inspect_call(self, node: ast.Call, caught: tuple[str, ...]) -> None:
        if id(node) in self._claimed:
            return
        self._claimed.add(id(node))
        imports = self.extractor.imports
        func = node.func

        self._caught_here = caught
        # Ordered consumers: list(f(...)), min(f(...)), "".join(f(...)).
        consumer: str | None = None
        if isinstance(func, ast.Name) and func.id in ORDERED_CONSUMERS:
            consumer = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            consumer = "str.join"
        if consumer is not None and node.args:
            head = node.args[0]
            if isinstance(head, ast.GeneratorExp):
                for gen in head.generators:
                    if not is_unordered_expr(gen.iter, self.tainted):
                        self._maybe_ordered_site(gen.iter, consumer)
            elif not is_unordered_expr(head, self.tainted):
                self._maybe_ordered_site(head, consumer)

        # ProcessPoolExecutor.submit(...).result() — synchronous blocking.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "result"
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Attribute)
            and func.value.func.attr == "submit"
        ):
            self._effect(
                BLOCKING,
                node,
                "submit(...).result() blocks until the pooled job finishes",
            )
            return

        origin = imports.resolve(func)
        if origin is not None:
            if self._origin_effects(node, origin):
                return
            # A dotted origin that is not a known external effect is a
            # potential project-internal call.
            self.facts.calls.append(self._call_site(node, f"import:{origin}"))
            return

        if isinstance(func, ast.Name):
            if func.id in IO_BUILTINS:
                self._effect(IO, node, f"builtin {func.id}() performs IO")
                if func.id in BLOCKING_BUILTINS:
                    self._effect(
                        BLOCKING, node, f"builtin {func.id}() blocks on IO"
                    )
                return
            ref = self.extractor._name_ref(func.id)
            if ref is not None:
                self.facts.calls.append(self._call_site(node, ref))
            elif func.id in self.locals:
                # A locally-bound callable: check registry reads.
                registry_ref = self._registry_ref(func.id)
                if registry_ref is not None:
                    self.facts.calls.append(
                        self._call_site(node, registry_ref)
                    )
            return

        if isinstance(func, ast.Attribute):
            receiver = func.value
            attr = func.attr
            if isinstance(receiver, ast.Name):
                if receiver.id == "self" and self.facts.class_name is not None:
                    self.facts.calls.append(
                        self._call_site(
                            node, f"self:{self.facts.class_name}.{attr}"
                        )
                    )
                    return
                typed = self.var_types.get(receiver.id)
                if typed is not None:
                    self.facts.calls.append(
                        self._call_site(node, f"typed:{typed}.{attr}")
                    )
                    return
            if attr in MUTATING_METHODS:
                self._mutation_via_method(node, receiver, attr)
                return
            if attr not in DISPATCH_DENYLIST and not attr.startswith("__"):
                self.facts.calls.append(self._call_site(node, f"method:{attr}"))

    def _registry_ref(self, name: str) -> str | None:
        """``factory = REGISTRY[key]; factory()`` → a registry edge."""
        for inner in own_scope_walk(self.node):
            if (
                isinstance(inner, ast.Assign)
                and len(inner.targets) == 1
                and isinstance(inner.targets[0], ast.Name)
                and inner.targets[0].id == name
                and isinstance(inner.value, ast.Subscript)
                and isinstance(inner.value.value, ast.Name)
            ):
                return f"registry:{inner.value.value.id}"
        return None

    def _origin_effects(self, node: ast.Call, origin: str) -> bool:
        """Record effects for a call with a resolved external origin."""
        recorded = False
        if origin in WALL_CLOCK_APIS:
            self._effect(CLOCK, node, f"{origin} reads the wall clock")
            recorded = True
        if origin in SEEDED_RNG_CONSTRUCTORS:
            if not node.args and not node.keywords:
                self._effect(
                    RNG, node, f"{origin}() without a seed draws OS entropy"
                )
            return True  # constructor handled either way
        if origin.startswith("random.") or origin.startswith("numpy.random."):
            self._effect(
                RNG, node, f"{origin} draws interpreter-global RNG state"
            )
            recorded = True
        if origin in BLOCKING_APIS or origin.startswith(BLOCKING_PREFIXES):
            self._effect(BLOCKING, node, f"{origin} blocks the calling thread")
            if origin in IO_APIS or origin.startswith(BLOCKING_PREFIXES):
                self._effect(IO, node, f"{origin} performs IO")
            recorded = True
        elif origin in IO_APIS:
            self._effect(IO, node, f"{origin} performs IO")
            recorded = True
        return recorded

    def _call_site(self, node: ast.Call, ref: str) -> CallSite:
        receiver_root: str | None = None
        if isinstance(node.func, ast.Attribute):
            receiver_root = self._encoded_root(node.func.value)
        arg_roots: list[str] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                break  # positions after a splat are unknowable
            arg_roots.append(self._encoded_root(arg))
        kwarg_roots = tuple(
            sorted(
                (kw.arg, self._encoded_root(kw.value))
                for kw in node.keywords
                if kw.arg is not None
            )
        )
        line = node.lineno
        return CallSite(
            ref=ref,
            line=line,
            snippet=_snippet(self.extractor.lines, line),
            caught=getattr(self, "_caught_here", ()),
            receiver_root=receiver_root,
            arg_roots=tuple(arg_roots),
            kwarg_roots=kwarg_roots,
        )

    def _encoded_root(self, operand: ast.AST) -> str:
        root = _root_name(operand)
        if root is None:
            return ""
        return f"{self._classify_root(root)}:{root}"

    def _classify_root(self, root: str) -> str:
        if root in self.params:
            return "param"
        if root in self.locals:
            return "local"
        if root in self.extractor.module_names:
            return "global"
        return "local"

    def _mutation_via_method(
        self, node: ast.Call, receiver: ast.AST, attr: str
    ) -> None:
        root = _root_name(receiver)
        if root is None:
            return
        kind = self._classify_root(root)
        if kind == "param":
            self._effect(
                PARAM_MUTATION,
                node,
                f".{attr}() mutates parameter {root!r} in place",
                subject=root,
            )
        elif kind == "global":
            self._effect(
                GLOBAL_WRITE,
                node,
                f".{attr}() mutates module-level {root!r} in place",
            )

    def _inspect_raise(self, node: ast.Raise, caught: tuple[str, ...]) -> None:
        if node.exc is None:
            return  # bare re-raise: the original raise is the witness
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = _terminal_identifier(exc)
        if name is None:
            return
        if "*" in caught or name in caught:
            return
        self.facts.raises.append(
            RaiseSite(
                name=name,
                line=node.lineno,
                snippet=_snippet(self.extractor.lines, node.lineno),
            )
        )

    def _inspect_return(self, node: ast.Return) -> None:
        if node.value is None:
            return
        if is_unordered_expr(node.value, self.tainted):
            self.facts.returns_unordered = True
            return
        if isinstance(node.value, ast.Call):
            ref = self._result_ref(node.value)
            if ref is not None:
                self.facts.returned_refs = tuple(
                    sorted(set(self.facts.returned_refs) | {ref})
                )

    def _result_ref(self, call: ast.Call) -> str | None:
        """Ref of a called expression, for return/consumer tracking."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in ("sorted", "set", "frozenset"):
                return None
            return self.extractor._name_ref(func.id)
        if isinstance(func, ast.Attribute):
            origin = self.extractor.imports.resolve(func)
            if origin is not None:
                return f"import:{origin}"
            if isinstance(func.value, ast.Name):
                if func.value.id == "self" and self.facts.class_name:
                    return f"self:{self.facts.class_name}.{func.attr}"
                typed = self.var_types.get(func.value.id)
                if typed is not None:
                    return f"typed:{typed}.{func.attr}"
            if (
                func.attr not in DISPATCH_DENYLIST
                and not func.attr.startswith("__")
            ):
                return f"method:{func.attr}"
        return None

    def _inspect_assignment(
        self, node: ast.Assign | ast.AugAssign | ast.AnnAssign
    ) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root = _root_name(target)
                if root is None:
                    continue
                kind = self._classify_root(root)
                shape = (
                    "attribute" if isinstance(target, ast.Attribute) else "item"
                )
                if kind == "param":
                    self._effect(
                        PARAM_MUTATION,
                        node,
                        f"{shape} assignment mutates parameter {root!r}",
                        subject=root,
                    )
                elif kind == "global":
                    self._effect(
                        GLOBAL_WRITE,
                        node,
                        f"{shape} assignment mutates module-level {root!r}",
                    )
            elif isinstance(target, ast.Name):
                if (
                    target.id not in self.locals
                    and target.id not in self.params
                    and self._declared_global(target.id)
                ):
                    self._effect(
                        GLOBAL_WRITE,
                        node,
                        f"assignment rebinds module global {target.id!r}",
                    )

    def _declared_global(self, name: str) -> bool:
        for inner in own_scope_walk(self.node):
            if isinstance(inner, ast.Global) and name in inner.names:
                return True
        return False

    def _inspect_loop(self, node: ast.For | ast.AsyncFor) -> None:
        if is_unordered_expr(node.iter, self.tainted):
            return  # DET003 handles syntactically-certain sources
        witness = order_sensitive_loop(node)
        if witness is not None:
            self._maybe_ordered_site(node.iter, "order-sensitive loop")

    def _maybe_ordered_site(self, expr: ast.AST, consumer: str) -> None:
        if not isinstance(expr, ast.Call):
            return
        ref = self._result_ref(expr)
        if ref is None:
            return
        line = expr.lineno
        self.facts.ordered_sites.append(
            OrderedSite(
                ref=ref,
                line=line,
                snippet=_snippet(self.extractor.lines, line),
                consumer=consumer,
            )
        )


def order_sensitive_loop(loop: ast.For | ast.AsyncFor) -> ast.AST | None:
    """First statement in the body that makes iteration order observable."""
    for node in ast.walk(loop):
        if isinstance(node, (ast.Break, ast.Return, ast.Yield, ast.YieldFrom)):
            return node
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "extend", "insert")
        ):
            return node
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if any(isinstance(t, ast.Subscript) for t in targets):
                return node
    return None


def extract_module_facts(
    rel_path: str,
    tree: ast.Module,
    lines: Sequence[str],
    imports: ImportMap | None = None,
) -> ModuleFacts:
    """Extract the per-module facts the global pass consumes."""
    return _ModuleExtractor(rel_path, tree, lines, imports).extract()
