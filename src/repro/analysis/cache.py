"""Content-hash summary cache (``.detlint-cache.json``).

The engine's local pass — parse, intraprocedural rules, fact
extraction, suppression parsing — is a pure function of one file's
bytes under one configuration.  This module memoizes exactly that unit:
each entry is keyed by the file's content hash, and the whole cache is
keyed by a run signature (analysis version, Python minor version, rule
set, configuration), so *any* change that could alter a file's local
results invalidates everything at once rather than trusting a partial
match.

The global pass (call-graph resolution, fixpoint, project rules) is
deliberately **not** cached: it is cheap relative to parsing, and
recomputing it every run from the cached facts is what makes a warm run
produce byte-identical findings to a cold one.

Serialization is deterministic (sorted keys, stable entry order), so the
cache file itself diffs cleanly and never flaps in CI caches.  All IO is
best-effort: an unreadable, corrupt, or mismatched cache degrades to a
cold run, and a read-only checkout skips the save without failing the
lint.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.analysis.dataflow import ModuleFacts
from repro.analysis.findings import Finding
from repro.analysis.suppressions import Suppression

#: Bump whenever the cached payload shape or any local-pass semantics
#: change; a mismatch discards the cache wholesale.
CACHE_FORMAT_VERSION = 1


def content_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def run_signature(payload: dict[str, Any]) -> str:
    """Hash of everything that can change a file's local results."""
    blob = json.dumps(
        {"format": CACHE_FORMAT_VERSION, **payload}, sort_keys=True
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Payload serialization (Finding / Suppression / ModuleFacts round-trips)


def finding_to_json(finding: Finding) -> dict[str, Any]:
    """Raw (pre-status) finding fields; status is recomputed every run."""
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "message": finding.message,
        "snippet": finding.snippet,
    }


def finding_from_json(data: dict[str, Any]) -> Finding:
    return Finding(
        rule=data["rule"],
        path=data["path"],
        line=data["line"],
        column=data["column"],
        message=data["message"],
        snippet=data["snippet"],
    )


def suppression_to_json(suppression: Suppression) -> dict[str, Any]:
    return {
        "line": suppression.line,
        "target_line": suppression.target_line,
        "codes": sorted(suppression.codes),
        "reason": suppression.reason,
    }


def suppression_from_json(data: dict[str, Any]) -> Suppression:
    return Suppression(
        line=data["line"],
        target_line=data["target_line"],
        codes=frozenset(data["codes"]),
        reason=data["reason"],
    )


class SummaryCache:
    """One cache file: ``{rel_path: {hash, findings, facts, suppressions}}``."""

    def __init__(self, path: str, key: str) -> None:
        self.path = path
        self.key = key
        self.entries: dict[str, dict[str, Any]] = {}
        self.dirty = False
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: str, key: str) -> "SummaryCache":
        """Read the cache; any problem at all degrades to an empty one."""
        cache = cls(path, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return cache
        if not isinstance(document, dict):
            return cache
        if document.get("version") != CACHE_FORMAT_VERSION:
            return cache
        if document.get("key") != key:
            return cache
        files = document.get("files")
        if isinstance(files, dict):
            cache.entries = {
                str(rel): entry
                for rel, entry in files.items()
                if isinstance(entry, dict)
            }
        return cache

    def lookup(self, rel_path: str, digest: str) -> dict[str, Any] | None:
        entry = self.entries.get(rel_path)
        if entry is not None and entry.get("hash") == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, rel_path: str, digest: str, payload: dict[str, Any]) -> None:
        self.entries[rel_path] = {"hash": digest, **payload}
        self.dirty = True

    def save(self, seen: set[str]) -> None:
        """Persist entries for ``seen`` files; best-effort, deterministic."""
        kept = {
            rel: entry
            for rel, entry in sorted(self.entries.items())
            if rel in seen
        }
        if len(kept) != len(self.entries):
            self.dirty = True  # pruned deleted/renamed files
        if not self.dirty:
            return
        document = {
            "version": CACHE_FORMAT_VERSION,
            "key": self.key,
            "files": kept,
        }
        try:
            with open(self.path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True, indent=1)
                handle.write("\n")
        except OSError:
            return  # read-only checkout: warm next time, correct this time


def record_payload(
    findings: list[Finding],
    facts: ModuleFacts | None,
    suppressions: list[Suppression],
) -> dict[str, Any]:
    """Serialize one file's local-pass results for the cache."""
    return {
        "findings": [finding_to_json(finding) for finding in findings],
        "facts": facts.to_json() if facts is not None else None,
        "suppressions": [
            suppression_to_json(suppression) for suppression in suppressions
        ],
    }


def payload_findings(payload: dict[str, Any]) -> list[Finding]:
    return [finding_from_json(data) for data in payload.get("findings", [])]


def payload_facts(payload: dict[str, Any]) -> ModuleFacts | None:
    data = payload.get("facts")
    return ModuleFacts.from_json(data) if data is not None else None


def payload_suppressions(payload: dict[str, Any]) -> list[Suppression]:
    return [
        suppression_from_json(data)
        for data in payload.get("suppressions", [])
    ]
