"""Finding and Rule: the vocabulary shared by the engine and the rules.

A :class:`Finding` is one violation at one source location.  Its
:attr:`~Finding.fingerprint` is deliberately **line-number free**: it
hashes the rule, the file, the normalized source line, and the
occurrence index of that triple within the file, so a finding keeps its
identity (and its baseline entry) when unrelated edits shift it up or
down the file.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.engine import ModuleContext


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # POSIX-style, relative to the project root
    line: int  # 1-based
    column: int  # 0-based, as reported by ast
    message: str
    snippet: str  # the stripped source line, for reports and fingerprints
    #: Set by the engine, never by rules:
    suppressed: bool = False
    suppression_reason: str | None = None
    baselined: bool = False
    #: Occurrence index of (rule, path, snippet) within the file, assigned
    #: by the engine so duplicated lines still fingerprint distinctly.
    occurrence: int = 0

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline; line-number free."""
        payload = "\x1f".join(
            (self.rule, self.path, self.snippet, str(self.occurrence))
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    @property
    def counts(self) -> bool:
        """Whether this finding should fail the run."""
        return not (self.suppressed or self.baselined)

    def located(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}"

    def with_status(
        self,
        *,
        suppressed: bool | None = None,
        suppression_reason: str | None = None,
        baselined: bool | None = None,
        occurrence: int | None = None,
    ) -> "Finding":
        """A copy with engine-assigned status fields updated."""
        updates: dict[str, object] = {}
        if suppressed is not None:
            updates["suppressed"] = suppressed
        if suppression_reason is not None:
            updates["suppression_reason"] = suppression_reason
        if baselined is not None:
            updates["baselined"] = baselined
        if occurrence is not None:
            updates["occurrence"] = occurrence
        return replace(self, **updates)  # type: ignore[arg-type]


@dataclass
class Rule:
    """Base class for AST rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one parsed module.  Rules never see
    suppressions or the baseline — the engine applies those afterwards,
    so every rule stays a pure function of the source tree.
    """

    code: str = "RULE000"
    name: str = "unnamed"
    description: str = ""
    #: Default config merged under ``[tool.detlint.rules.<code>]``.
    default_options: dict = field(default_factory=dict)

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers shared by the concrete rules ---------------------------

    def finding(
        self, ctx: "ModuleContext", node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(ctx.lines):
            snippet = ctx.lines[line - 1].strip()
        return Finding(
            rule=self.code,
            path=ctx.rel_path,
            line=line,
            column=column,
            message=message,
            snippet=snippet,
        )
