"""Project rules: call-graph summaries → findings.

Where :mod:`repro.analysis.rules` checks one module at a time, the rules
here consume the fixpoint summaries of :class:`~repro.analysis.callgraph.
CallGraph` and enforce *transitive* contracts:

* **PURE001** — declared-pure costing entrypoints (``plan_cost``,
  ``batch_plan_cost``, ``price_batch``, ``extend_state``) must be free of
  mutation, RNG, clock, IO, and blocking through every reachable callee;
* **DET005** — an ordered construct must not consume the result of a
  function that (transitively) returns an unordered iterable, the
  cross-function escape hatch DET003 cannot see;
* **RACE001** — no module-global mutation reachable from a function
  dispatched to a process pool (the direct ``global``-rebind case is
  DET004's; this rule owns in-place container mutation and everything
  reached through calls);
* **ASYNC001** — no blocking call reachable from an ``async def``;
* **EXC002** — public API functions with a declared exception contract
  must not propagate exception types outside it.

Every finding is anchored at a line in the flagged function's *own*
file — the direct effect, or the call edge that starts the chain — so a
suppression pragma lands where the contract lives, never in an innocent
transitive callee.  The full witness chain rides along in the message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.analysis.callgraph import CallGraph, Witness
from repro.analysis.config import DetlintConfig
from repro.analysis.dataflow import (
    BLOCKING,
    CLOCK,
    EFFECT_KINDS,
    GLOBAL_WRITE,
    IO,
    PARAM_MUTATION,
    RNG,
)
from repro.analysis.findings import Finding

#: How each effect kind reads in a finding message.
EFFECT_PHRASES: dict[str, str] = {
    RNG: "draws random numbers",
    CLOCK: "reads the wall clock",
    IO: "performs IO",
    BLOCKING: "may block",
    GLOBAL_WRITE: "writes module-level state",
    PARAM_MUTATION: "mutates an argument in place",
}


@dataclass
class ProjectRule:
    """Base class for rules that consume the resolved call graph.

    Unlike :class:`~repro.analysis.findings.Rule`, a project rule sees
    every analyzed module at once and does its own path scoping (the
    engine cannot pre-filter, because a finding's anchor file is only
    known once the rule picks it).
    """

    code: str = "PROJ000"
    name: str = "unnamed"
    description: str = ""
    default_options: dict = field(default_factory=dict)

    def check_project(
        self, graph: CallGraph, config: DetlintConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers shared by the concrete rules ---------------------------

    def options(self, config: DetlintConfig) -> Mapping[str, Any]:
        return {**self.default_options, **config.options_for(self.code)}

    def finding_at(
        self, path: str, witness: Witness, message: str
    ) -> Finding:
        return Finding(
            rule=self.code,
            path=path,
            line=witness.line,
            column=0,
            message=message,
            snippet=witness.snippet,
        )

    @staticmethod
    def chain_note(chain: list[str]) -> str:
        if len(chain) <= 1:
            return ""
        return f" [call chain: {' -> '.join(chain)}]"


@dataclass
class DeclaredPureRule(ProjectRule):
    """PURE001: declared-pure costing entrypoints stay transitively pure.

    The differential invariants (incremental ≡ full, batched ≡ scalar,
    traced ≡ untraced) all assume that pricing a plan is a pure function
    of its inputs.  Any hidden effect — an RNG draw, a clock read, a
    mutation of shared state — reachable from a pricing entrypoint makes
    "evaluate the same plan twice" a different experiment the second
    time, and no differential test can be trusted again.
    """

    code: str = "PURE001"
    name: str = "declared-pure"
    description: str = (
        "declared-pure costing entrypoints (plan_cost, batch_plan_cost, "
        "price_batch, extend_state) must be transitively free of "
        "mutation, RNG, clock, IO, and blocking effects"
    )
    default_options: dict = field(
        default_factory=lambda: {
            "entrypoints": [
                "batch_plan_cost",
                "extend_state",
                "plan_cost",
                "price_batch",
            ]
        }
    )

    def check_project(
        self, graph: CallGraph, config: DetlintConfig
    ) -> Iterator[Finding]:
        entrypoints = set(self.options(config).get("entrypoints", []))
        for fid in sorted(graph.functions):
            node = graph.functions[fid]
            if node.facts.name not in entrypoints:
                continue
            if not config.rule_applies(self.code, node.rel_path):
                continue
            for kind in EFFECT_KINDS:
                witness = graph.summaries.get(fid, {}).get(kind)
                if witness is None:
                    continue
                chain = graph.effect_chain(fid, kind)
                yield self.finding_at(
                    node.rel_path,
                    witness,
                    f"declared-pure entrypoint {fid} transitively "
                    f"{EFFECT_PHRASES[kind]}: {witness.detail}"
                    + self.chain_note(chain),
                )


@dataclass
class CrossFunctionUnorderedRule(ProjectRule):
    """DET005: unordered iterables must not cross into ordered consumers.

    DET003 catches ``list({...})`` in one function; it cannot catch
    ``list(frontier_moves(state))`` where ``frontier_moves`` returns a
    set three calls away.  The summaries know which functions (possibly
    transitively, through ``return f(...)``) return unordered iterables;
    this rule joins them against every ordered-consumer call site.
    """

    code: str = "DET005"
    name: str = "cross-function-unordered"
    description: str = (
        "ordered construct (list/tuple/min/max/str.join, order-sensitive "
        "loop) consumes the result of a function that returns an "
        "unordered (hash-ordered) iterable"
    )

    def check_project(
        self, graph: CallGraph, config: DetlintConfig
    ) -> Iterator[Finding]:
        for fid in sorted(graph.functions):
            node = graph.functions[fid]
            if not config.rule_applies(self.code, node.rel_path):
                continue
            owner = graph.by_module_name[node.module]
            for site in node.facts.ordered_sites:
                targets = graph.resolve_ref(owner, site.ref)
                unordered = sorted(
                    target for target in targets if target in graph.unordered
                )
                if not unordered:
                    continue
                witness = Witness(
                    line=site.line, snippet=site.snippet, detail=site.consumer
                )
                yield self.finding_at(
                    node.rel_path,
                    witness,
                    f"{site.consumer} consumes the result of "
                    f"{unordered[0]}(), which returns an unordered "
                    "(hash-ordered) iterable; sort at this boundary or "
                    "have the callee return a sorted sequence",
                )


@dataclass
class PoolSharedStateRule(ProjectRule):
    """RACE001: pool workers must not reach module-global mutation.

    ``workers=N ≡ workers=1`` holds only if a worker's output is a pure
    function of its pickled arguments.  A worker that — anywhere down
    its call tree — mutates module state makes each job's result depend
    on which jobs previously ran in the same pool process, which varies
    with scheduling.  DET004 already rejects workers that rebind globals
    via ``global`` in their own body; this rule covers in-place container
    mutation and every write reached through calls.
    """

    code: str = "RACE001"
    name: str = "pool-shared-state"
    description: str = (
        "module-global mutation transitively reachable from a "
        "process-pool worker entrypoint"
    )

    def check_project(
        self, graph: CallGraph, config: DetlintConfig
    ) -> Iterator[Finding]:
        for rel_path, workers in sorted(graph.dispatch_roots().items()):
            if not config.rule_applies(self.code, rel_path):
                continue
            for fid in workers:
                node = graph.functions[fid]
                witness = graph.summaries.get(fid, {}).get(GLOBAL_WRITE)
                if witness is None:
                    continue
                if witness.via is None and "rebinds module global" in (
                    witness.detail
                ):
                    continue  # DET004's direct-rebind territory
                chain = graph.effect_chain(fid, GLOBAL_WRITE)
                yield self.finding_at(
                    node.rel_path,
                    witness,
                    f"pool worker {fid} transitively writes module-level "
                    f"state: {witness.detail}; worker output would depend "
                    "on prior jobs in the same pool process"
                    + self.chain_note(chain),
                )


@dataclass
class AsyncBlockingRule(ProjectRule):
    """ASYNC001: nothing reachable from ``async def`` may block.

    One synchronous ``time.sleep``/``subprocess.run``/``open`` anywhere
    under an ``async def`` stalls the whole event loop — every other
    coroutine in the service stops making progress for the duration.
    The planned optimizer service (ROADMAP item 1) will be judged on
    tail latency, where a single blocked loop shows up as a cliff.
    """

    code: str = "ASYNC001"
    name: str = "async-blocking"
    description: str = (
        "blocking call (sleep/subprocess/file/socket/submit().result()) "
        "transitively reachable from an async def"
    )

    def check_project(
        self, graph: CallGraph, config: DetlintConfig
    ) -> Iterator[Finding]:
        for fid in sorted(graph.functions):
            node = graph.functions[fid]
            if not node.facts.is_async:
                continue
            if not config.rule_applies(self.code, node.rel_path):
                continue
            witness = graph.summaries.get(fid, {}).get(BLOCKING)
            if witness is None:
                continue
            chain = graph.effect_chain(fid, BLOCKING)
            yield self.finding_at(
                node.rel_path,
                witness,
                f"async function {fid} may block the event loop: "
                f"{witness.detail}; await an async equivalent or move the "
                "call into a thread/process executor"
                + self.chain_note(chain),
            )


@dataclass
class ExceptionContractRule(ProjectRule):
    """EXC002: declared exception contracts are raises-*only* contracts.

    ``[tool.detlint.rules.EXC002.contracts]`` maps a public API function
    (by suffix of its fully-qualified id) to the exception names it is
    documented to raise.  The rule compares that contract against the
    *transitive* raise summary — every ``raise`` reachable through calls,
    minus everything caught on the way — so an undocumented failure mode
    added three layers down surfaces at the API boundary that promises
    otherwise.
    """

    code: str = "EXC002"
    name: str = "exception-contract"
    description: str = (
        "public core/cost API may only raise the exception types its "
        "declared contract table lists"
    )
    default_options: dict = field(default_factory=lambda: {"contracts": {}})

    def check_project(
        self, graph: CallGraph, config: DetlintConfig
    ) -> Iterator[Finding]:
        contracts: Mapping[str, Any] = self.options(config).get(
            "contracts", {}
        )
        for target in sorted(contracts):
            allowed = set(contracts[target])
            for fid in self._matching(graph, target):
                node = graph.functions[fid]
                if not config.rule_applies(self.code, node.rel_path):
                    continue
                for exc_name in sorted(graph.raise_summaries.get(fid, {})):
                    if exc_name in allowed:
                        continue
                    witness = graph.raise_summaries[fid][exc_name]
                    chain = graph.raise_chain(fid, exc_name)
                    declared = ", ".join(sorted(allowed)) or "nothing"
                    yield self.finding_at(
                        node.rel_path,
                        witness,
                        f"{fid} may raise {exc_name}, outside its declared "
                        f"contract (raises only: {declared}): "
                        f"{witness.detail}" + self.chain_note(chain),
                    )

    @staticmethod
    def _matching(graph: CallGraph, target: str) -> list[str]:
        return sorted(
            fid
            for fid in graph.functions
            if fid == target or fid.endswith("." + target)
        )


#: Registry order is report order for equal locations.
PROJECT_RULES: tuple[ProjectRule, ...] = (
    DeclaredPureRule(),
    CrossFunctionUnorderedRule(),
    PoolSharedStateRule(),
    AsyncBlockingRule(),
    ExceptionContractRule(),
)


def project_rule_registry() -> dict[str, ProjectRule]:
    return {rule.code: rule for rule in PROJECT_RULES}
