"""The detlint rule library.

Each rule is a pure function of one parsed module (no suppression or
baseline logic — the engine layers those on).  The rules encode the
invariants the differential test harness checks dynamically:

* ``workers=N`` must be bit-identical to ``workers=1``  → DET001, DET002,
  DET003, DET004 (no ambient entropy, no wall clock, no hash-order
  dependence, no unpicklable/stateful pool dispatch);
* incremental delta costing must equal full ``plan_cost``  → OVF001
  (both sides must clamp overflow identically, through the same helpers);
* the resilient fallback chain must be the *only* place failures are
  swallowed  → EXC001.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.analysis.config import path_matches
from repro.analysis.dataflow import (
    ORDERED_CONSUMERS,
    SEEDED_RNG_CONSTRUCTORS,
    WALL_CLOCK_APIS,
    ImportMap,
    is_unordered_expr,
    order_sensitive_loop,
    own_scope_walk,
    unordered_tainted_names,
)
from repro.analysis.findings import Finding, Rule

if TYPE_CHECKING:  # pragma: no cover - engine imports rules at runtime
    from repro.analysis.engine import ModuleContext

__all__ = ["RULES", "rule_registry", "ImportMap"]


# ---------------------------------------------------------------------------
# Shared helpers


def _call_func_ids(tree: ast.AST) -> set[int]:
    """ids of every node appearing as the func of a Call."""
    return {
        id(node.func) for node in ast.walk(tree) if isinstance(node, ast.Call)
    }


# ---------------------------------------------------------------------------
# DET001 — unseeded / ambient RNG


#: RNG constructors that are deterministic *when given a seed argument*
#: (shared with the dataflow layer's ``rng`` effect extraction).
_SEEDED_CONSTRUCTORS = SEEDED_RNG_CONSTRUCTORS

#: Names that may be *referenced* bare (annotations, isinstance checks).
_RNG_TYPE_REFERENCES = {
    "random.Random",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
}


@dataclass
class UnseededRandomRule(Rule):
    """DET001: every random stream must flow from ``repro.utils.rng``.

    Module-level ``random.*`` calls draw from interpreter-global state
    seeded from OS entropy; ``numpy.random.*`` free functions share one
    hidden global ``RandomState``.  Either makes a worker's output depend
    on what ran before it, breaking ``workers=N ≡ workers=1``.
    """

    code: str = "DET001"
    name: str = "unseeded-rng"
    description: str = (
        "ambient RNG state (random.* / numpy.random.* free functions, "
        "unseeded constructors) outside the derivation module"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        imports = ctx.imports
        func_ids = _call_func_ids(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                origin = imports.resolve(node.func)
                if origin is None:
                    continue
                if origin in _SEEDED_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            f"{origin}() without a seed draws from OS "
                            "entropy; derive the stream via "
                            "repro.utils.rng.derive_rng instead",
                        )
                    continue
                if origin.startswith("random.") or origin.startswith(
                    "numpy.random."
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"call to {origin} uses interpreter-global RNG "
                        "state; take an explicit random.Random derived "
                        "via repro.utils.rng",
                    )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if id(node) in func_ids:
                    continue  # handled as a call above
                if isinstance(node, ast.Attribute) and not isinstance(
                    node.ctx, ast.Load
                ):
                    continue
                origin = imports.resolve(node)
                if origin is None or origin in _RNG_TYPE_REFERENCES:
                    continue
                if (
                    origin.startswith("random.")
                    or origin.startswith("numpy.random.")
                ) and origin.count(".") >= 1:
                    if origin in ("random.Random",):
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"reference to {origin} escapes as a callback "
                        "bound to interpreter-global RNG state",
                    )


# ---------------------------------------------------------------------------
# DET002 — wall-clock reads


#: Shared with the dataflow layer's ``clock`` effect extraction.
_WALL_CLOCK_APIS = WALL_CLOCK_APIS


@dataclass
class WallClockRule(Rule):
    """DET002: no wall-clock reads outside the budget/calibration modules.

    Search decisions keyed on elapsed time stop at different points on
    different machines (and different runs of the same machine), so any
    clock read inside the optimizer invalidates both differential
    invariants.  The wall-clock *budget* and the cost-model *calibrator*
    are the two sanctioned, allowlisted consumers.

    Configuration (``[tool.detlint.rules.DET002]``):

    * ``allow`` — the sanctioned consumer modules (engine-level exempt);
    * ``verified_clean`` — modules whose published *contract* is that
      they never read the clock (the ``repro.obs`` trace layer stamps
      events with the logical budget clock precisely so traces are pure
      functions of the seed).  A wall-clock read there is worse than a
      plain violation — it silently voids a documented guarantee — so
      the finding message escalates accordingly.
    """

    code: str = "DET002"
    name: str = "wall-clock"
    description: str = (
        "wall-clock reads (time.*, datetime.now/today) outside the "
        "allowlisted budget/calibration modules"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        verified_clean = list(
            ctx.options(self.code).get("verified_clean", [])
        )
        in_verified = path_matches(ctx.rel_path, verified_clean)
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if isinstance(node, ast.Attribute) and not isinstance(
                node.ctx, ast.Load
            ):
                continue
            origin = imports.resolve(node)
            if origin in _WALL_CLOCK_APIS:
                if in_verified:
                    message = (
                        f"wall-clock read {origin} inside verified-clean "
                        "module: this module's contract (the trace is a "
                        "pure function of the seed) forbids clock reads "
                        "entirely; remove the read or drop the module "
                        "from [tool.detlint.rules.DET002].verified_clean"
                    )
                else:
                    message = (
                        f"wall-clock read {origin} makes behaviour depend "
                        "on elapsed real time; inject a clock or move the "
                        "read into an allowlisted module"
                    )
                yield self.finding(ctx, node, message)


# ---------------------------------------------------------------------------
# DET003 — hash-order iteration feeding ordered constructs


_ORDERED_CONSUMERS = ORDERED_CONSUMERS


@dataclass
class UnorderedIterationRule(Rule):
    """DET003: bare set/``dict.keys()`` iteration must not feed order.

    Set iteration order follows string hashes, which PYTHONHASHSEED
    randomises per process: the same query in two pool workers can visit
    moves in different orders, pick different tie-breaks, and return
    different plans at equal cost.  Wrapping the iterable in
    ``sorted(...)`` restores a schedule-independent order.

    The rule is taint-aware per scope: a name whose every visible binding
    is an unordered value (``s = set(xs)``, ``d = {k: v for k in s}``) is
    unordered too, so laundering a set through a local variable — or a
    dict built from one, whose ``.items()`` view replays hash order —
    no longer hides the dependence.  Rebinding through ``sorted(...)``
    removes the taint, so the idiomatic fix stays clean.
    """

    code: str = "DET003"
    name: str = "unordered-iteration"
    description: str = (
        "iteration over bare set/dict.keys()/tainted unordered names "
        "feeding ordered constructs (list building, min/max, early exit) "
        "without sorted(...)"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        scopes: list[ast.AST] = [ctx.tree] + [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            )
        ]
        for scope in scopes:
            tainted = unordered_tainted_names(scope)
            yield from self._check_scope(ctx, scope, tainted)

    def _check_scope(
        self, ctx: "ModuleContext", scope: ast.AST, tainted: frozenset[str]
    ) -> Iterator[Finding]:
        for node in own_scope_walk(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)) and is_unordered_expr(
                node.iter, tainted
            ):
                witness = order_sensitive_loop(node)
                if witness is not None:
                    yield self.finding(
                        ctx,
                        node.iter,
                        "loop over an unordered iterable has an "
                        "order-sensitive body "
                        f"(line {getattr(witness, 'lineno', node.lineno)}); "
                        "wrap the iterable in sorted(...)",
                    )
            elif isinstance(node, ast.ListComp):
                for generator in node.generators:
                    if is_unordered_expr(generator.iter, tainted):
                        yield self.finding(
                            ctx,
                            generator.iter,
                            "list comprehension over an unordered iterable "
                            "produces a hash-order list; wrap the source "
                            "in sorted(...)",
                        )
            elif isinstance(node, ast.Call):
                consumer = None
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDERED_CONSUMERS
                ):
                    consumer = node.func.id
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                ):
                    consumer = "str.join"
                if consumer is None or not node.args:
                    continue
                head = node.args[0]
                unordered = is_unordered_expr(head, tainted) or (
                    isinstance(head, ast.GeneratorExp)
                    and any(
                        is_unordered_expr(g.iter, tainted)
                        for g in head.generators
                    )
                )
                if unordered:
                    yield self.finding(
                        ctx,
                        node,
                        f"{consumer}(...) consumes an unordered iterable "
                        "in hash order; wrap the source in sorted(...)",
                    )


# ---------------------------------------------------------------------------
# DET004 — pool dispatch must be module-level and closure-free


@dataclass
class PoolDispatchRule(Rule):
    """DET004: ``submit``/``map`` targets must be module-level functions.

    A lambda or nested function fails to pickle at dispatch time (or,
    worse, pickles by reference on platforms that fork and silently
    captures parent state); a function that writes module globals makes
    worker output depend on what previously ran in that process.  Both
    break crash-recovery re-execution in the parent, which must produce
    the exact bytes the pool worker would have.
    """

    code: str = "DET004"
    name: str = "pool-dispatch"
    description: str = (
        "arguments to .submit/.map must be module-level, picklable "
        "functions that do not write module globals"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        module_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        nested_defs: set[str] = set()
        for top in ast.iter_child_nodes(ctx.tree):
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_defs[top.name] = top
                for inner in ast.walk(top):
                    if inner is not top and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        nested_defs.add(inner.name)
        imported = set(ctx.imports.names)
        # Module-level classes pickle by reference, so dispatching one as
        # the callable (its constructor) is sound.
        imported.update(
            top.name
            for top in ast.iter_child_nodes(ctx.tree)
            if isinstance(top, ast.ClassDef)
        )

        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and node.args
            ):
                continue
            target = node.args[0]
            yield from self._check_target(
                ctx, node, target, module_defs, nested_defs, imported
            )

    def _check_target(
        self,
        ctx: "ModuleContext",
        call: ast.Call,
        target: ast.AST,
        module_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
        nested_defs: set[str],
        imported: set[str],
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Lambda):
            yield self.finding(
                ctx,
                target,
                "lambda dispatched to the pool is not picklable; hoist it "
                "to a module-level function",
            )
            return
        if isinstance(target, ast.Call):
            origin = ctx.imports.resolve(target.func)
            if origin == "functools.partial" and target.args:
                yield from self._check_target(
                    ctx,
                    call,
                    target.args[0],
                    module_defs,
                    nested_defs,
                    imported,
                )
                return
            yield self.finding(
                ctx,
                target,
                "dynamically constructed callable dispatched to the pool "
                "cannot be verified picklable; dispatch a module-level "
                "function",
            )
            return
        if isinstance(target, ast.Attribute):
            if ctx.imports.resolve(target) is not None:
                return  # an imported module-level function
            yield self.finding(
                ctx,
                target,
                "bound method/attribute dispatched to the pool is not "
                "verifiably module-level; dispatch a module-level function",
            )
            return
        if isinstance(target, ast.Name):
            definition = module_defs.get(target.id)
            if definition is not None:
                writer = self._global_write(definition)
                if writer is not None:
                    yield self.finding(
                        ctx,
                        target,
                        f"pool-dispatched function {target.id!r} writes "
                        f"module global(s) {writer}; worker output would "
                        "depend on prior jobs in the same process",
                    )
                return
            if target.id in imported:
                return
            if target.id in nested_defs:
                yield self.finding(
                    ctx,
                    target,
                    f"{target.id!r} is a nested function; pool targets "
                    "must be module-level to pickle by reference",
                )
                return
            yield self.finding(
                ctx,
                target,
                f"{target.id!r} is not a module-level function or import "
                "in this module; pool targets must pickle by reference",
            )

    @staticmethod
    def _global_write(
        definition: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> str | None:
        declared: set[str] = set()
        for node in ast.walk(definition):
            if isinstance(node, ast.Global):
                declared.update(node.names)
        if not declared:
            return None
        written: set[str] = set()
        for node in ast.walk(definition):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for item in targets:
                    if isinstance(item, ast.Name) and item.id in declared:
                        written.add(item.id)
        if written:
            return ", ".join(sorted(written))
        return None


# ---------------------------------------------------------------------------
# EXC001 — broad except only at annotated robustness boundaries


_BOUNDARY_PATTERN = re.compile(r"#\s*boundary:\s*(\S.*)$")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    if isinstance(kind, ast.Name) and kind.id in ("Exception", "BaseException"):
        return True
    if isinstance(kind, ast.Tuple):
        return any(
            isinstance(item, ast.Name)
            and item.id in ("Exception", "BaseException")
            for item in kind.elts
        )
    return False


@dataclass
class BroadExceptRule(Rule):
    """EXC001: broad ``except`` only inside annotated boundaries.

    Outside the resilience chain, ``except Exception`` converts bugs
    (including determinism bugs: a divergent worker crashing instead of
    agreeing) into silently different results.  A broad handler is legal
    only where a ``# boundary: <why>`` annotation marks a deliberate
    robustness boundary — or anywhere in the allowlisted
    ``repro.robustness`` package, whose whole purpose is to be one.
    """

    code: str = "EXC001"
    name: str = "broad-except"
    description: str = (
        "except Exception / bare except outside an annotated "
        "'# boundary: <why>' robustness boundary"
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or not _is_broad(node):
                continue
            if self._annotated(ctx, node.lineno):
                continue
            label = "bare except" if node.type is None else "except Exception"
            yield self.finding(
                ctx,
                node,
                f"{label} swallows unexpected failures; narrow it to the "
                "exceptions this site can actually see, or annotate a "
                "deliberate robustness boundary with '# boundary: <why>'",
            )

    @staticmethod
    def _annotated(ctx: "ModuleContext", lineno: int) -> bool:
        """Boundary pragma on the except line or its leading comment block."""
        if 1 <= lineno <= len(ctx.lines) and _BOUNDARY_PATTERN.search(
            ctx.lines[lineno - 1]
        ):
            return True
        cursor = lineno - 1
        while 1 <= cursor <= len(ctx.lines):
            stripped = ctx.lines[cursor - 1].strip()
            if not stripped.startswith("#"):
                return False
            if _BOUNDARY_PATTERN.search(stripped):
                return True
            cursor -= 1
        return False


# ---------------------------------------------------------------------------
# OVF001 — cardinality products must route through the overflow guards


_CARDINALITY_NAME = re.compile(
    r"(?:^|_)(size|sizes|card|cards|cardinality|cardinalities|rows|tuples)"
    r"(?:$|_)",
    re.IGNORECASE,
)


def _terminal_identifier(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _mult_leaves(node: ast.BinOp) -> list[ast.AST]:
    """Leaves of a maximal ``*`` chain (nested Mult flattened)."""
    leaves: list[ast.AST] = []
    for side in (node.left, node.right):
        if isinstance(side, ast.BinOp) and isinstance(side.op, ast.Mult):
            leaves.extend(_mult_leaves(side))
        else:
            leaves.append(side)
    return leaves


@dataclass
class OverflowGuardRule(Rule):
    """OVF001: cardinality products must reach an overflow guard.

    ``1e200 * 1e200`` silently becomes ``inf`` in IEEE arithmetic, and an
    ``inf`` cost compares equal for every plan — the optimizer keeps
    "optimizing" while learning nothing, and the incremental evaluator's
    delta (``inf - inf = nan``) diverges from the full recomputation.
    Every product of two size-like quantities must therefore flow through
    ``clamp_cardinality``/``join_result_cardinality`` or be checked
    against ``MAX_CARDINALITY`` before use.
    """

    code: str = "OVF001"
    name: str = "overflow-guard"
    description: str = (
        "product of cardinality-like operands not routed through the "
        "overflow-guard helpers or a MAX_CARDINALITY check"
    )
    default_options: dict = field(
        default_factory=lambda: {
            "guards": ["clamp_cardinality", "join_result_cardinality"],
            "bound_names": ["MAX_CARDINALITY"],
        }
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        options = {**self.default_options, **ctx.options(self.code)}
        guards = set(options.get("guards", []))
        bounds = set(options.get("bound_names", []))

        guarded: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _terminal_identifier(node.func)
                if name in guards:
                    for inner in ast.walk(node):
                        guarded.add(id(inner))

        scopes = [ctx.tree] + [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        seen: set[int] = set()
        for scope in scopes:
            checked_names = self._names_checked_in_scope(scope, guards, bounds)
            for node in self._own_walk(scope):
                if (
                    not isinstance(node, ast.BinOp)
                    or not isinstance(node.op, ast.Mult)
                    or id(node) in seen
                    or id(node) in guarded
                ):
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.BinOp) and isinstance(
                        sub.op, ast.Mult
                    ):
                        seen.add(id(sub))
                cardinality_leaves = [
                    name
                    for name in map(_terminal_identifier, _mult_leaves(node))
                    if name is not None and _CARDINALITY_NAME.search(name)
                ]
                if len(cardinality_leaves) < 2:
                    continue
                target = self._assign_target(scope, node)
                if target is not None and target in checked_names:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    "product of cardinalities "
                    f"({' * '.join(cardinality_leaves)}) is never clamped; "
                    "route it through "
                    f"{'/'.join(sorted(guards))} or compare it against "
                    f"{'/'.join(sorted(bounds)) or 'the overflow bound'}",
                )

    @staticmethod
    def _own_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function scopes."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _assign_target(self, scope: ast.AST, mult: ast.BinOp) -> str | None:
        """Name a ``target = ...<mult>...`` statement assigns, if any."""
        for stmt in self._own_walk(scope):
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AugAssign):
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if any(node is mult for node in ast.walk(value)):
                if len(targets) == 1 and isinstance(targets[0], ast.Name):
                    return targets[0].id
                return None
        return None

    def _names_checked_in_scope(
        self, scope: ast.AST, guards: set[str], bounds: set[str]
    ) -> set[str]:
        """Names later passed to a guard or compared to a bound name."""
        checked: set[str] = set()
        for node in self._own_walk(scope):
            if isinstance(node, ast.Call):
                if _terminal_identifier(node.func) in guards:
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            checked.add(arg.id)
            elif isinstance(node, ast.Compare):
                names = {
                    part.id
                    for part in ast.walk(node)
                    if isinstance(part, ast.Name)
                }
                bound_hit = names & bounds or {
                    _terminal_identifier(part)
                    for part in ast.walk(node)
                    if isinstance(part, ast.Attribute)
                } & bounds
                if bound_hit:
                    checked.update(names - bounds)
        return checked


# ---------------------------------------------------------------------------
# Registry


RULES: tuple[Rule, ...] = (
    UnseededRandomRule(),
    WallClockRule(),
    UnorderedIterationRule(),
    PoolDispatchRule(),
    BroadExceptRule(),
    OverflowGuardRule(),
)


def rule_registry() -> dict[str, Rule]:
    return {rule.code: rule for rule in RULES}
