"""detlint — an AST-level invariant linter for the reproduction codebase.

The repo's headline guarantee is *bit-identical determinism*: incremental
delta costing equals full ``plan_cost`` and ``workers=N`` equals
``workers=1``.  PRs 2–3 enforce that guarantee dynamically, with
differential tests that sample a tiny fraction of code paths.  This
package enforces it *statically*: every source file is parsed and checked
against a rule library that rejects the constructs from which
nondeterminism, swallowed failures, and silent overflow actually arise —
so the violations cannot be written, rather than merely usually caught.

Rules shipped (see :mod:`repro.analysis.rules` for details):

========  ==============================================================
DET001    no unseeded RNG outside ``repro.utils.rng``
DET002    no wall-clock reads outside the budget/calibration allowlist
DET003    no ordered consumption of bare ``set``/``dict.keys()`` iteration
DET004    pool-dispatched callables must be module-level and closure-free
EXC001    broad ``except`` only at annotated robustness boundaries
OVF001    cardinality products must route through the overflow guards
SUP001    ``detlint: ignore`` pragmas must carry a reason (engine-level)
SUP002    ``detlint: ignore`` pragmas must match a finding (engine-level)
========  ==============================================================

Run it with ``python -m repro.analysis src/``.  Configuration lives in
``[tool.detlint]`` in ``pyproject.toml``; per-line suppressions use
``# detlint: ignore[RULE] -- reason`` and grandfathered findings live in
a checked-in JSON baseline.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.config import DetlintConfig, load_config
from repro.analysis.engine import AnalysisResult, Analyzer, ModuleContext
from repro.analysis.findings import Finding, Rule
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import RULES, rule_registry

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "Baseline",
    "DetlintConfig",
    "Finding",
    "ModuleContext",
    "RULES",
    "Rule",
    "load_config",
    "render_json",
    "render_text",
    "rule_registry",
]
