"""detlint — an AST-level invariant linter for the reproduction codebase.

The repo's headline guarantee is *bit-identical determinism*: incremental
delta costing equals full ``plan_cost`` and ``workers=N`` equals
``workers=1``.  PRs 2–3 enforce that guarantee dynamically, with
differential tests that sample a tiny fraction of code paths.  This
package enforces it *statically*: every source file is parsed and checked
against a rule library that rejects the constructs from which
nondeterminism, swallowed failures, and silent overflow actually arise —
so the violations cannot be written, rather than merely usually caught.

v2 adds an interprocedural layer: a per-module fact extractor
(:mod:`repro.analysis.dataflow`), a project-wide call graph with
effect/raise fixpoint summaries (:mod:`repro.analysis.callgraph`), rule
families over those summaries (:mod:`repro.analysis.rules_interproc`),
and a content-hash summary cache (:mod:`repro.analysis.cache`) that
makes warm re-lints skip unchanged files.

Rules shipped:

========  ==============================================================
DET001    no unseeded RNG outside ``repro.utils.rng``
DET002    no wall-clock reads outside the budget/calibration allowlist
DET003    no ordered consumption of bare ``set``/``dict.keys()``/tainted
          unordered names (intraprocedural)
DET004    pool-dispatched callables must be module-level and closure-free
DET005    no ordered consumption of functions returning unordered
          iterables (interprocedural)
EXC001    broad ``except`` only at annotated robustness boundaries
EXC002    public API raises only its declared exception contract
OVF001    cardinality products must route through the overflow guards
PURE001   declared-pure costing entrypoints stay transitively pure
RACE001   no module-global mutation reachable from pool workers
ASYNC001  no blocking calls reachable from ``async def``
SUP001    ``detlint: ignore`` pragmas must carry a reason (engine-level)
SUP002    ``detlint: ignore`` pragmas must match a finding (engine-level)
========  ==============================================================

Run it with ``python -m repro.analysis src/``.  Configuration lives in
``[tool.detlint]`` in ``pyproject.toml``; per-line suppressions use
``# detlint: ignore[RULE] -- reason``, grandfathered findings live in a
checked-in JSON baseline (regenerate with ``--update-baseline``), and
reports come in text, JSON, and SARIF (``--format sarif``).
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.config import DetlintConfig, load_config
from repro.analysis.dataflow import ModuleFacts, extract_module_facts
from repro.analysis.engine import AnalysisResult, Analyzer, ModuleContext
from repro.analysis.findings import Finding, Rule
from repro.analysis.reporting import render_json, render_sarif, render_text
from repro.analysis.rules import RULES, rule_registry
from repro.analysis.rules_interproc import (
    PROJECT_RULES,
    ProjectRule,
    project_rule_registry,
)

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "Baseline",
    "CallGraph",
    "DetlintConfig",
    "Finding",
    "ModuleContext",
    "ModuleFacts",
    "PROJECT_RULES",
    "ProjectRule",
    "RULES",
    "Rule",
    "build_callgraph",
    "extract_module_facts",
    "load_config",
    "project_rule_registry",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_registry",
]
