"""The ``python -m repro.analysis`` command line.

Exit codes follow the repo convention of small stable integers:

* ``0`` — clean: no open findings, no stale baseline entries;
* ``1`` — open findings (or stale baseline entries that need pruning);
* ``2`` — usage or configuration error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.config import ConfigError, load_config
from repro.analysis.engine import Analyzer
from repro.analysis.reporting import render_json, render_sarif, render_text
from repro.analysis.rules import RULES
from repro.analysis.rules_interproc import PROJECT_RULES

USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "detlint: statically enforce the determinism, "
            "exception-boundary, and overflow-guard invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: [tool.detlint] paths)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml holding the [tool.detlint] table",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file (default: [tool.detlint] baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding as open",
    )
    parser.add_argument(
        "--write-baseline",
        "--update-baseline",
        action="store_true",
        dest="write_baseline",
        help=(
            "regenerate the baseline in place, grandfathering all "
            "current open findings"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file summary cache for this run",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule library and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show suppressed and baselined findings (text format)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in list(RULES) + list(PROJECT_RULES):
            print(f"{rule.code}  {rule.name}: {rule.description}")
        print(
            "SUP001  missing-reason: detlint pragmas must carry "
            "'-- <reason>' (engine-level)"
        )
        print(
            "SUP002  unused-suppression: pragmas must match a finding "
            "(engine-level)"
        )
        return 0

    try:
        config = load_config(start=os.getcwd(), explicit_pyproject=args.config)
    except ConfigError as exc:
        print(f"detlint: configuration error: {exc}", file=sys.stderr)
        return USAGE_ERROR

    baseline: Baseline | None
    if args.no_baseline:
        baseline = None
    elif args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"detlint: cannot load baseline: {exc}", file=sys.stderr)
            return USAGE_ERROR
    elif config.baseline is not None:
        try:
            baseline = Baseline.load(os.path.join(config.root, config.baseline))
        except (OSError, ValueError) as exc:
            print(f"detlint: cannot load baseline: {exc}", file=sys.stderr)
            return USAGE_ERROR
    else:
        baseline = None

    missing = [
        entry
        for entry in args.paths
        if not os.path.exists(
            entry if os.path.isabs(entry) else os.path.join(config.root, entry)
        )
    ]
    if missing:
        print(
            f"detlint: path(s) not found: {', '.join(missing)}",
            file=sys.stderr,
        )
        return USAGE_ERROR

    use_cache = False if args.no_cache else None
    analyzer = Analyzer(config, baseline=baseline, use_cache=use_cache)
    result = analyzer.run(args.paths or None)

    if args.write_baseline:
        target = args.baseline or (
            os.path.join(config.root, config.baseline)
            if config.baseline
            else None
        )
        if target is None:
            print(
                "detlint: no baseline path configured; pass --baseline",
                file=sys.stderr,
            )
            return USAGE_ERROR
        fresh = Baseline.from_findings(
            [f for f in result.findings if not f.suppressed], path=target
        )
        fresh.save()
        print(
            f"detlint: wrote {len(fresh)} finding(s) to {target}",
            file=sys.stderr,
        )
        # Re-run against the freshly written baseline so the report and
        # exit code reflect the new state.
        result = Analyzer(
            config, baseline=Baseline.load(target), use_cache=use_cache
        ).run(args.paths or None)

    if args.format == "json":
        sys.stdout.write(render_json(result))
    elif args.format == "sarif":
        sys.stdout.write(render_sarif(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code
