"""Reporters: human-readable text, machine-readable JSON, and SARIF.

All three render the same :class:`~repro.analysis.engine.AnalysisResult`;
all are deterministic (findings arrive pre-sorted from the engine and
JSON keys are emitted sorted), so report diffs track code diffs — the
determinism test asserts two runs produce byte-identical JSON *and*
SARIF documents.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.engine import ANALYSIS_VERSION, AnalysisResult
from repro.analysis.findings import Finding

REPORT_VERSION = 1


def _status(finding: Finding) -> str:
    if finding.suppressed:
        return "suppressed"
    if finding.baselined:
        return "baselined"
    return "open"


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """The text report: one ``file:line:col CODE message`` per finding."""
    lines: list[str] = []
    for finding in result.findings:
        if not finding.counts and not verbose:
            continue
        status = _status(finding)
        marker = "" if status == "open" else f" [{status}]"
        lines.append(
            f"{finding.located()}: {finding.rule}{marker} {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        if verbose and finding.suppression_reason:
            lines.append(f"    reason: {finding.suppression_reason}")
    for fingerprint in result.stale_baseline:
        lines.append(
            f"stale baseline entry {fingerprint}: the finding it "
            "grandfathered no longer exists; prune it with --write-baseline"
        )
    open_count = len(result.unsuppressed)
    summary = (
        f"{result.files_checked} file(s) checked, {open_count} open "
        f"finding(s), {len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined"
    )
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entr(y/ies)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """The JSON report (stable key order, trailing newline)."""
    document = {
        "version": REPORT_VERSION,
        "files_checked": result.files_checked,
        "ok": result.ok,
        "rules": list(result.rule_codes),
        "summary": {
            "open": len(result.unsuppressed),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
        },
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "column": finding.column + 1,
                "message": finding.message,
                "snippet": finding.snippet,
                "status": _status(finding),
                "suppression_reason": finding.suppression_reason,
                "fingerprint": finding.fingerprint,
            }
            for finding in result.findings
        ],
        "stale_baseline": list(result.stale_baseline),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _sarif_rules() -> list[dict[str, Any]]:
    """Metadata for every rule the run can emit, in sorted id order."""
    from repro.analysis.rules import RULES
    from repro.analysis.rules_interproc import PROJECT_RULES

    catalogue: dict[str, tuple[str, str]] = {
        "SYN001": ("parse-error", "file does not parse"),
        "SUP001": (
            "missing-reason",
            "detlint pragmas must carry '-- <reason>'",
        ),
        "SUP002": (
            "unused-suppression",
            "pragmas must match a finding on their target line",
        ),
    }
    for rule in list(RULES) + list(PROJECT_RULES):
        catalogue[rule.code] = (rule.name, rule.description)
    return [
        {
            "id": code,
            "name": name,
            "shortDescription": {"text": name},
            "fullDescription": {"text": description},
        }
        for code, (name, description) in sorted(catalogue.items())
    ]


def render_sarif(result: AnalysisResult) -> str:
    """SARIF 2.1.0 (stable key order, trailing newline).

    Open findings are ``error``-level results; suppressed and baselined
    findings ride along with a SARIF ``suppressions`` entry (``inSource``
    for pragmas, ``external`` for the baseline) so downstream viewers can
    show or hide them without re-running the analyzer.
    """
    results: list[dict[str, Any]] = []
    for finding in result.findings:
        entry: dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error" if finding.counts else "note",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"detlint/v1": finding.fingerprint},
        }
        if finding.suppressed:
            suppression: dict[str, Any] = {"kind": "inSource"}
            if finding.suppression_reason:
                suppression["justification"] = finding.suppression_reason
            entry["suppressions"] = [suppression]
        elif finding.baselined:
            entry["suppressions"] = [{"kind": "external"}]
        results.append(entry)
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "detlint",
                        "version": ANALYSIS_VERSION,
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static-analysis"
                        ),
                        "rules": _sarif_rules(),
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
