"""Reporters: human-readable text and machine-readable JSON.

Both render the same :class:`~repro.analysis.engine.AnalysisResult`;
both are deterministic (findings arrive pre-sorted from the engine and
JSON keys are emitted sorted), so report diffs track code diffs.
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult
from repro.analysis.findings import Finding

REPORT_VERSION = 1


def _status(finding: Finding) -> str:
    if finding.suppressed:
        return "suppressed"
    if finding.baselined:
        return "baselined"
    return "open"


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """The text report: one ``file:line:col CODE message`` per finding."""
    lines: list[str] = []
    for finding in result.findings:
        if not finding.counts and not verbose:
            continue
        status = _status(finding)
        marker = "" if status == "open" else f" [{status}]"
        lines.append(
            f"{finding.located()}: {finding.rule}{marker} {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        if verbose and finding.suppression_reason:
            lines.append(f"    reason: {finding.suppression_reason}")
    for fingerprint in result.stale_baseline:
        lines.append(
            f"stale baseline entry {fingerprint}: the finding it "
            "grandfathered no longer exists; prune it with --write-baseline"
        )
    open_count = len(result.unsuppressed)
    summary = (
        f"{result.files_checked} file(s) checked, {open_count} open "
        f"finding(s), {len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined"
    )
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entr(y/ies)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """The JSON report (stable key order, trailing newline)."""
    document = {
        "version": REPORT_VERSION,
        "files_checked": result.files_checked,
        "ok": result.ok,
        "rules": list(result.rule_codes),
        "summary": {
            "open": len(result.unsuppressed),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
        },
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "column": finding.column + 1,
                "message": finding.message,
                "snippet": finding.snippet,
                "status": _status(finding),
                "suppression_reason": finding.suppression_reason,
                "fingerprint": finding.fingerprint,
            }
            for finding in result.findings
        ],
        "stale_baseline": list(result.stale_baseline),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
