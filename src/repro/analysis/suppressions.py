"""Line suppressions: ``# detlint: ignore[RULE] -- reason``.

A suppression silences the named rule(s) on one line.  Two placements
are recognised:

* trailing, on the offending line itself::

      cost = a * b  # detlint: ignore[OVF001] -- inputs pre-clamped

* standalone, as a comment line attaching to the next code line::

      # detlint: ignore[DET003] -- order folded by a commutative reduce
      for item in candidates:

The reason after ``--`` is **mandatory**: a reasonless pragma suppresses
nothing and instead raises SUP001, so "shut it up" never outlives the
reviewer who would have asked why.  A pragma that matches no finding
raises SUP002, so stale suppressions are flushed instead of rotting.

``ignore[*]`` suppresses every rule on the line (reason still required).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

SUPPRESSION_PATTERN = re.compile(
    r"#\s*detlint:\s*ignore\[(?P<codes>[A-Za-z0-9*,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)

#: Engine-level rule codes for suppression hygiene.
MISSING_REASON = "SUP001"
UNUSED_SUPPRESSION = "SUP002"


@dataclass
class Suppression:
    """One parsed pragma and the line(s) it governs."""

    line: int  # line the pragma is written on (1-based)
    target_line: int  # line whose findings it suppresses
    codes: frozenset[str]  # upper-cased rule codes; "*" means all
    reason: str | None
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        if finding.line != self.target_line:
            return False
        return "*" in self.codes or finding.rule in self.codes


def _is_comment_line(stripped: str) -> bool:
    return stripped.startswith("#")


def _comment_lines(lines: list[str]) -> list[int]:
    """1-based line numbers carrying a real COMMENT token.

    Tokenizing (rather than regexing raw lines) keeps pragmas quoted in
    docstrings and string literals from being parsed as suppressions.
    A file that fails to tokenize contributes no comments — the engine
    reports the parse failure separately.
    """
    source = "\n".join(lines) + "\n"
    numbers: list[int] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                numbers.append(token.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    return numbers


def parse_suppressions(lines: list[str]) -> list[Suppression]:
    """All pragmas in a file, with standalone comments bound forward.

    A standalone-comment pragma attaches to the next non-blank,
    non-comment line; a trailing pragma attaches to its own line.
    """
    suppressions: list[Suppression] = []
    for index in _comment_lines(lines):
        raw = lines[index - 1]
        match = SUPPRESSION_PATTERN.search(raw)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        reason = match.group("reason")
        target = index
        if _is_comment_line(raw.strip()):
            for forward in range(index, len(lines)):
                candidate = lines[forward].strip()
                if candidate and not _is_comment_line(candidate):
                    target = forward + 1
                    break
        suppressions.append(
            Suppression(
                line=index, target_line=target, codes=codes, reason=reason
            )
        )
    return suppressions


@dataclass
class SuppressionOutcome:
    """Findings after suppression, plus the hygiene findings it raised."""

    findings: list[Finding] = field(default_factory=list)
    hygiene: list[Finding] = field(default_factory=list)


def apply_suppressions(
    rel_path: str,
    lines: list[str],
    findings: list[Finding],
    suppressions: list[Suppression],
) -> SuppressionOutcome:
    """Mark suppressed findings; emit SUP001/SUP002 hygiene findings."""
    outcome = SuppressionOutcome()
    for finding in findings:
        covering = None
        for suppression in suppressions:
            if suppression.covers(finding):
                covering = suppression
                break
        if covering is None:
            outcome.findings.append(finding)
        elif covering.reason is None:
            # A reasonless pragma does NOT suppress; SUP001 is raised once
            # per pragma below, and the original finding stands.
            outcome.findings.append(finding)
        else:
            covering.used = True
            outcome.findings.append(
                finding.with_status(
                    suppressed=True, suppression_reason=covering.reason
                )
            )
    for suppression in suppressions:
        snippet = lines[suppression.line - 1].strip()
        if suppression.reason is None:
            outcome.hygiene.append(
                Finding(
                    rule=MISSING_REASON,
                    path=rel_path,
                    line=suppression.line,
                    column=0,
                    message=(
                        "suppression has no reason; write "
                        "'# detlint: ignore[RULE] -- why it is safe'"
                    ),
                    snippet=snippet,
                )
            )
        elif not suppression.used:
            outcome.hygiene.append(
                Finding(
                    rule=UNUSED_SUPPRESSION,
                    path=rel_path,
                    line=suppression.line,
                    column=0,
                    message=(
                        "suppression matches no finding on its target "
                        "line; delete it or fix the rule code"
                    ),
                    snippet=snippet,
                )
            )
    return outcome
