"""The measurement-feedback loop: execute, measure, recalibrate, re-plan.

The robustness harness shows *how much* plan quality lying estimates
cost; this module closes the loop the way adaptive optimizers do.  One
feedback round:

1. optimize under the lying catalog and take the chosen plan,
2. execute that plan on :mod:`repro.engine` over a database drawn from
   the **true** catalog, recording every operator's measured row count,
3. recalibrate the catalog from the measurements
   (:func:`recalibrate`) — base cardinalities become the measured table
   sizes, join selectivities the measured step selectivities,
4. re-optimize under the recalibrated catalog.

Both plans are priced under the true catalog and divided by a
truth-optimized reference cost, yielding regret **before** and
**after** the round.  Because the measurements come from real data the
recalibrated catalog approximates the truth regardless of how badly the
original estimates lied — so one round should pull the median regret of
a workload back toward 1.0 at large q (asserted, with seeded inputs, in
``tests/test_robustness_feedback.py``).

Everything is seeded and serial; a feedback report is a pure function
of ``(queries, q, seed)`` plus the optimizer configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.catalog.join_graph import JoinGraph, Query
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.core.budget import DEFAULT_UNITS_PER_N2
from repro.core.optimizer import optimize
from repro.cost.base import CostModel
from repro.cost.memory import MainMemoryCostModel
from repro.engine.datagen import generate_database
from repro.engine.executor import ExecutionResult, execute_order
from repro.obs import events as obs_events
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.robustness.estimates import LOG_NORMAL, ErrorModel
from repro.robustness.harness import median
from repro.utils.rng import derive_seed


def recalibrate(graph: JoinGraph, execution: ExecutionResult) -> JoinGraph:
    """A corrected copy of ``graph`` from one plan's measurements.

    ``graph`` is the (possibly lying) catalog the plan was optimized
    and executed under; ``execution`` the measured outcome of running
    ``execution.order`` on concrete tables.  The correction:

    * every base cardinality becomes the measured table row count (with
      selections dropped — the measured rows already include their
      effect);
    * every join predicate consumed at step ``k`` gets distinct counts
      implying the *measured* step selectivity ``out / (left * inner)``,
      split evenly (in log space) when one step consumes several
      predicates, and clamped into ``[1, rows]`` per side;
    * a predicate whose step produced no rows, or whose inputs were
      empty, keeps its old distinct counts (no information), clamped to
      the corrected cardinalities.

    In an outer-linear order every predicate of a connected graph is
    consumed by exactly one step, so one execution recalibrates the
    whole catalog.
    """
    order = execution.order
    if len(order) != graph.n_relations or not execution.base_sizes:
        raise ValueError("execution does not match graph")
    measured = execution.operator_cardinalities

    relations: list[Relation] = list(graph.relations)
    for position, vertex in enumerate(order):
        old = graph.relation(vertex)
        rows = max(1, execution.base_sizes[position])
        relations[vertex] = Relation(old.name, rows, ())

    # Per-predicate implied distinct count (None = no information).
    implied: dict[JoinPredicate, float | None] = {}
    placed = [order[0]]
    for position in range(1, len(order)):
        inner = order[position]
        step = list(graph.edges_between(placed, inner))
        placed.append(inner)
        if not step:
            continue
        left_rows = measured[position - 1]
        inner_rows = execution.base_sizes[position]
        out_rows = measured[position]
        if left_rows <= 0 or inner_rows <= 0 or out_rows <= 0:
            for predicate in step:
                implied[predicate] = None
            continue
        selectivity = out_rows / (left_rows * inner_rows)
        each = min(1.0, selectivity ** (1.0 / len(step)))
        for predicate in step:
            implied[predicate] = 1.0 / each

    predicates: list[JoinPredicate] = []
    for predicate in graph.predicates:
        left_cap = relations[predicate.left].cardinality
        right_cap = relations[predicate.right].cardinality
        distinct = implied.get(predicate)
        if distinct is None:
            left_distinct = predicate.left_distinct
            right_distinct = predicate.right_distinct
        else:
            left_distinct = right_distinct = distinct
        predicates.append(
            JoinPredicate(
                predicate.left,
                predicate.right,
                left_distinct=min(left_cap, max(1.0, left_distinct)),
                right_distinct=min(right_cap, max(1.0, right_distinct)),
            )
        )
    return JoinGraph(relations, predicates)


@dataclass(frozen=True)
class FeedbackResult:
    """Regret before/after one feedback round on one query."""

    query: str
    q: float
    regret_before: float
    regret_after: float

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "q": self.q,
            "regret_before": self.regret_before,
            "regret_after": self.regret_after,
        }


@dataclass(frozen=True)
class FeedbackReport:
    """One feedback round over a workload."""

    q: float
    results: tuple[FeedbackResult, ...]
    median_regret_before: float
    median_regret_after: float

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "q": self.q,
            "results": [r.to_json_dict() for r in self.results],
            "median_regret_before": self.median_regret_before,
            "median_regret_after": self.median_regret_after,
        }


def feedback_round(
    query: Query,
    q: float,
    seed: int = 0,
    method: str = "IAI",
    model: CostModel | None = None,
    time_factor: float = 3.0,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    distribution: str = LOG_NORMAL,
    max_rows: int | None = None,
    tracer: Tracer = NULL_TRACER,
) -> FeedbackResult:
    """Run one measure-recalibrate-reoptimize round on ``query``.

    ``max_rows`` caps generated table sizes (passed through to
    :func:`repro.engine.datagen.generate_database`) so the execution
    step stays cheap on large catalogs — at the price of measurements
    that reflect the capped database rather than the full truth.
    """
    truth = query.graph
    error_model = ErrorModel(
        q=q,
        seed=derive_seed(seed, "feedback-perturb", query.name),
        distribution=distribution,
    )
    lying = error_model.perturb(truth)
    if tracer.enabled:
        tracer.emit(
            obs_events.PERTURB,
            query=query.name,
            q=q,
            distribution=distribution,
            draws=error_model.n_draws(truth),
        )

    if model is None:
        model = MainMemoryCostModel()
    opt_seed = derive_seed(seed, "feedback-opt", query.name)
    reference = optimize(
        truth,
        method=method,
        model=model,
        time_factor=time_factor,
        units_per_n2=units_per_n2,
        seed=opt_seed,
    )
    before = optimize(
        lying,
        method=method,
        model=model,
        time_factor=time_factor,
        units_per_n2=units_per_n2,
        seed=opt_seed,
    )
    regret_before = model.plan_cost(before.order, truth) / reference.cost

    tables = generate_database(
        truth, seed=derive_seed(seed, "feedback-data", query.name), max_rows=max_rows
    )
    execution = execute_order(before.order, lying, tables)
    corrected = recalibrate(lying, execution)

    after = optimize(
        corrected,
        method=method,
        model=model,
        time_factor=time_factor,
        units_per_n2=units_per_n2,
        seed=opt_seed,
    )
    regret_after = model.plan_cost(after.order, truth) / reference.cost

    if tracer.enabled:
        tracer.emit(
            obs_events.REGRET,
            query=query.name,
            q=q,
            method=str(method).upper(),
            regret_before=regret_before,
            regret_after=regret_after,
        )
        tracer.metrics.inc("feedback_rounds")
        tracer.metrics.observe("feedback_regret_after", regret_after)

    return FeedbackResult(
        query=query.name,
        q=q,
        regret_before=regret_before,
        regret_after=regret_after,
    )


def run_feedback(
    queries: Sequence[Query],
    q: float,
    seed: int = 0,
    method: str = "IAI",
    model: CostModel | None = None,
    time_factor: float = 3.0,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    distribution: str = LOG_NORMAL,
    max_rows: int | None = None,
    tracer: Tracer = NULL_TRACER,
) -> FeedbackReport:
    """One feedback round per query; medians over the workload."""
    if not queries:
        raise ValueError("queries must be non-empty")
    results = tuple(
        feedback_round(
            query,
            q,
            seed=seed,
            method=method,
            model=model,
            time_factor=time_factor,
            units_per_n2=units_per_n2,
            distribution=distribution,
            max_rows=max_rows,
            tracer=tracer,
        )
        for query in queries
    )
    return FeedbackReport(
        q=q,
        results=results,
        median_regret_before=median([r.regret_before for r in results]),
        median_regret_after=median([r.regret_after for r in results]),
    )
