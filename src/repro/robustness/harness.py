"""The robustness harness: optimize under lies, re-cost under truth.

For each (query × method × q-error magnitude × trial) the harness

1. perturbs the query's catalog with a seeded
   :class:`~repro.robustness.estimates.ErrorModel` (one perturbation per
   trial, shared by every method, so all methods face the *same* lies),
2. optimizes under the perturbed catalog,
3. re-costs the chosen join order under the **true** catalog, and
4. reports the **regret**: true cost of the plan chosen under lies
   divided by the best true cost any compared method found when
   optimizing under the truth.

Regret 1.0 means estimation error did not hurt; regret 10 means the lies
cost an order of magnitude of plan quality.  (Regret can dip slightly
below 1.0: the search is randomized, and a perturbed run may stumble on
a plan the truth-guided reference runs missed.)  Aggregated over a
workload, the per-``(method, q)`` medians form the q-error-vs-regret
curves of :class:`RobustnessReport` — the robustness analogue of the
paper's scaled-cost figures.

Determinism contract
--------------------
``run_robustness`` is a pure function of ``(queries, config, model)``:
every optimizer seed and every perturbation seed is derived from
``config.seed`` with :func:`repro.utils.rng.derive_seed`; trials fan out
through :func:`repro.parallel.map_jobs`, whose outcomes arrive in job
order regardless of scheduling; and all aggregation happens in the
parent in fixed iteration order.  The rendered report
(:meth:`RobustnessReport.to_json`) is therefore **byte-identical**
across runs and across ``workers=1`` vs ``workers=N`` — enforced by the
differential test in ``tests/test_robustness_harness.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Sequence

from repro.catalog.join_graph import JoinGraph, Query
from repro.core.budget import DEFAULT_UNITS_PER_N2
from repro.cost.base import CostModel
from repro.cost.memory import MainMemoryCostModel
from repro.obs import events as obs_events
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.robustness.estimates import DISTRIBUTIONS, LOG_NORMAL, ErrorModel
from repro.robustness.resilience import FailureLog
from repro.utils.rng import derive_seed

#: Format version of the serialized report (bump on schema changes).
REPORT_VERSION = 1

#: Default method slate: the paper's winner, plain II, and the
#: estimate-free Simpli-Squared floor.
DEFAULT_METHODS: tuple[str, ...] = ("IAI", "II", "SIMPLI_SQUARED")

#: Default q-error magnitudes (the acceptance grid of ROADMAP item 4).
DEFAULT_Q_VALUES: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0)


@dataclass(frozen=True)
class RobustnessConfig:
    """Tunables of one harness run (all seeds derive from ``seed``)."""

    methods: tuple[str, ...] = DEFAULT_METHODS
    q_values: tuple[float, ...] = DEFAULT_Q_VALUES
    n_trials: int = 3
    distribution: str = LOG_NORMAL
    time_factor: float = 3.0
    units_per_n2: float = DEFAULT_UNITS_PER_N2
    seed: int = 0
    workers: int = 1

    def __post_init__(self) -> None:
        if not self.methods:
            raise ValueError("methods must be non-empty")
        if not self.q_values or any(q < 1.0 for q in self.q_values):
            raise ValueError("q_values must be non-empty and all >= 1")
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "methods": list(self.methods),
            "q_values": list(self.q_values),
            "n_trials": self.n_trials,
            "distribution": self.distribution,
            "time_factor": self.time_factor,
            "units_per_n2": self.units_per_n2,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class TrialResult:
    """One (query × q × trial × method) measurement."""

    query: str
    q: float
    trial: int
    method: str
    #: Cost of the chosen plan under the *perturbed* statistics — what
    #: the optimizer believed it achieved.
    believed_cost: float
    #: Cost of the same plan under the true statistics.
    true_cost: float
    #: ``true_cost`` / best true cost found when optimizing under truth.
    regret: float

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "q": self.q,
            "trial": self.trial,
            "method": self.method,
            "believed_cost": self.believed_cost,
            "true_cost": self.true_cost,
            "regret": self.regret,
        }


@dataclass(frozen=True)
class CurvePoint:
    """Regret statistics for one (method, q) over all queries × trials."""

    method: str
    q: float
    n: int
    median_regret: float
    mean_regret: float
    worst_regret: float

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "method": self.method,
            "q": self.q,
            "n": self.n,
            "median_regret": self.median_regret,
            "mean_regret": self.mean_regret,
            "worst_regret": self.worst_regret,
        }


@dataclass(frozen=True)
class RobustnessReport:
    """Everything one harness run measured, serializable byte-stably."""

    config: RobustnessConfig
    queries: tuple[str, ...]
    #: Best true cost found under truth, per query (the regret divisor).
    reference_costs: tuple[float, ...]
    trials: tuple[TrialResult, ...]
    curves: tuple[CurvePoint, ...]

    def curve(self, method: str) -> list[CurvePoint]:
        """The q-error-vs-regret curve of one method, ascending in q."""
        name = method.upper()
        return sorted(
            (p for p in self.curves if p.method == name), key=lambda p: p.q
        )

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "config": self.config.to_json_dict(),
            "queries": list(self.queries),
            "reference_costs": list(self.reference_costs),
            "trials": [t.to_json_dict() for t in self.trials],
            "curves": [c.to_json_dict() for c in self.curves],
        }

    def to_json(self) -> str:
        """The canonical byte-stable rendering (the determinism contract
        is stated over exactly this string)."""
        return json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":")
        )


def median(values: Sequence[float]) -> float:
    """Median with the usual even-count midpoint (values need not be sorted)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _graph_of(query: Query | JoinGraph) -> JoinGraph:
    return query.graph if isinstance(query, Query) else query


def _name_of(query: Query | JoinGraph, index: int) -> str:
    name = getattr(query, "name", "")
    return name or f"query-{index}"


def run_robustness(
    queries: Sequence[Query | JoinGraph],
    config: RobustnessConfig | None = None,
    model: CostModel | None = None,
    tracer: Tracer = NULL_TRACER,
    failure_log: FailureLog | None = None,
) -> RobustnessReport:
    """Measure regret curves for ``queries`` under ``config``.

    All optimizer invocations — the truth-guided reference runs and
    every perturbed trial — fan out through one
    :func:`repro.parallel.map_jobs` call, so ``config.workers`` scales
    the harness without changing a byte of the report.
    """
    # Imported here, not at module top: the orchestrator imports this
    # package (for InjectedFault / the resilience helpers), so a module-
    # level back-edge would make ``import repro.parallel`` order-dependent.
    from repro.parallel.orchestrator import JobOutcome, OptimizeJob, map_jobs

    if config is None:
        config = RobustnessConfig()
    if model is None:
        model = MainMemoryCostModel()
    if not queries:
        raise ValueError("queries must be non-empty")

    graphs = [_graph_of(q) for q in queries]
    names = tuple(_name_of(q, i) for i, q in enumerate(queries))

    # Job list: reference runs first (truth catalog), then every
    # perturbed trial.  Fixed construction order == fixed outcome order.
    jobs: list[OptimizeJob] = []

    def add_job(graph: JoinGraph, method: str, seed: int, tag: str) -> int:
        index = len(jobs)
        jobs.append(
            OptimizeJob(
                graph=graph,
                method=method,
                model=model,
                seed=seed,
                index=index,
                tag=tag,
                time_factor=config.time_factor,
                units_per_n2=config.units_per_n2,
            )
        )
        return index

    reference_jobs: dict[tuple[int, str], int] = {}
    for qi, graph in enumerate(graphs):
        for method in config.methods:
            seed = derive_seed(config.seed, "robustness-ref", qi)
            reference_jobs[(qi, method)] = add_job(
                graph, method, seed, f"ref:{names[qi]}:{method}"
            )

    trial_jobs: dict[tuple[int, float, int, str], int] = {}
    perturbed_graphs: dict[tuple[int, float, int], JoinGraph] = {}
    for qi, graph in enumerate(graphs):
        for q in config.q_values:
            for trial in range(config.n_trials):
                error_model = ErrorModel(
                    q=q,
                    seed=derive_seed(config.seed, "robustness-perturb", qi, q, trial),
                    distribution=config.distribution,
                )
                perturbed = error_model.perturb(graph)
                perturbed_graphs[(qi, q, trial)] = perturbed
                if tracer.enabled:
                    tracer.emit(
                        obs_events.PERTURB,
                        query=names[qi],
                        q=q,
                        trial=trial,
                        distribution=config.distribution,
                        draws=error_model.n_draws(graph),
                    )
                    tracer.metrics.inc("robustness_perturbations")
                seed = derive_seed(config.seed, "robustness-opt", qi, q, trial)
                for method in config.methods:
                    trial_jobs[(qi, q, trial, method)] = add_job(
                        perturbed,
                        method,
                        seed,
                        f"trial:{names[qi]}:q{q}:t{trial}:{method}",
                    )

    outcomes = map_jobs(jobs, config.workers, failure_log=failure_log)

    def result_of(index: int) -> Any:
        outcome: JobOutcome = outcomes[index]
        if outcome.result is None:
            raise RuntimeError(
                f"robustness job {outcome.tag!r} failed: "
                f"{outcome.error or 'no plan evaluated'}"
            )
        return outcome.result

    # Regret divisor: best true cost any method found under the truth.
    reference_costs = tuple(
        min(
            result_of(reference_jobs[(qi, method)]).cost
            for method in config.methods
        )
        for qi in range(len(graphs))
    )

    trials: list[TrialResult] = []
    for qi in range(len(graphs)):
        for q in config.q_values:
            for trial in range(config.n_trials):
                for method in config.methods:
                    result = result_of(trial_jobs[(qi, q, trial, method)])
                    true_cost = model.plan_cost(result.order, graphs[qi])
                    regret = true_cost / reference_costs[qi]
                    trials.append(
                        TrialResult(
                            query=names[qi],
                            q=q,
                            trial=trial,
                            method=str(method).upper(),
                            believed_cost=result.cost,
                            true_cost=true_cost,
                            regret=regret,
                        )
                    )
                    if tracer.enabled:
                        tracer.emit(
                            obs_events.REGRET,
                            query=names[qi],
                            q=q,
                            trial=trial,
                            method=str(method).upper(),
                            regret=regret,
                        )
                        tracer.metrics.inc("robustness_trials")
                        tracer.metrics.observe("robustness_regret", regret)

    curves: list[CurvePoint] = []
    for method in config.methods:
        name = str(method).upper()
        for q in config.q_values:
            regrets = [
                t.regret for t in trials if t.method == name and t.q == q
            ]
            curves.append(
                CurvePoint(
                    method=name,
                    q=q,
                    n=len(regrets),
                    median_regret=median(regrets),
                    mean_regret=sum(regrets) / len(regrets),
                    worst_regret=max(regrets),
                )
            )

    return RobustnessReport(
        config=config,
        queries=names,
        reference_costs=reference_costs,
        trials=tuple(trials),
        curves=tuple(curves),
    )


def write_report(report: RobustnessReport, path: str) -> None:
    """Write the canonical rendering (plus trailing newline) to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report.to_json())
        handle.write("\n")
