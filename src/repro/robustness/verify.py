"""The plan-verification gate and catalog validation.

Every :class:`~repro.core.optimizer.OptimizationResult` passes through
:func:`verify_plan` before ``optimize()`` returns it, so a buggy move
generator, a corrupted estimator, or a broken cost model can never silently
hand the caller an invalid plan.  The gate checks four invariants:

1. **Permutation completeness** — the order places every relation exactly
   once.
2. **Cross-product validity** — no relation joins before it is connected
   to the already placed part of its component (components contiguous).
3. **Finite, non-negative cost** — ``NaN``/``inf``/negative plan costs are
   symptoms, never answers.
4. **Cost recomputation agreement** — re-pricing the order with the same
   model reproduces the reported cost, so the cost attached to the plan is
   the plan's cost and not a stale or fabricated number.

The catalog half (:func:`catalog_violations`, :func:`sanitize_catalog`)
serves the resilient optimizer's pre-flight check: detect corrupted
statistics (non-positive or non-finite cardinalities, missing or excessive
distinct-value counts) before the search starts, and repair them with
conservative clamps so a degraded-but-valid optimization can proceed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation, Selection
from repro.cost.base import CostModel
from repro.plans.join_order import JoinOrder
from repro.plans.validity import first_invalid_position

#: Relative tolerance for the cost-recomputation agreement check.  Plan
#: costs are deterministic sums of float products, so agreement is exact in
#: practice; the tolerance only absorbs benign cross-platform rounding.
COST_AGREEMENT_REL_TOL = 1e-6


class PlanVerificationError(RuntimeError):
    """An optimization result failed the plan-verification gate."""

    def __init__(self, violations: tuple[str, ...]) -> None:
        super().__init__(
            "plan failed verification: " + "; ".join(violations)
        )
        self.violations = violations


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one pass through the verification gate."""

    ok: bool
    violations: tuple[str, ...]

    def __bool__(self) -> bool:
        return self.ok


def verify_plan(
    order: JoinOrder,
    cost: float,
    graph: JoinGraph,
    model: CostModel,
    rel_tolerance: float = COST_AGREEMENT_REL_TOL,
) -> VerificationReport:
    """Check the four gate invariants; never raises, returns a report."""
    violations: list[str] = []
    n = graph.n_relations
    positions = tuple(order)
    if len(positions) != n or sorted(positions) != list(range(n)):
        violations.append(
            f"order {order} is not a permutation of relations 0..{n - 1}"
        )
        return VerificationReport(False, tuple(violations))

    invalid_at = first_invalid_position(order, graph)
    if invalid_at is not None:
        violations.append(
            f"premature cross product: relation {order[invalid_at]} at "
            f"position {invalid_at} joins nothing placed before it"
        )

    if not math.isfinite(cost):
        violations.append(f"plan cost {cost!r} is not finite")
    elif cost < 0:
        violations.append(f"plan cost {cost!r} is negative")
    else:
        try:
            recomputed = model.plan_cost(order, graph)
        except Exception as exc:  # boundary: a broken model is itself a violation
            violations.append(
                f"cost recomputation raised {type(exc).__name__}: {exc}"
            )
        else:
            if not math.isclose(
                recomputed, cost, rel_tol=rel_tolerance, abs_tol=1e-9
            ):
                violations.append(
                    f"reported cost {cost!r} disagrees with recomputed "
                    f"cost {recomputed!r}"
                )
    return VerificationReport(not violations, tuple(violations))


def verify_or_raise(
    order: JoinOrder,
    cost: float,
    graph: JoinGraph,
    model: CostModel,
) -> None:
    """Gate used on the non-resilient path: raise on any violation."""
    report = verify_plan(order, cost, graph, model)
    if not report.ok:
        raise PlanVerificationError(report.violations)


# ----------------------------------------------------------------------
# Catalog validation and sanitization (resilient pre-flight)
# ----------------------------------------------------------------------


def _is_bad_number(value: object) -> bool:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return True
    return not math.isfinite(value)


def catalog_violations(graph: JoinGraph) -> list[str]:
    """Human-readable list of every corrupted statistic in ``graph``.

    Empty for a healthy catalog.  Mirrors the checks
    :class:`~repro.catalog.join_graph.JoinGraph` applies at construction
    time, but inspects an *existing* graph — the resilient optimizer uses
    it as a pre-flight check against statistics corrupted after
    construction (stale serialized stats, fault injection, bit rot).
    """
    violations: list[str] = []
    for index, relation in enumerate(graph.relations):
        rows = relation.base_cardinality
        if _is_bad_number(rows) or rows <= 0:
            violations.append(
                f"relation {relation.name!r} (vertex {index}) has invalid "
                f"cardinality {rows!r}"
            )
        for selection in relation.selections:
            s = selection.selectivity
            if _is_bad_number(s) or not 0.0 < s <= 1.0:
                violations.append(
                    f"relation {relation.name!r} (vertex {index}) has "
                    f"invalid selection selectivity {s!r}"
                )
    for predicate in graph.predicates:
        for side in (predicate.left, predicate.right):
            distinct = predicate.distinct_values(side)
            if _is_bad_number(distinct) or distinct <= 0:
                violations.append(
                    f"edge {predicate.left}-{predicate.right} has missing "
                    f"or invalid distinct count {distinct!r} on relation "
                    f"{side}"
                )
                continue
            rows = graph.relations[side].base_cardinality
            if not _is_bad_number(rows) and rows > 0 and distinct > rows:
                violations.append(
                    f"edge {predicate.left}-{predicate.right} claims "
                    f"{distinct:g} distinct values on relation {side}, "
                    f"which has only {rows:g} rows"
                )
    return violations


def sanitize_catalog(graph: JoinGraph) -> JoinGraph:
    """A validated copy of ``graph`` with corrupted statistics repaired.

    Conservative clamps: invalid cardinalities become 1 row, invalid
    selection predicates are dropped (selectivity 1.0), and invalid or
    excessive distinct counts are clamped into ``[1, rows]``.  The repaired
    graph is structurally identical (same vertices, same edges), so any
    valid order for it is valid for the original.
    """
    relations: list[Relation] = []
    for relation in graph.relations:
        rows = relation.base_cardinality
        if _is_bad_number(rows) or rows <= 0:
            rows = 1
        selections = tuple(
            selection
            for selection in relation.selections
            if not _is_bad_number(selection.selectivity)
            and 0.0 < selection.selectivity <= 1.0
        )
        if rows == relation.base_cardinality and selections == relation.selections:
            relations.append(relation)
        else:
            relations.append(
                Relation(relation.name, int(rows), tuple(selections))
            )

    def repaired_distinct(value: float, side: int) -> float:
        rows = relations[side].base_cardinality
        if _is_bad_number(value) or value <= 0:
            return float(rows)
        return float(min(value, rows))

    predicates = [
        JoinPredicate(
            predicate.left,
            predicate.right,
            repaired_distinct(predicate.left_distinct, predicate.left),
            repaired_distinct(predicate.right_distinct, predicate.right),
        )
        for predicate in graph.predicates
    ]
    return JoinGraph(relations, predicates)
