"""Robustness subsystem: faults, fallbacks, verification, lying estimates.

Production query optimizers must *always* return the best valid plan found
so far, degraded if necessary — a crash, a corrupt statistic, or an expired
budget must never propagate to the caller as an unhandled exception.  And
even a crash-free optimizer consumes *estimates* that are routinely wrong
by orders of magnitude.  This package covers both failure axes:

:mod:`repro.robustness.faults`
    A deterministic, seedable fault-injection harness: wrap a cost model,
    corrupt a catalog, or sabotage a strategy, and drive the optimizer
    through every failure mode on purpose (chaos testing).
:mod:`repro.robustness.verify`
    The plan-verification gate every optimization result passes before it
    is returned, plus catalog validation and sanitization.
:mod:`repro.robustness.resilience`
    The fallback chain behind ``optimize(..., resilient=True)``: retry
    with rotated seeds, degrade method → augmentation → deterministic
    spanning order, and record every step in a structured ``FailureLog``.
:mod:`repro.robustness.estimates`
    The seeded q-error :class:`ErrorModel` that perturbs a catalog's
    statistics deterministically ("estimates are lies").
:mod:`repro.robustness.harness`
    The regret harness: optimize under perturbed statistics, re-cost
    under the truth, aggregate q-error-vs-regret curves into a
    byte-stable :class:`RobustnessReport`.
:mod:`repro.robustness.feedback`
    The measurement-feedback loop: execute the chosen plan on
    :mod:`repro.engine`, recalibrate the catalog from measured
    cardinalities, re-optimize, and report regret before/after.
"""

from repro.robustness.estimates import (
    DISTRIBUTIONS,
    LOG_NORMAL,
    LOG_UNIFORM,
    ErrorModel,
    q_error,
)
from repro.robustness.faults import (
    CORRUPTION_KINDS,
    FAULT_KINDS,
    FaultSpec,
    FaultyCostModel,
    FaultyStrategy,
    InjectedFault,
    StallingClock,
    corrupt_catalog,
)
from repro.robustness.feedback import (
    FeedbackReport,
    FeedbackResult,
    feedback_round,
    recalibrate,
    run_feedback,
)
from repro.robustness.harness import (
    CurvePoint,
    DEFAULT_METHODS,
    DEFAULT_Q_VALUES,
    REPORT_VERSION,
    RobustnessConfig,
    RobustnessReport,
    TrialResult,
    run_robustness,
    write_report,
)
from repro.robustness.resilience import (
    FailureLog,
    FailureRecord,
    NoValidPlanError,
    deterministic_fallback_order,
    resilient_optimize,
)
from repro.robustness.verify import (
    PlanVerificationError,
    VerificationReport,
    catalog_violations,
    sanitize_catalog,
    verify_or_raise,
    verify_plan,
)

__all__ = [
    "CORRUPTION_KINDS",
    "CurvePoint",
    "DEFAULT_METHODS",
    "DEFAULT_Q_VALUES",
    "DISTRIBUTIONS",
    "ErrorModel",
    "FAULT_KINDS",
    "FeedbackReport",
    "FeedbackResult",
    "LOG_NORMAL",
    "LOG_UNIFORM",
    "REPORT_VERSION",
    "RobustnessConfig",
    "RobustnessReport",
    "TrialResult",
    "feedback_round",
    "q_error",
    "recalibrate",
    "run_feedback",
    "run_robustness",
    "write_report",
    "FaultSpec",
    "FaultyCostModel",
    "FaultyStrategy",
    "InjectedFault",
    "StallingClock",
    "corrupt_catalog",
    "FailureLog",
    "FailureRecord",
    "NoValidPlanError",
    "deterministic_fallback_order",
    "resilient_optimize",
    "PlanVerificationError",
    "VerificationReport",
    "catalog_violations",
    "sanitize_catalog",
    "verify_or_raise",
    "verify_plan",
]
