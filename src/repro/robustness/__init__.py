"""Robustness subsystem: fault injection, fallback chains, verification.

Production query optimizers must *always* return the best valid plan found
so far, degraded if necessary — a crash, a corrupt statistic, or an expired
budget must never propagate to the caller as an unhandled exception.  This
package provides the three pieces that deliver the guarantee:

:mod:`repro.robustness.faults`
    A deterministic, seedable fault-injection harness: wrap a cost model,
    corrupt a catalog, or sabotage a strategy, and drive the optimizer
    through every failure mode on purpose (chaos testing).
:mod:`repro.robustness.verify`
    The plan-verification gate every optimization result passes before it
    is returned, plus catalog validation and sanitization.
:mod:`repro.robustness.resilience`
    The fallback chain behind ``optimize(..., resilient=True)``: retry
    with rotated seeds, degrade method → augmentation → deterministic
    spanning order, and record every step in a structured ``FailureLog``.
"""

from repro.robustness.faults import (
    CORRUPTION_KINDS,
    FAULT_KINDS,
    FaultSpec,
    FaultyCostModel,
    FaultyStrategy,
    InjectedFault,
    StallingClock,
    corrupt_catalog,
)
from repro.robustness.resilience import (
    FailureLog,
    FailureRecord,
    NoValidPlanError,
    deterministic_fallback_order,
    resilient_optimize,
)
from repro.robustness.verify import (
    PlanVerificationError,
    VerificationReport,
    catalog_violations,
    sanitize_catalog,
    verify_or_raise,
    verify_plan,
)

__all__ = [
    "CORRUPTION_KINDS",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultyCostModel",
    "FaultyStrategy",
    "InjectedFault",
    "StallingClock",
    "corrupt_catalog",
    "FailureLog",
    "FailureRecord",
    "NoValidPlanError",
    "deterministic_fallback_order",
    "resilient_optimize",
    "PlanVerificationError",
    "VerificationReport",
    "catalog_violations",
    "sanitize_catalog",
    "verify_or_raise",
    "verify_plan",
]
