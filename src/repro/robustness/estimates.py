"""Seeded q-error perturbation of catalog statistics ("estimates are lies").

Every scenario elsewhere in the repo hands the optimizer *exact* System-R
statistics, so experiments only ever measure search quality.  Real
optimizers consume estimates that are wrong — routinely by orders of
magnitude — and the interesting question becomes how much plan quality
survives the lies.  :class:`ErrorModel` manufactures the lies on demand,
deterministically.

The error unit is the **q-error**: for a true value ``t`` and an estimate
``e``, ``q = max(e / t, t / e) >= 1`` (the standard multiplicative error
measure of the cardinality-estimation literature).  An ``ErrorModel(q,
seed)`` perturbs every base-table cardinality and every join-column
distinct-value count of a :class:`~repro.catalog.join_graph.JoinGraph` by
an independent multiplicative factor whose magnitude is controlled by
``q``:

``lognormal`` (default)
    ``ln f ~ Normal(0, ln(q) / 2)`` — the log-normal error model, under
    which roughly 95% of individual estimates have q-error at most ``q``
    (and ~5% are worse, as in real systems where a few estimates are
    catastrophically wrong).  ``q = 1`` degenerates to the identity.
``loguniform``
    ``f`` log-uniform in ``[1/q, q]`` — a hard-bounded error model, the
    semantics of the original ad-hoc ``perturb_graph`` in
    :mod:`repro.experiments.sensitivity` (which is now a thin shim over
    this class).

Determinism contract
--------------------
:meth:`ErrorModel.perturb` derives its stream from ``(seed, distribution,
q)`` via :func:`repro.utils.rng.derive_rng` and draws factors in a fixed
order (relations by index, then predicates in graph order, left side
before right).  The same ``(graph, seed, q, distribution)`` therefore
always yields a statistically *identical* perturbed graph — across runs,
processes, and worker counts — which is what makes the robustness
harness's byte-identical-report guarantee possible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.utils.rng import derive_rng

#: Supported error distributions.
LOG_NORMAL = "lognormal"
LOG_UNIFORM = "loguniform"
DISTRIBUTIONS: tuple[str, ...] = (LOG_NORMAL, LOG_UNIFORM)


def q_error(estimate: float, truth: float) -> float:
    """The q-error ``max(e/t, t/e)`` of one estimate (>= 1).

    Both quantities must be positive; a perfect estimate scores 1.
    """
    if estimate <= 0 or truth <= 0:
        raise ValueError(
            f"q_error needs positive operands, got {estimate!r}/{truth!r}"
        )
    ratio = estimate / truth
    return max(ratio, 1.0 / ratio)


@dataclass(frozen=True)
class ErrorModel:
    """A seeded multiplicative estimation-error model of magnitude ``q``.

    Parameters
    ----------
    q:
        The q-error magnitude (>= 1).  Under ``lognormal`` it is the
        ~95th percentile of individual q-errors; under ``loguniform`` it
        is a hard bound.  ``q = 1`` is the identity model.
    seed:
        Root seed of the perturbation stream (see the module docstring's
        determinism contract).
    distribution:
        ``"lognormal"`` (default) or ``"loguniform"``.
    perturb_cardinalities / perturb_selectivities:
        Switch off perturbation of base-table cardinalities or of
        join-column distinct counts (and hence join selectivities)
        respectively, for ablations.
    """

    q: float
    seed: int = 0
    distribution: str = LOG_NORMAL
    perturb_cardinalities: bool = True
    perturb_selectivities: bool = True

    def __post_init__(self) -> None:
        if not math.isfinite(self.q) or self.q < 1.0:
            raise ValueError(f"q must be finite and >= 1, got {self.q!r}")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; "
                f"one of {DISTRIBUTIONS}"
            )

    # ------------------------------------------------------------------
    # Factor draws
    # ------------------------------------------------------------------

    def factor(self, rng: random.Random) -> float:
        """One multiplicative error factor drawn from ``rng``."""
        if self.q == 1.0:
            return 1.0
        if self.distribution == LOG_NORMAL:
            sigma = math.log(self.q) / 2.0
            return rng.lognormvariate(0.0, sigma)
        # loguniform: f = q ** u with u uniform in [-1, 1] — identically
        # the original perturb_graph draw low * (q/low) ** rng.random().
        low = 1.0 / self.q
        return low * (self.q / low) ** rng.random()

    # ------------------------------------------------------------------
    # Graph perturbation
    # ------------------------------------------------------------------

    def perturb(self, graph: JoinGraph) -> JoinGraph:
        """A perturbed copy of ``graph`` under this model's own stream.

        Pure in ``(graph, self)``: repeated calls return statistically
        identical graphs.
        """
        rng = derive_rng(self.seed, "error-model", self.distribution, self.q)
        return self.perturb_with_rng(graph, rng)

    def perturb_with_rng(self, graph: JoinGraph, rng: random.Random) -> JoinGraph:
        """Like :meth:`perturb` but consuming a caller-supplied stream.

        Exists for the :func:`repro.experiments.sensitivity.perturb_graph`
        shim, whose public signature takes an explicit ``random.Random``.
        Draw order is fixed (relations by index, then predicates in graph
        order, left before right) regardless of the switches, which skip
        *applying* a draw, never drawing it — so ablations stay aligned
        on the same stream.
        """
        relations: list[Relation] = []
        for relation in graph.relations:
            f = self.factor(rng)
            if self.perturb_cardinalities:
                cardinality = max(2, int(round(relation.base_cardinality * f)))
            else:
                cardinality = relation.base_cardinality
            relations.append(
                Relation(relation.name, cardinality, relation.selections)
            )
        predicates: list[JoinPredicate] = []
        for predicate in graph.predicates:
            left_factor = self.factor(rng)
            right_factor = self.factor(rng)
            if not self.perturb_selectivities:
                left_factor = right_factor = 1.0
            # Distinct counts stay within the (perturbed) effective
            # cardinality of their relation, which also satisfies the
            # graph's distinct <= base-rows validation.
            left_cap = relations[predicate.left].cardinality
            right_cap = relations[predicate.right].cardinality
            predicates.append(
                JoinPredicate(
                    predicate.left,
                    predicate.right,
                    left_distinct=min(
                        left_cap,
                        max(1.0, predicate.left_distinct * left_factor),
                    ),
                    right_distinct=min(
                        right_cap,
                        max(1.0, predicate.right_distinct * right_factor),
                    ),
                )
            )
        return JoinGraph(relations, predicates)

    def n_draws(self, graph: JoinGraph) -> int:
        """Factor draws one perturbation of ``graph`` consumes."""
        return graph.n_relations + 2 * len(graph.predicates)

    def to_json_dict(self) -> dict:
        """A JSON-safe description (embedded in robustness reports)."""
        return {
            "q": self.q,
            "seed": self.seed,
            "distribution": self.distribution,
            "perturb_cardinalities": self.perturb_cardinalities,
            "perturb_selectivities": self.perturb_selectivities,
        }
