"""Deterministic, seedable fault injection for chaos-testing the optimizer.

Production resilience claims are worthless until the failure modes have
actually been driven through the system.  This module manufactures them on
demand, deterministically, so every chaos test is bit-for-bit reproducible:

* :class:`FaultyCostModel` wraps any cost model and injects NaN/inf/negative
  costs, exceptions, or artificial wall-clock stalls at chosen evaluations.
* :func:`corrupt_catalog` returns a structurally identical join graph whose
  statistics have been corrupted (zero/negative/NaN cardinalities, missing
  or excessive distinct-value counts) — the graphs a stale or bit-rotted
  statistics store would produce.
* :class:`FaultyStrategy` wraps any optimization method and makes it crash
  after a chosen number of evaluations — the mid-anneal worker death the
  massively-parallel setting must tolerate.
* :class:`StallingClock` is an injectable clock for
  :class:`~repro.core.budget.WallClockBudget` that advances deterministic,
  scripted amounts — wall-clock expiry without actual waiting.

Every stochastic choice flows from :func:`repro.utils.rng.derive_rng`, so a
seeded fault plan fires identically across runs and processes.
"""

from __future__ import annotations

import copy
import math
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.cost.base import CostModel
from repro.core.combinations import MethodParams, Strategy, make_strategy
from repro.core.state import Evaluator
from repro.plans.join_order import JoinOrder
from repro.utils.rng import derive_rng

#: Cost-fault kinds accepted by :class:`FaultSpec`.
NAN_COST = "nan-cost"
INF_COST = "inf-cost"
NEGATIVE_COST = "negative-cost"
COST_EXCEPTION = "exception"
STALL = "stall"
FAULT_KINDS = (NAN_COST, INF_COST, NEGATIVE_COST, COST_EXCEPTION, STALL)

#: Catalog-corruption kinds accepted by :func:`corrupt_catalog`.
ZERO_CARDINALITY = "zero-cardinality"
NEGATIVE_CARDINALITY = "negative-cardinality"
NAN_CARDINALITY = "nan-cardinality"
MISSING_DISTINCT = "missing-distinct"
NEGATIVE_DISTINCT = "negative-distinct"
EXCESS_DISTINCT = "excess-distinct"
CORRUPTION_KINDS = (
    ZERO_CARDINALITY,
    NEGATIVE_CARDINALITY,
    NAN_CARDINALITY,
    MISSING_DISTINCT,
    NEGATIVE_DISTINCT,
    EXCESS_DISTINCT,
)


class InjectedFault(RuntimeError):
    """An error deliberately raised by the fault-injection harness."""


@dataclass(frozen=True)
class FaultSpec:
    """When and how one fault fires inside a :class:`FaultyCostModel`.

    Exactly one trigger should be set:

    ``at_evaluation``
        Fire on the Nth ``join_cost`` call (1-based), once.
    ``every``
        Fire on every ``every``-th call.
    ``probability``
        Fire on each call with this probability, drawn from the model's
        seeded stream (deterministic for a fixed seed and call sequence).
    """

    kind: str
    at_evaluation: int | None = None
    every: int | None = None
    probability: float = 0.0
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        triggers = (
            (self.at_evaluation is not None)
            + (self.every is not None)
            + (self.probability > 0)
        )
        if triggers != 1:
            raise ValueError(
                "exactly one of at_evaluation/every/probability must be set"
            )

    def fires(self, call_index: int, rng: random.Random) -> bool:
        if self.at_evaluation is not None:
            return call_index == self.at_evaluation
        if self.every is not None:
            return call_index % self.every == 0
        return rng.random() < self.probability


class FaultyCostModel(CostModel):
    """A cost model wrapper that injects faults into ``join_cost`` calls.

    The wrapper deliberately **bypasses** the finite-cost guard of
    :meth:`CostModel.plan_cost` (it re-implements the sum without the
    check), simulating a third-party model that does not use the guarded
    base implementation — precisely the misbehaving component the
    verification gate and the resilient fallback chain must catch.

    The fault counter persists across optimization attempts, so a fault
    pinned to one evaluation fires once and retries see a healthy model —
    the transient-failure scenario.  ``stall_hook`` (default: no-op) is
    called with ``stall_seconds`` when a stall fires; pass a
    :class:`StallingClock`'s ``advance`` or ``time.sleep`` as desired.
    """

    name = "faulty"

    def __init__(
        self,
        inner: CostModel,
        faults: Iterable[FaultSpec],
        seed: int = 0,
        stall_hook: Callable[[float], None] | None = None,
    ) -> None:
        self.inner = inner
        self.faults = tuple(faults)
        self.calls = 0
        self.n_injected = 0
        self.stall_hook = stall_hook
        self._rng = derive_rng(seed, "fault-injection", inner.name)

    def join_cost(
        self, outer_size: float, inner_size: float, result_size: float
    ) -> float:
        self.calls += 1
        for fault in self.faults:
            if not fault.fires(self.calls, self._rng):
                continue
            self.n_injected += 1
            if fault.kind == NAN_COST:
                return float("nan")
            if fault.kind == INF_COST:
                return math.inf
            if fault.kind == NEGATIVE_COST:
                return -1.0
            if fault.kind == COST_EXCEPTION:
                raise InjectedFault(
                    f"injected cost-model exception at evaluation {self.calls}"
                )
            if fault.kind == STALL:
                if self.stall_hook is not None:
                    self.stall_hook(fault.stall_seconds)
                break  # stall, then price the join normally
        return self.inner.join_cost(outer_size, inner_size, result_size)

    def plan_cost(self, order: JoinOrder, graph: JoinGraph) -> float:
        # No finite-cost guard here, by design (see class docstring).
        from repro.cost.cardinality import PlanEstimator

        estimator = PlanEstimator(graph, order[0])
        total = 0.0
        for position in range(1, len(order)):
            step = estimator.step(order[position])
            total += self.join_cost(
                step.outer_size, step.inner_size, step.result_size
            )
        return total

    def __repr__(self) -> str:
        return (
            f"FaultyCostModel({self.inner!r}, faults={len(self.faults)}, "
            f"calls={self.calls}, injected={self.n_injected})"
        )


class StallingClock:
    """A deterministic fake clock for :class:`WallClockBudget` tests.

    Each call advances the clock by ``tick`` seconds; scheduled ``jumps``
    (call index → extra seconds) model a machine stall at a precise point.
    ``advance`` can be used as a :class:`FaultyCostModel` stall hook.
    """

    def __init__(
        self,
        tick: float = 0.0,
        jumps: Mapping[int, float] | None = None,
    ) -> None:
        self.tick = tick
        self.jumps = dict(jumps or {})
        self.calls = 0
        self.now = 0.0

    def __call__(self) -> float:
        self.calls += 1
        self.now += self.tick + self.jumps.get(self.calls, 0.0)
        return self.now

    def advance(self, seconds: float) -> None:
        """Jump the clock forward (a stall just happened)."""
        self.now += seconds


def _corrupt_copy(obj, **attrs):
    """Copy a frozen dataclass instance and overwrite attributes unchecked."""
    clone = copy.copy(obj)
    for name, value in attrs.items():
        object.__setattr__(clone, name, value)
    return clone


def corrupt_catalog(graph: JoinGraph, kind: str, seed: int = 0) -> JoinGraph:
    """A copy of ``graph`` with one deterministically chosen corrupt statistic.

    The victim relation or predicate is picked from a stream derived from
    ``seed`` and ``kind``, so the same call always corrupts the same spot.
    The returned graph is built with ``validate=False`` — exactly how
    corrupt statistics arrive in production: past the constructor, via a
    path that skipped validation.
    """
    if kind not in CORRUPTION_KINDS:
        raise ValueError(
            f"unknown corruption kind {kind!r}; one of {CORRUPTION_KINDS}"
        )
    rng = derive_rng(seed, "corrupt-catalog", kind)
    relations = list(graph.relations)
    predicates = list(graph.predicates)
    if kind in (ZERO_CARDINALITY, NEGATIVE_CARDINALITY, NAN_CARDINALITY):
        victim = rng.randrange(len(relations))
        corrupted_value = {
            ZERO_CARDINALITY: 0,
            NEGATIVE_CARDINALITY: -relations[victim].base_cardinality,
            NAN_CARDINALITY: float("nan"),
        }[kind]
        relations[victim] = _corrupt_copy(
            relations[victim], base_cardinality=corrupted_value
        )
    else:
        if not predicates:
            raise ValueError("graph has no predicates to corrupt")
        index = rng.randrange(len(predicates))
        victim_predicate = predicates[index]
        corrupted_value = {
            MISSING_DISTINCT: 0.0,
            NEGATIVE_DISTINCT: -victim_predicate.left_distinct,
            EXCESS_DISTINCT: 1e3
            * graph.relations[victim_predicate.left].base_cardinality,
        }[kind]
        predicates[index] = _corrupt_copy(
            victim_predicate, left_distinct=corrupted_value
        )
    return JoinGraph(relations, predicates, validate=False)


class _TrippingEvaluator:
    """Evaluator proxy that raises after a fixed number of evaluations.

    The candidate protocol is proxied explicitly (not via ``__getattr__``)
    so delta-evaluated strategies trip at exactly the same evaluation
    count as full-cost ones — a forwarded bound method would bypass the
    trip check entirely.
    """

    def __init__(self, inner: Evaluator, fail_after: int) -> None:
        self._inner = inner
        self._fail_after = fail_after

    def _check_trip(self) -> None:
        if self._inner.n_evaluations >= self._fail_after:
            raise InjectedFault(
                f"injected strategy crash after {self._fail_after} evaluations"
            )

    def evaluate(self, order: JoinOrder) -> float:
        self._check_trip()
        return self._inner.evaluate(order)

    def evaluate_candidate(
        self,
        order: JoinOrder,
        upper_bound: float | None = None,
        first_changed: int | None = None,
    ) -> float | None:
        self._check_trip()
        return self._inner.evaluate_candidate(
            order, upper_bound=upper_bound, first_changed=first_changed
        )

    def commit_candidate(self, order: JoinOrder) -> None:
        self._inner.commit_candidate(order)

    def prime(self, order: JoinOrder) -> None:
        self._inner.prime(order)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class FaultyStrategy(Strategy):
    """Wrap any method so it crashes after ``fail_after`` evaluations.

    The best plan found *before* the crash remains recorded on the real
    evaluator — the resilient optimizer's "best valid plan so far"
    guarantee is exercised against exactly this wrapper.
    """

    def __init__(self, inner: Strategy | str, fail_after: int) -> None:
        self.inner = make_strategy(inner) if isinstance(inner, str) else inner
        self.fail_after = fail_after
        self.name = self.inner.name
        self.description = (
            f"{self.inner.name} crashing after {fail_after} evaluations"
        )

    def run(
        self, evaluator: Evaluator, rng: random.Random, params: MethodParams
    ) -> None:
        self.inner.run(_TrippingEvaluator(evaluator, self.fail_after), rng, params)
