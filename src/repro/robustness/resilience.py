"""The fallback chain behind ``optimize(..., resilient=True)``.

The paper's framing is anytime combinatorial search under a fixed time
budget: the optimizer must **always return the best valid plan found so
far**, degraded if necessary.  This module delivers that guarantee through
a staged chain, every step of which is recorded in a structured
:class:`FailureLog` attached to the returned result:

1. **Pre-flight** — validate the catalog; corrupted statistics are
   repaired with conservative clamps (:func:`sanitize_catalog`) rather
   than crashing the search.
2. **Attempt** — run the requested method on the full budget.  A crash
   mid-search is caught; whatever best plan its evaluator had already
   recorded still competes.
3. **Retries** — stochastic methods are retried with rotated derived
   seeds (deterministic methods once, in case the failure was transient);
   each retry gets a fresh :data:`RETRY_BUDGET_FRACTION` carve of the
   original budget, so a drained budget cannot starve recovery.
4. **Method degradation** — the pure augmentation heuristic, then KBZ:
   cheap, deterministic, and immune to move-generator bugs.
5. **Last resort** — a deterministic spanning order (smallest-cardinality
   greedy growth, components contiguous), which is valid by construction.

Every candidate — including the last resort — must pass the plan
verification gate (:func:`~repro.robustness.verify.verify_plan`) before it
is returned.  Only when every stage fails does :class:`NoValidPlanError`
escape, carrying the full failure log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.catalog.join_graph import JoinGraph
from repro.core.budget import Budget
from repro.core.combinations import MethodParams, Strategy, make_strategy
from repro.core.optimizer import OptimizationResult
from repro.core.state import Evaluator
from repro.cost.base import CostModel
from repro.cost.cardinality import prefix_cardinalities
from repro.obs import events as obs_events
from repro.obs.tracer import Tracer
from repro.plans.join_order import JoinOrder
from repro.robustness.verify import (
    catalog_violations,
    sanitize_catalog,
    verify_plan,
)
from repro.utils.rng import derive_rng, derive_seed

#: Share of the original budget granted to each recovery stage (retries and
#: method fallbacks).  Recovery overhead is therefore bounded by
#: ``(n_stages * RETRY_BUDGET_FRACTION)`` of the requested work.
RETRY_BUDGET_FRACTION = 0.25

#: Degradation chain tried after the requested method's retries: the pure
#: augmentation heuristic first (the paper's strongest cheap heuristic),
#: then KBZ.  Both are deterministic and finish in a few states.
FALLBACK_METHODS = ("AUG", "KBZ")

#: Method name reported when the deterministic spanning order is returned.
SPANNING_METHOD = "SPANNING"


@dataclass(frozen=True)
class FailureRecord:
    """One failure the fallback chain observed, and what it did about it."""

    stage: str  # "preflight", "attempt", "retry-1", "fallback-AUG", ...
    method: str
    seed: int | None
    kind: str  # "corrupt-catalog" | "exception" | "no-plan" | "verification"
    detail: str
    action: str

    def __str__(self) -> str:
        seed = "" if self.seed is None else f" (seed {self.seed})"
        return (
            f"[{self.stage}] {self.method}{seed}: {self.kind} — "
            f"{self.detail} -> {self.action}"
        )


@dataclass
class FailureLog:
    """An ordered record of every failure seen during one optimization.

    With a recording ``tracer`` attached, every record is mirrored into
    the trace as a ``fault`` event at the moment it is logged — the
    trace and the log tell the same story in the same order.  The field
    is excluded from comparison so logs compare on their records alone.
    """

    records: list[FailureRecord] = field(default_factory=list)
    tracer: Tracer | None = field(default=None, repr=False, compare=False)

    def add(self, **kwargs) -> None:
        record = FailureRecord(**kwargs)
        self.records.append(record)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                obs_events.FAULT,
                stage=record.stage,
                method=record.method,
                kind=record.kind,
                action=record.action,
            )
            self.tracer.metrics.inc("faults")

    def extend(self, records) -> None:
        for record in records:
            self.records.append(record)
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.emit(
                    obs_events.FAULT,
                    stage=record.stage,
                    method=record.method,
                    kind=record.kind,
                    action=record.action,
                )
                self.tracer.metrics.inc("faults")

    def as_tuple(self) -> tuple[FailureRecord, ...]:
        return tuple(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __iter__(self):
        return iter(self.records)

    def summary(self) -> str:
        """Multi-line human-readable summary (printed to stderr by the CLI)."""
        if not self.records:
            return "no failures recorded"
        lines = [f"{len(self.records)} failure(s) during optimization:"]
        lines.extend(f"  {record}" for record in self.records)
        return "\n".join(lines)


class NoValidPlanError(RuntimeError):
    """Every stage of the fallback chain failed to produce a valid plan."""

    def __init__(self, message: str, failures: FailureLog) -> None:
        super().__init__(f"{message}\n{failures.summary()}")
        self.failures = failures


def _method_name(method: str | Strategy) -> str:
    return method.name if isinstance(method, Strategy) else str(method).upper()


def deterministic_fallback_order(graph: JoinGraph) -> JoinOrder:
    """A valid join order built without any search or random choice.

    Each component is grown greedily from its smallest relation, always
    placing the smallest-cardinality frontier relation next (ties break on
    vertex index); components are emitted smallest-first and contiguously.
    Valid by construction, stable across runs — the chain's last resort.
    """

    def size_key(vertex: int) -> tuple[float, int]:
        cardinality = graph.cardinality(vertex)
        if not math.isfinite(cardinality):
            cardinality = math.inf
        return (cardinality, vertex)

    positions: list[int] = []
    components = sorted(graph.components, key=lambda c: min(size_key(v) for v in c))
    for component in components:
        members = set(component)
        start = min(component, key=size_key)
        placed = [start]
        placed_set = {start}
        frontier = {n for n in graph.neighbors(start) if n in members}
        while len(placed) < len(component):
            candidates = sorted(frontier - placed_set, key=size_key)
            nxt = candidates[0]
            placed.append(nxt)
            placed_set.add(nxt)
            frontier.update(
                n
                for n in graph.neighbors(nxt)
                if n in members and n not in placed_set
            )
        positions.extend(placed)
    return JoinOrder(positions)


def _run_guarded(
    graph: JoinGraph,
    method: str | Strategy,
    model: CostModel,
    budget: Budget,
    seed: int,
    params: MethodParams,
    target_cost: float | None,
    tracer: Tracer | None = None,
) -> tuple[Evaluator, BaseException | None]:
    """Run one strategy, catching *everything*; the evaluator keeps the best.

    ``BudgetExhausted``/``TargetReached`` are the normal anytime exits and
    are not reported as errors; any other exception is returned for the
    chain to log — together with whatever best plan was found before it.
    """
    from repro.core.budget import BudgetExhausted
    from repro.core.state import TargetReached

    strategy = make_strategy(method)
    # Always the full-cost reference Evaluator, never the incremental
    # DeltaEvaluator: the resilient path is the recovery mechanism for
    # misbehaving evaluation, so it must not share the optimization the
    # verification gate is meant to check independently.
    evaluator = Evaluator(graph, model, budget, target_cost=target_cost)
    if tracer is not None:
        evaluator.tracer = tracer
    rng_key = method if isinstance(method, str) else strategy.name
    rng = derive_rng(seed, "optimize", rng_key, graph.n_relations)
    error: BaseException | None = None
    try:
        strategy.run(evaluator, rng, params)
    except (BudgetExhausted, TargetReached):
        pass
    # boundary: the chain's core guarantee — a crashing strategy still
    # surrenders its best-so-far plan, and the error is logged upstream.
    except Exception as exc:
        error = exc
    return evaluator, error


def _stages(
    method: str | Strategy,
    method_name: str,
    seed: int,
    budget: Budget,
    max_retries: int,
):
    """Yield ``(stage, method, seed, budget)`` for the whole chain."""
    yield "attempt", method, seed, budget
    stochastic = make_strategy(method).stochastic
    n_retries = max_retries if stochastic else min(1, max_retries)
    for i in range(1, n_retries + 1):
        retry_seed = (
            derive_seed(seed, "resilience", "retry", i) if stochastic else seed
        )
        yield f"retry-{i}", method, retry_seed, budget.carve(
            RETRY_BUDGET_FRACTION
        )
    for fallback in FALLBACK_METHODS:
        if method_name.startswith(fallback):
            continue
        yield f"fallback-{fallback}", fallback, derive_seed(
            seed, "resilience", "fallback", fallback
        ), budget.carve(RETRY_BUDGET_FRACTION)


def resilient_optimize(
    graph: JoinGraph,
    *,
    method: str | Strategy = "IAI",
    model: CostModel,
    budget: Budget,
    seed: int = 0,
    params: MethodParams | None = None,
    target_cost: float | None = None,
    max_retries: int = 2,
    tracer: Tracer | None = None,
) -> OptimizationResult:
    """Optimize with the full fallback chain; see the module docstring.

    Raises :class:`NoValidPlanError` only when every stage — including the
    deterministic spanning-order last resort — fails verification.

    A recording ``tracer`` sees every :class:`FailureRecord` mirrored as
    a ``fault`` event the moment it is logged, and one ``degraded``
    event when the returned result is degraded.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if params is None:
        params = MethodParams()
    failures = FailureLog(tracer=tracer)
    method_name = _method_name(method)

    violations = catalog_violations(graph)
    if violations:
        shown = "; ".join(violations[:4])
        if len(violations) > 4:
            shown += f" (+{len(violations) - 4} more)"
        failures.add(
            stage="preflight",
            method=method_name,
            seed=None,
            kind="corrupt-catalog",
            detail=shown,
            action="sanitized catalog statistics and continued",
        )
        graph = sanitize_catalog(graph)

    if graph.n_relations == 1:
        result = OptimizationResult(
            method=method_name,
            graph=graph,
            order=JoinOrder([0]),
            cost=0.0,
            units_spent=0.0,
            n_evaluations=0,
            trajectory=(),
            degraded=bool(failures),
            failures=failures.as_tuple(),
        )
    elif not graph.is_connected:
        result = _resilient_disconnected(
            graph, method, method_name, model, budget, seed, params,
            max_retries, failures,
        )
    else:
        result = _resilient_connected(
            graph, method, method_name, model, budget, seed, params,
            target_cost, max_retries, failures,
        )
    if tracer is not None and tracer.enabled and result.degraded:
        tracer.emit(
            obs_events.DEGRADED,
            method=result.method,
            failures=len(result.failures),
        )
        tracer.metrics.inc("degraded_runs")
    return result


def _resilient_connected(
    graph: JoinGraph,
    method: str | Strategy,
    method_name: str,
    model: CostModel,
    budget: Budget,
    seed: int,
    params: MethodParams,
    target_cost: float | None,
    max_retries: int,
    failures: FailureLog,
) -> OptimizationResult:
    total_spent = 0.0
    total_evaluations = 0
    for stage, stage_method, stage_seed, stage_budget in _stages(
        method, method_name, seed, budget, max_retries
    ):
        evaluator, error = _run_guarded(
            graph, stage_method, model, stage_budget, stage_seed, params,
            target_cost, tracer=failures.tracer,
        )
        total_spent += stage_budget.spent
        total_evaluations += evaluator.n_evaluations
        stage_name = _method_name(stage_method)
        if error is not None:
            failures.add(
                stage=stage,
                method=stage_name,
                seed=stage_seed,
                kind="exception",
                detail=f"{type(error).__name__}: {error}",
                action="kept the best plan found so far and continued",
            )
        best = evaluator.best
        if best is None:
            if error is None:
                failures.add(
                    stage=stage,
                    method=stage_name,
                    seed=stage_seed,
                    kind="no-plan",
                    detail="budget exhausted before any finite-cost plan "
                    "was recorded",
                    action="continued down the fallback chain",
                )
            continue
        report = verify_plan(best.order, best.cost, graph, model)
        if report.ok:
            return OptimizationResult(
                method=stage_name,
                graph=graph,
                order=best.order,
                cost=best.cost,
                units_spent=total_spent,
                n_evaluations=total_evaluations,
                trajectory=tuple(evaluator.trajectory),
                degraded=bool(failures),
                failures=failures.as_tuple(),
            )
        failures.add(
            stage=stage,
            method=stage_name,
            seed=stage_seed,
            kind="verification",
            detail="; ".join(report.violations),
            action="discarded the plan and continued",
        )
    result = _last_resort(
        graph, model, failures, total_spent, total_evaluations
    )
    if result is not None:
        return result
    raise NoValidPlanError(
        "every optimization attempt, fallback method, and the deterministic "
        "spanning order failed to produce a verifiable plan",
        failures,
    )


def _last_resort(
    graph: JoinGraph,
    model: CostModel,
    failures: FailureLog,
    total_spent: float,
    total_evaluations: int,
) -> OptimizationResult | None:
    """Price and verify the deterministic spanning order (two tries).

    Two pricing attempts because transient cost-model faults are counted
    per evaluation: the second call sees a different fault phase.
    """
    order = deterministic_fallback_order(graph)
    for attempt in range(2):
        try:
            cost = model.plan_cost(order, graph)
        # boundary: last-resort pricing must survive arbitrary model faults
        except Exception as exc:
            failures.add(
                stage=f"last-resort-{attempt + 1}",
                method=SPANNING_METHOD,
                seed=None,
                kind="exception",
                detail=f"cost model raised {type(exc).__name__}: {exc}",
                action="re-priced the spanning order"
                if attempt == 0
                else "gave up",
            )
            continue
        report = verify_plan(order, cost, graph, model)
        if report.ok:
            return OptimizationResult(
                method=SPANNING_METHOD,
                graph=graph,
                order=order,
                cost=cost,
                units_spent=total_spent,
                n_evaluations=total_evaluations,
                trajectory=((total_spent, cost),),
                degraded=True,
                failures=failures.as_tuple(),
            )
        failures.add(
            stage=f"last-resort-{attempt + 1}",
            method=SPANNING_METHOD,
            seed=None,
            kind="verification",
            detail="; ".join(report.violations),
            action="re-verified the spanning order"
            if attempt == 0
            else "gave up",
        )
    return None


def _resilient_disconnected(
    graph: JoinGraph,
    method: str | Strategy,
    method_name: str,
    model: CostModel,
    budget: Budget,
    seed: int,
    params: MethodParams,
    max_retries: int,
    failures: FailureLog,
) -> OptimizationResult:
    """Postpone cross products, with per-component resilience.

    Mirrors the non-resilient disconnected path (budget shares
    proportional to each component's ``N^2``), but each component is
    optimized resiliently; a component whose whole chain fails degrades to
    its deterministic spanning order rather than failing the query.
    """
    components = graph.components
    weights = [max(1, len(c) - 1) ** 2 for c in components]
    total_weight = sum(weights)
    pieces: list[tuple[float, list[int]]] = []
    n_evaluations = 0
    total_spent = 0.0
    used_methods: set[str] = set()
    for component, weight in zip(components, weights):
        subgraph = graph.subgraph(component)
        if subgraph.n_relations == 1:
            size = subgraph.cardinality(0)
            if not math.isfinite(size):
                size = math.inf
            pieces.append((size, list(component)))
            continue
        share = Budget(limit=max(1.0, budget.remaining * weight / total_weight))
        try:
            result = resilient_optimize(
                subgraph,
                method=method,
                model=model,
                budget=share,
                seed=seed,
                params=params,
                max_retries=max_retries,
            )
        except NoValidPlanError as exc:
            failures.extend(exc.failures)
            failures.add(
                stage="component",
                method=method_name,
                seed=seed,
                kind="no-plan",
                detail=f"component {component} produced no verifiable plan",
                action="used its deterministic spanning order",
            )
            local = deterministic_fallback_order(subgraph)
            local_order = [component[i] for i in local]
            pieces.append((_safe_final_size(local, subgraph), local_order))
            continue
        failures.extend(result.failures)
        used_methods.add(result.method)
        budget.spent = min(budget.limit, budget.spent + result.units_spent)
        total_spent += result.units_spent
        n_evaluations += result.n_evaluations
        local_order = [component[i] for i in result.order]
        pieces.append((_safe_final_size(result.order, subgraph), local_order))
    pieces.sort(key=lambda piece: piece[0])
    positions: list[int] = []
    for _, piece in pieces:
        positions.extend(piece)
    order = JoinOrder(positions)
    reported_method = (
        used_methods.pop() if len(used_methods) == 1 else method_name
    )
    for attempt in range(2):
        try:
            cost = model.plan_cost(order, graph)
        # boundary: concatenation pricing must survive arbitrary model faults
        except Exception as exc:
            failures.add(
                stage=f"concatenation-{attempt + 1}",
                method=reported_method,
                seed=seed,
                kind="exception",
                detail=f"pricing the concatenated order raised "
                f"{type(exc).__name__}: {exc}",
                action="re-priced" if attempt == 0 else "gave up",
            )
            continue
        report = verify_plan(order, cost, graph, model)
        if report.ok:
            return OptimizationResult(
                method=reported_method,
                graph=graph,
                order=order,
                cost=cost,
                units_spent=total_spent,
                n_evaluations=n_evaluations,
                trajectory=((total_spent, cost),),
                degraded=bool(failures),
                failures=failures.as_tuple(),
            )
        failures.add(
            stage=f"concatenation-{attempt + 1}",
            method=reported_method,
            seed=seed,
            kind="verification",
            detail="; ".join(report.violations),
            action="re-verified" if attempt == 0 else "gave up",
        )
    raise NoValidPlanError(
        "the concatenated per-component plan failed verification",
        failures,
    )


def _safe_final_size(order: JoinOrder, subgraph: JoinGraph) -> float:
    """Estimated component result size; ``inf`` when estimation fails."""
    try:
        return prefix_cardinalities(order, subgraph)[-1]
    # boundary: sizing is advisory; an unpriceable piece sorts last
    except Exception:
        return math.inf
