"""Base relations and their statistics.

The paper characterises each joining relation by

* its *cardinality* (number of tuples),
* zero or more *selection predicates*, each with a selectivity, which
  restrict the tuples participating in joins (the paper's ``N_k`` is the
  cardinality **after** all applicable selections), and
* the number of *distinct values* in each join column (kept on the join
  predicate, see :mod:`repro.catalog.predicates`, because distinct-value
  counts are per join column and the paper draws them per column).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class Selection:
    """A selection predicate applied to a base relation.

    Only the selectivity matters to the optimizer; the column name is kept
    for display and for the execution engine.
    """

    selectivity: float
    column: str = "attr"

    def __post_init__(self) -> None:
        check_fraction("selectivity", self.selectivity)


@dataclass(frozen=True)
class Relation:
    """A base relation participating in the join query.

    ``base_cardinality`` is the raw table size; :attr:`cardinality` is the
    effective size after pushing down all selections — the quantity the
    paper denotes ``N_k`` and every heuristic and cost model uses.
    """

    name: str
    base_cardinality: int
    selections: tuple[Selection, ...] = field(default=())

    def __post_init__(self) -> None:
        check_positive("base_cardinality", self.base_cardinality)
        if not math.isfinite(self.base_cardinality):
            raise ValueError(
                f"base_cardinality must be finite, got {self.base_cardinality!r}"
            )

    @property
    def selectivity(self) -> float:
        """Combined selectivity of all selections (1.0 when there are none)."""
        result = 1.0
        for selection in self.selections:
            result *= selection.selectivity
        return result

    @property
    def cardinality(self) -> float:
        """Effective cardinality ``N_k`` after all selections (at least 1)."""
        return max(1.0, self.base_cardinality * self.selectivity)

    def with_selections(self, *selectivities: float) -> "Relation":
        """Return a copy with the given selection selectivities appended."""
        new = self.selections + tuple(Selection(s) for s in selectivities)
        return Relation(self.name, self.base_cardinality, new)

    def __str__(self) -> str:
        return f"{self.name}(|{self.base_cardinality}| -> {self.cardinality:.1f})"
