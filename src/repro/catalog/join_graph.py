"""The join graph: relations as vertices, join predicates as edges.

The join graph is the optimizer's view of a query.  Vertices are relation
indices ``0 .. n_relations - 1``; each edge carries a
:class:`~repro.catalog.predicates.JoinPredicate`.  Parallel join predicates
between the same pair of relations are folded into a single edge whose
selectivity is the product of the individual selectivities (the standard
independence assumption); the folded edge keeps the distinct-value counts of
the most selective predicate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation


class JoinGraph:
    """An immutable join graph over a sequence of relations.

    Parameters
    ----------
    relations:
        The joining relations; their position is their vertex index.
    predicates:
        Join predicates.  At most one predicate per unordered pair is kept;
        duplicates raise ``ValueError`` (fold selectivities upstream).
    validate:
        When true (the default), statistics are sanity-checked at
        construction time: every relation must have a positive finite
        cardinality and no join column may claim more distinct values than
        its relation has rows.  ``validate=False`` skips only these
        statistical checks (structural checks always run) and exists for
        the fault-injection harness in :mod:`repro.robustness.faults`,
        which deliberately builds graphs with corrupted statistics.
    """

    def __init__(
        self,
        relations: Sequence[Relation],
        predicates: Iterable[JoinPredicate],
        validate: bool = True,
    ) -> None:
        if len(relations) == 0:
            raise ValueError("a join graph needs at least one relation")
        self._relations = tuple(relations)
        self._validated = validate
        if validate:
            for index, relation in enumerate(self._relations):
                self._check_relation(index, relation)
        self._adjacency: dict[int, dict[int, JoinPredicate]] = {
            i: {} for i in range(len(self._relations))
        }
        self._predicates: list[JoinPredicate] = []
        for predicate in predicates:
            self._add_predicate(predicate, validate)
        self._predicates_tuple = tuple(self._predicates)
        self._components = self._compute_components()

    @staticmethod
    def _check_relation(index: int, relation: Relation) -> None:
        cardinality = relation.base_cardinality
        if not isinstance(cardinality, (int, float)) or isinstance(
            cardinality, bool
        ):
            raise ValueError(
                f"relation {relation.name!r} (vertex {index}) has a "
                f"non-numeric cardinality {cardinality!r}"
            )
        if not math.isfinite(cardinality) or cardinality <= 0:
            raise ValueError(
                f"relation {relation.name!r} (vertex {index}) has "
                f"invalid cardinality {cardinality!r}; cardinalities must "
                "be positive and finite"
            )

    def _add_predicate(self, predicate: JoinPredicate, validate: bool) -> None:
        n = len(self._relations)
        if predicate.left == predicate.right:
            raise ValueError(
                f"self-join edge on relation {predicate.left}; a relation "
                "cannot join with itself in the join graph"
            )
        if not (0 <= predicate.left < n and 0 <= predicate.right < n):
            raise ValueError(f"predicate {predicate} references unknown relation")
        if predicate.right in self._adjacency[predicate.left]:
            raise ValueError(
                f"duplicate edge between {predicate.left} and {predicate.right}; "
                "fold parallel predicates before building the graph"
            )
        if validate:
            for side in (predicate.left, predicate.right):
                distinct = predicate.distinct_values(side)
                rows = self._relations[side].base_cardinality
                if not math.isfinite(distinct) or distinct <= 0:
                    raise ValueError(
                        f"predicate {predicate} has invalid distinct-value "
                        f"count {distinct!r} on relation {side}"
                    )
                if distinct > rows:
                    raise ValueError(
                        f"predicate {predicate} claims {distinct:g} distinct "
                        f"values on relation {side}, which has only "
                        f"{rows} rows"
                    )
        self._adjacency[predicate.left][predicate.right] = predicate
        self._adjacency[predicate.right][predicate.left] = predicate
        self._predicates.append(predicate)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def relations(self) -> tuple[Relation, ...]:
        return self._relations

    @property
    def predicates(self) -> tuple[JoinPredicate, ...]:
        return self._predicates_tuple

    @property
    def n_relations(self) -> int:
        return len(self._relations)

    @property
    def n_joins(self) -> int:
        """The paper's ``N``: number of joins = number of relations - 1.

        This is the *query size* parameter the time limits scale with, not
        the number of join predicates (a cyclic graph has more predicates
        than joins performed).
        """
        return len(self._relations) - 1

    def relation(self, index: int) -> Relation:
        return self._relations[index]

    def cardinality(self, index: int) -> float:
        """Effective cardinality ``N_k`` of relation ``index``."""
        return self._relations[index].cardinality

    def neighbors(self, index: int) -> Iterator[int]:
        """Vertices joined to ``index`` by a predicate."""
        return iter(self._adjacency[index])

    def adjacency(self, index: int) -> dict[int, JoinPredicate]:
        """Neighbor → predicate map for ``index``.

        Returned for read-only use on hot paths; do not mutate.
        """
        return self._adjacency[index]

    def degree(self, index: int) -> int:
        """Degree of ``index`` in the join graph (the paper's ``deg(k)``)."""
        return len(self._adjacency[index])

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adjacency[a]

    def edge(self, a: int, b: int) -> JoinPredicate:
        """The predicate between ``a`` and ``b`` (KeyError if absent)."""
        return self._adjacency[a][b]

    def selectivity(self, a: int, b: int) -> float:
        """Join selectivity ``J_ab``; 1.0 when no predicate links a and b.

        A missing predicate means a cross product, whose "selectivity" is 1.
        """
        predicate = self._adjacency[a].get(b)
        return 1.0 if predicate is None else predicate.selectivity

    def edges_between(self, group: Iterable[int], vertex: int) -> list[JoinPredicate]:
        """All predicates linking ``vertex`` to any member of ``group``."""
        adjacency = self._adjacency[vertex]
        return [adjacency[g] for g in group if g in adjacency]

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def _compute_components(self) -> tuple[tuple[int, ...], ...]:
        seen: set[int] = set()
        components: list[tuple[int, ...]] = []
        for start in range(self.n_relations):
            if start in seen:
                continue
            stack = [start]
            component: list[int] = []
            seen.add(start)
            while stack:
                vertex = stack.pop()
                component.append(vertex)
                for neighbor in self._adjacency[vertex]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            components.append(tuple(sorted(component)))
        return tuple(components)

    @property
    def components(self) -> tuple[tuple[int, ...], ...]:
        """Connected components, each as a sorted tuple of vertex indices."""
        return self._components

    @property
    def is_connected(self) -> bool:
        return len(self._components) == 1

    def subgraph(self, vertices: Sequence[int]) -> "JoinGraph":
        """The induced subgraph, with vertices renumbered ``0..len-1``.

        Used to optimize each connected component separately (the paper's
        postpone-cross-products heuristic).
        """
        index_of = {v: i for i, v in enumerate(vertices)}
        relations = [self._relations[v] for v in vertices]
        predicates = []
        for predicate in self._predicates:
            if predicate.left in index_of and predicate.right in index_of:
                predicates.append(
                    JoinPredicate(
                        index_of[predicate.left],
                        index_of[predicate.right],
                        predicate.left_distinct,
                        predicate.right_distinct,
                    )
                )
        return JoinGraph(relations, predicates, validate=self._validated)

    # ------------------------------------------------------------------
    # Spanning trees (used by the KBZ heuristic's algorithm G)
    # ------------------------------------------------------------------

    def spanning_tree_edges(
        self,
        weight: Callable[[JoinPredicate], float],
        start: int | None = None,
    ) -> list[JoinPredicate]:
        """Grow a minimum-weight spanning tree (Prim) over this graph.

        Requires a connected graph.  ``weight`` maps a predicate to its
        edge weight; ties break on (weight, left, right) so the result is
        deterministic.
        """
        if not self.is_connected:
            raise ValueError("spanning tree requires a connected join graph")
        if start is None:
            start = min(
                range(self.n_relations), key=lambda i: (self.cardinality(i), i)
            )
        in_tree = {start}
        tree: list[JoinPredicate] = []
        while len(in_tree) < self.n_relations:
            best: JoinPredicate | None = None
            best_key: tuple[float, int, int] | None = None
            for vertex in in_tree:
                for neighbor, predicate in self._adjacency[vertex].items():
                    if neighbor in in_tree:
                        continue
                    key = (weight(predicate), predicate.left, predicate.right)
                    if best_key is None or key < best_key:
                        best, best_key = predicate, key
            assert best is not None  # connected graph always yields an edge
            tree.append(best)
            in_tree.update(best.endpoints)
        return tree

    def __str__(self) -> str:
        return (
            f"JoinGraph({self.n_relations} relations, "
            f"{len(self._predicates_tuple)} predicates, "
            f"{len(self._components)} component(s))"
        )


@dataclass(frozen=True)
class Query:
    """A named join query: a join graph plus provenance metadata."""

    graph: JoinGraph
    name: str = "query"
    seed: int | None = None
    metadata: dict = field(default_factory=dict, compare=False)

    @property
    def n_joins(self) -> int:
        return self.graph.n_joins

    def __str__(self) -> str:
        return f"Query({self.name}, N={self.n_joins})"
