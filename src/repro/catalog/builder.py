"""A fluent builder for constructing queries by hand.

The synthetic benchmark generator (:mod:`repro.workloads`) is the main way
queries come into being; this builder exists for examples, tests, and users
who want to pose a concrete query against the library.
"""

from __future__ import annotations

from repro.catalog.join_graph import JoinGraph, Query
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation


class QueryBuilder:
    """Accumulates relations and join predicates, then builds a Query.

    Example
    -------
    >>> builder = QueryBuilder("triangle")
    >>> a = builder.relation("A", 1000)
    >>> b = builder.relation("B", 500, selections=(0.1,))
    >>> c = builder.relation("C", 2000)
    >>> builder.join(a, b, left_distinct=100, right_distinct=50)
    >>> builder.join(b, c, left_distinct=50, right_distinct=200)
    >>> query = builder.build()
    >>> query.n_joins
    2
    """

    def __init__(self, name: str = "query") -> None:
        self._name = name
        self._relations: list[Relation] = []
        self._predicates: list[JoinPredicate] = []

    def relation(
        self,
        name: str,
        cardinality: int,
        selections: tuple[float, ...] = (),
    ) -> int:
        """Add a relation; returns its vertex index for use in ``join``."""
        relation = Relation(name, cardinality).with_selections(*selections)
        self._relations.append(relation)
        return len(self._relations) - 1

    def join(
        self,
        left: int,
        right: int,
        left_distinct: float | None = None,
        right_distinct: float | None = None,
    ) -> "QueryBuilder":
        """Add a join predicate between two previously added relations.

        Distinct-value counts default to the relation's effective
        cardinality (i.e. the join column is a key).
        """
        if left_distinct is None:
            left_distinct = self._relations[left].cardinality
        if right_distinct is None:
            right_distinct = self._relations[right].cardinality
        self._predicates.append(
            JoinPredicate(left, right, left_distinct, right_distinct)
        )
        return self

    def build(self) -> Query:
        """Construct the immutable :class:`Query`."""
        graph = JoinGraph(self._relations, self._predicates)
        return Query(graph=graph, name=self._name)
