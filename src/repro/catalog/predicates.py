"""Join predicates and their selectivities.

A join predicate links two relations through one join column on each side.
Following the paper (and System R practice), the join selectivity is

    J_kl = 1 / max(D_k, D_l)

where ``D_k`` and ``D_l`` are the numbers of distinct values in the join
columns of relations ``k`` and ``l``.  The distinct-value counts are stored
on the predicate because the paper draws them per join column (as a fraction
of the relation cardinality), not per relation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate between relations ``left`` and ``right``.

    ``left``/``right`` are relation indices within a
    :class:`~repro.catalog.join_graph.JoinGraph`; ``left_distinct`` and
    ``right_distinct`` are the distinct-value counts of the join columns.
    """

    left: int
    right: int
    left_distinct: float
    right_distinct: float

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ValueError(f"self-join edge on relation {self.left}")
        check_positive("left_distinct", self.left_distinct)
        check_positive("right_distinct", self.right_distinct)

    @property
    def selectivity(self) -> float:
        """Join selectivity ``J = 1 / max(D_left, D_right)``.

        Clamped into ``(0, 1]``: fractional distinct counts (legal, they
        are estimates) would otherwise yield a "selectivity" above one and
        let a join *grow* its inputs beyond the cross-product bound.
        """
        return 1.0 / max(self.left_distinct, self.right_distinct, 1.0)

    def distinct_values(self, relation: int) -> float:
        """Distinct values of the join column on ``relation``'s side."""
        if relation == self.left:
            return self.left_distinct
        if relation == self.right:
            return self.right_distinct
        raise KeyError(f"relation {relation} is not an endpoint of {self}")

    def other(self, relation: int) -> int:
        """The endpoint other than ``relation``."""
        if relation == self.left:
            return self.right
        if relation == self.right:
            return self.left
        raise KeyError(f"relation {relation} is not an endpoint of {self}")

    @property
    def endpoints(self) -> frozenset[int]:
        return frozenset((self.left, self.right))

    def __str__(self) -> str:
        return (
            f"R{self.left}.c(D={self.left_distinct:.0f}) = "
            f"R{self.right}.c(D={self.right_distinct:.0f}) "
            f"[J={self.selectivity:.2e}]"
        )
