"""JSON (de)serialization of queries and benchmarks.

Synthetic benchmarks are cheap to regenerate from seeds, but sharing the
*exact* query set alongside results is what makes an experiment
portable.  The format is a plain JSON document with an explicit format
version; everything the optimizer sees (cardinalities, selections,
per-column distinct counts) round-trips exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.catalog.join_graph import JoinGraph, Query
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation, Selection

FORMAT_VERSION = 1


def query_to_dict(query: Query) -> dict[str, Any]:
    """A JSON-ready representation of ``query``."""
    graph = query.graph
    return {
        "format_version": FORMAT_VERSION,
        "name": query.name,
        "seed": query.seed,
        "metadata": dict(query.metadata),
        "relations": [
            {
                "name": relation.name,
                "base_cardinality": relation.base_cardinality,
                "selections": [
                    {"selectivity": s.selectivity, "column": s.column}
                    for s in relation.selections
                ],
            }
            for relation in graph.relations
        ],
        "predicates": [
            {
                "left": predicate.left,
                "right": predicate.right,
                "left_distinct": predicate.left_distinct,
                "right_distinct": predicate.right_distinct,
            }
            for predicate in graph.predicates
        ],
    }


def query_from_dict(data: dict[str, Any]) -> Query:
    """Rebuild a :class:`Query` from :func:`query_to_dict`'s output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported query format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    relations = [
        Relation(
            entry["name"],
            entry["base_cardinality"],
            tuple(
                Selection(s["selectivity"], s.get("column", "attr"))
                for s in entry.get("selections", ())
            ),
        )
        for entry in data["relations"]
    ]
    predicates = [
        JoinPredicate(
            entry["left"],
            entry["right"],
            entry["left_distinct"],
            entry["right_distinct"],
        )
        for entry in data["predicates"]
    ]
    return Query(
        graph=JoinGraph(relations, predicates),
        name=data.get("name", "query"),
        seed=data.get("seed"),
        metadata=dict(data.get("metadata", {})),
    )


def save_query(query: Query, path: str | Path) -> None:
    """Write one query as JSON."""
    Path(path).write_text(
        json.dumps(query_to_dict(query), indent=2), encoding="utf-8"
    )


def load_query(path: str | Path) -> Query:
    """Read one query from JSON."""
    return query_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def save_benchmark(queries: list[Query], path: str | Path) -> None:
    """Write a whole benchmark (a list of queries) as JSON."""
    document = {
        "format_version": FORMAT_VERSION,
        "queries": [query_to_dict(query) for query in queries],
    }
    Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")


def load_benchmark(path: str | Path) -> list[Query]:
    """Read a benchmark written by :func:`save_benchmark`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported benchmark format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    return [query_from_dict(entry) for entry in document["queries"]]
