"""Catalog: relations, statistics, join predicates, and the join graph.

This is the schema/statistics substrate the optimizer works against.  A
:class:`~repro.catalog.join_graph.JoinGraph` plays the role of the query: it
holds the joining relations (with cardinalities, selections, and per-join
distinct-value statistics) and the join predicates linking them.
"""

from repro.catalog.relation import Relation, Selection
from repro.catalog.predicates import JoinPredicate
from repro.catalog.join_graph import JoinGraph, Query
from repro.catalog.builder import QueryBuilder
from repro.catalog.serialization import (
    load_benchmark,
    load_query,
    save_benchmark,
    save_query,
)

__all__ = [
    "Relation",
    "Selection",
    "JoinPredicate",
    "JoinGraph",
    "Query",
    "QueryBuilder",
    "load_benchmark",
    "load_query",
    "save_benchmark",
    "save_query",
]
