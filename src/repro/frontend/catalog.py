"""A statistics catalog for the text frontend.

The optimizer needs, per table, a cardinality, and per join column a
distinct-value count; per selection predicate, a selectivity.  A real
system keeps these in its catalog; here the user registers them (or they
come from :func:`StatsCatalog.from_tables`, which measures actual engine
tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column: distinct values and, optionally, a
    default selectivity for equality-with-constant predicates."""

    distinct: float
    equality_selectivity: float | None = None

    def __post_init__(self) -> None:
        check_positive("distinct", self.distinct)

    @property
    def selectivity(self) -> float:
        """Selectivity of ``column = constant`` (1/distinct by default)."""
        if self.equality_selectivity is not None:
            return self.equality_selectivity
        return 1.0 / self.distinct


@dataclass
class TableStats:
    """Statistics for one table."""

    name: str
    cardinality: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("cardinality", self.cardinality)
        for column, stats in self.columns.items():
            if stats.distinct > self.cardinality:
                raise ValueError(
                    f"column {self.name}.{column} claims {stats.distinct:g} "
                    f"distinct values but the table has only "
                    f"{self.cardinality} rows"
                )

    def column(self, name: str) -> ColumnStats:
        stats = self.columns.get(name)
        if stats is None:
            # Unknown column: assume a key-like column (worst case for
            # join blow-up estimation is optimistic; document clearly).
            return ColumnStats(distinct=float(self.cardinality))
        return stats


class StatsCatalog:
    """A registry of :class:`TableStats`, keyed case-insensitively.

    Besides programmatic registration, a catalog can be loaded from a
    JSON document (see :meth:`from_json`)::

        {
          "tables": {
            "orders": {
              "cardinality": 1000000,
              "columns": {"customer_id": {"distinct": 50000}}
            }
          }
        }
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableStats] = {}

    @classmethod
    def from_dict(cls, document: dict) -> "StatsCatalog":
        """Build a catalog from a JSON-shaped dictionary."""
        catalog = cls()
        tables = document.get("tables")
        if not isinstance(tables, dict):
            raise ValueError('catalog document needs a "tables" mapping')
        for name, entry in tables.items():
            columns = {
                column: ColumnStats(
                    distinct=stats["distinct"],
                    equality_selectivity=stats.get("equality_selectivity"),
                )
                for column, stats in entry.get("columns", {}).items()
            }
            catalog.add_table(name, entry["cardinality"], columns)
        return catalog

    @classmethod
    def from_json(cls, path) -> "StatsCatalog":
        """Load a catalog from a JSON file."""
        import json
        from pathlib import Path

        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def add_table(
        self,
        name: str,
        cardinality: int,
        columns: dict[str, ColumnStats] | None = None,
    ) -> TableStats:
        """Register a table; returns its stats object for further edits."""
        key = name.lower()
        if key in self._tables:
            raise ValueError(f"table {name!r} already registered")
        stats = TableStats(name=name, cardinality=cardinality, columns=dict(columns or {}))
        self._tables[key] = stats
        return stats

    def table(self, name: str) -> TableStats:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise KeyError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def __len__(self) -> int:
        return len(self._tables)
