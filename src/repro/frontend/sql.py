"""Parse a small SQL dialect into an optimizable query.

Supported grammar (case-insensitive keywords)::

    query      := SELECT select_list FROM table_list [WHERE predicates]
    select_list:= '*' | column (',' column)*
    table_list := table [alias] (',' table [alias])*
    predicates := predicate (AND predicate)*
    predicate  := column '=' column          -- equi-join
                | column '=' constant        -- selection
                | column cmp constant        -- selection (selectivity
                                                from catalog default)
    column     := identifier '.' identifier
    cmp        := '=' | '<' | '>' | '<=' | '>=' | '<>'

This covers exactly the query class the paper studies: selections,
projections, and equi-joins.  Join predicates between the same pair of
tables are folded (selectivities multiplied) into a single edge, since
the join graph keeps one predicate per pair; the folded edge keeps the
distinct counts of the most selective predicate.

The parser is deliberately small and strict: anything outside the
grammar raises :class:`ParseError` with the offending token.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph, Query
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation, Selection
from repro.frontend.catalog import StatsCatalog

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<number>\d+(?:\.\d+)?)"
    r"|(?P<string>'[^']*')"
    r"|(?P<op><=|>=|<>|=|<|>|\*|,|\.))"
)

_KEYWORDS = {"select", "from", "where", "and", "as"}

#: Default selectivities for inequality comparisons (System R's magic
#: numbers: 1/3 for open ranges).
_INEQUALITY_SELECTIVITY = 1.0 / 3.0
_NOT_EQUAL_SELECTIVITY = 0.9


class ParseError(ValueError):
    """The query text does not match the supported grammar."""


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize near: {remainder[:20]!r}")
        for kind in ("ident", "number", "string", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value, match.start(kind)))
                break
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self._index += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next()
        if token.kind != "ident" or token.text.lower() != keyword:
            raise ParseError(f"expected {keyword.upper()}, got {token.text!r}")

    def _expect_op(self, op: str) -> None:
        token = self._next()
        if token.kind != "op" or token.text != op:
            raise ParseError(f"expected {op!r}, got {token.text!r}")

    def _at_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "ident"
            and token.text.lower() == keyword
        )

    # -- grammar --------------------------------------------------------

    def parse(self) -> "_Ast":
        self._expect_keyword("select")
        projections = self._select_list()
        self._expect_keyword("from")
        tables = self._table_list()
        predicates: list[tuple] = []
        if self._peek() is not None:
            self._expect_keyword("where")
            predicates = self._predicates()
        if self._peek() is not None:
            raise ParseError(f"trailing input: {self._peek().text!r}")
        return _Ast(projections, tables, predicates)

    def _select_list(self) -> list[tuple[str, str]] | None:
        token = self._peek()
        if token is not None and token.kind == "op" and token.text == "*":
            self._next()
            return None
        projections = [self._column()]
        while self._try_op(","):
            projections.append(self._column())
        return projections

    def _try_op(self, op: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "op" and token.text == op:
            self._next()
            return True
        return False

    def _identifier(self) -> str:
        token = self._next()
        if token.kind != "ident" or token.text.lower() in _KEYWORDS:
            raise ParseError(f"expected identifier, got {token.text!r}")
        return token.text

    def _column(self) -> tuple[str, str]:
        table = self._identifier()
        self._expect_op(".")
        column = self._identifier()
        return table, column

    def _table_list(self) -> list[tuple[str, str]]:
        tables = [self._table()]
        while self._try_op(","):
            tables.append(self._table())
        return tables

    def _table(self) -> tuple[str, str]:
        name = self._identifier()
        alias = name
        if self._at_keyword("as"):
            self._next()
            alias = self._identifier()
        else:
            token = self._peek()
            if (
                token is not None
                and token.kind == "ident"
                and token.text.lower() not in _KEYWORDS
            ):
                alias = self._identifier()
        return name, alias

    def _predicates(self) -> list[tuple]:
        predicates = [self._predicate()]
        while self._at_keyword("and"):
            self._next()
            predicates.append(self._predicate())
        return predicates

    def _predicate(self) -> tuple:
        left = self._column()
        op_token = self._next()
        if op_token.kind != "op" or op_token.text in (",", ".", "*"):
            raise ParseError(f"expected comparison, got {op_token.text!r}")
        operator = op_token.text
        token = self._peek()
        if token is not None and token.kind == "ident":
            right = self._column()
            if operator != "=":
                raise ParseError(
                    f"only equi-joins are supported between columns, got {operator!r}"
                )
            return ("join", left, right)
        constant = self._next()
        if constant.kind not in ("number", "string"):
            raise ParseError(f"expected constant, got {constant.text!r}")
        return ("selection", left, operator)


@dataclass(frozen=True)
class _Ast:
    projections: list[tuple[str, str]] | None
    tables: list[tuple[str, str]]
    predicates: list[tuple]


def parse_query(
    text: str, catalog: StatsCatalog, name: str | None = None
) -> Query:
    """Parse SQL text into a :class:`~repro.catalog.join_graph.Query`.

    Statistics come from ``catalog``; unregistered tables raise
    ``KeyError``.  Constant predicates become selections on their
    relation (selectivity from the column's catalog entry; System-R
    defaults for inequalities); ``a.x = b.y`` becomes a join predicate
    with the columns' distinct counts.
    """
    ast = _Parser(_tokenize(text)).parse()

    alias_index: dict[str, int] = {}
    table_of_alias: dict[str, str] = {}
    selections: dict[int, list[Selection]] = {}
    for table_name, alias in ast.tables:
        key = alias.lower()
        if key in alias_index:
            raise ParseError(f"duplicate table alias {alias!r}")
        catalog.table(table_name)  # existence check, raises KeyError
        alias_index[key] = len(alias_index)
        table_of_alias[key] = table_name
        selections[alias_index[key]] = []

    def resolve(column: tuple[str, str]) -> tuple[int, str, str]:
        alias, column_name = column
        key = alias.lower()
        if key not in alias_index:
            raise ParseError(f"unknown table or alias {alias!r}")
        return alias_index[key], table_of_alias[key], column_name

    joins: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for predicate in ast.predicates:
        if predicate[0] == "selection":
            index, table_name, column_name = resolve(predicate[1])
            operator = predicate[2]
            stats = catalog.table(table_name).column(column_name)
            if operator == "=":
                selectivity = stats.selectivity
            elif operator == "<>":
                selectivity = _NOT_EQUAL_SELECTIVITY
            else:
                selectivity = _INEQUALITY_SELECTIVITY
            selections[index].append(
                Selection(min(1.0, selectivity), column=column_name)
            )
        else:
            left_index, left_table, left_column = resolve(predicate[1])
            right_index, right_table, right_column = resolve(predicate[2])
            if left_index == right_index:
                raise ParseError(
                    "self-join predicates within one table occurrence are "
                    "not supported (use two aliases)"
                )
            left_distinct = catalog.table(left_table).column(left_column).distinct
            right_distinct = catalog.table(right_table).column(right_column).distinct
            pair = (min(left_index, right_index), max(left_index, right_index))
            if pair[0] == left_index:
                joins.setdefault(pair, []).append((left_distinct, right_distinct))
            else:
                joins.setdefault(pair, []).append((right_distinct, left_distinct))

    relations = []
    for alias, index in sorted(alias_index.items(), key=lambda kv: kv[1]):
        table_stats = catalog.table(table_of_alias[alias])
        relations.append(
            Relation(
                alias,
                table_stats.cardinality,
                tuple(selections[index]),
            )
        )

    predicates = []
    for (a, b), sides in joins.items():
        # Fold parallel predicates: selectivities multiply; the folded
        # edge keeps the most selective predicate's distinct counts and
        # scales them so the combined selectivity is preserved.
        combined = 1.0
        best = max(sides, key=lambda s: max(s))
        for left_distinct, right_distinct in sides:
            combined *= 1.0 / max(left_distinct, right_distinct)
        scale = (1.0 / combined) / max(best)
        predicates.append(
            JoinPredicate(
                a,
                b,
                left_distinct=best[0] * scale,
                right_distinct=best[1] * scale,
            )
        )

    # The folded predicates carry *synthetic* distinct counts (scaled so the
    # combined selectivity of parallel predicates is preserved), which may
    # exceed the owning table's row count.  Input statistics were already
    # validated at catalog registration, so skip the graph-level check.
    graph = JoinGraph(relations, predicates, validate=False)
    return Query(
        graph=graph,
        name=name or "sql-query",
        metadata={"sql": text.strip(), "projections": ast.projections},
    )
