"""Text frontend: pose join queries in a small SQL-like syntax.

* :mod:`repro.frontend.catalog` — a registry of table statistics.
* :mod:`repro.frontend.sql` — parse ``SELECT ... FROM ... WHERE`` text
  with equi-join and constant predicates into a
  :class:`~repro.catalog.join_graph.Query` the optimizer accepts.
"""

from repro.frontend.catalog import ColumnStats, StatsCatalog, TableStats
from repro.frontend.sql import ParseError, parse_query

__all__ = [
    "ColumnStats",
    "TableStats",
    "StatsCatalog",
    "ParseError",
    "parse_query",
]
