"""Workload-level entry point for the cardinality-robustness harness.

Bridges :mod:`repro.workloads` and :mod:`repro.robustness.harness`:
generate a seeded workload from a benchmark specification, run the
regret harness over it, and hand back the :class:`RobustnessReport`.
This is what the ``repro robustness`` CLI command and the experiments
tests call; the per-query mechanics live in the robustness package.
"""

from __future__ import annotations

from repro.catalog.join_graph import Query
from repro.cost.base import CostModel
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.robustness.harness import (
    RobustnessConfig,
    RobustnessReport,
    run_robustness,
)
from repro.robustness.resilience import FailureLog
from repro.utils.rng import derive_seed
from repro.workloads.distributions import WorkloadSpec
from repro.workloads.generator import generate_query


def robustness_workload(
    spec: WorkloadSpec,
    n_queries: int,
    n_joins: int,
    seed: int = 0,
) -> list[Query]:
    """``n_queries`` seeded queries for one robustness run.

    Query ``i`` is generated from ``derive_seed(seed, "robustness-query",
    i)`` and named ``rq<i>``, so a workload is a pure function of
    ``(spec, n_queries, n_joins, seed)``.
    """
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    return [
        generate_query(
            spec,
            n_joins=n_joins,
            seed=derive_seed(seed, "robustness-query", index),
            name=f"rq{index}",
        )
        for index in range(n_queries)
    ]


def robustness_experiment(
    spec: WorkloadSpec,
    config: RobustnessConfig | None = None,
    n_queries: int = 20,
    n_joins: int = 10,
    model: CostModel | None = None,
    tracer: Tracer = NULL_TRACER,
    failure_log: FailureLog | None = None,
) -> RobustnessReport:
    """Generate a workload from ``spec`` and run the regret harness.

    The workload seed is the harness config's seed, so the whole
    experiment — queries included — derives from one integer.
    """
    if config is None:
        config = RobustnessConfig()
    queries = robustness_workload(
        spec, n_queries=n_queries, n_joins=n_joins, seed=config.seed
    )
    return run_robustness(
        queries,
        config=config,
        model=model,
        tracer=tracer,
        failure_log=failure_log,
    )
