"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports, so a
reader can put the regenerated tables next to the originals.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult


def render_matrix(
    title: str,
    row_labels: list[str],
    column_labels: list[str],
    values: list[list[float]],
    row_header: str = "",
) -> str:
    """Render a labelled numeric matrix as an aligned text table."""
    width = max(
        8,
        max((len(label) for label in column_labels), default=8) + 2,
    )
    label_width = max(
        len(row_header), max((len(label) for label in row_labels), default=4)
    ) + 2
    lines = [title, ""]
    header = row_header.ljust(label_width) + "".join(
        label.rjust(width) for label in column_labels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in zip(row_labels, values):
        lines.append(
            label.ljust(label_width)
            + "".join(f"{value:.2f}".rjust(width) for value in row)
        )
    return "\n".join(lines)


def render_experiment(title: str, result: ExperimentResult) -> str:
    """Render an ExperimentResult as time-factor rows × method columns."""
    factors = sorted(result.config.time_factors)
    methods = list(result.config.methods)
    values = [
        [result.at(method, factor) for method in methods] for factor in factors
    ]
    return render_matrix(
        title,
        row_labels=[f"{factor:g}N^2" for factor in factors],
        column_labels=methods,
        values=values,
        row_header="Time",
    )


def render_series(title: str, result: ExperimentResult) -> str:
    """Render each method's (factor, mean scaled cost) series, one per line."""
    lines = [title, ""]
    for method in result.config.methods:
        points = ", ".join(
            f"{factor:g}: {value:.2f}" for factor, value in result.series(method)
        )
        lines.append(f"{method:>5}  {points}")
    return "\n".join(lines)


def render_ascii_chart(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    height: int = 12,
    width: int = 64,
) -> str:
    """A rough ASCII line chart of several (x, y) series.

    Each series gets the first character of its name as its mark; where
    series overlap, the later one wins the cell.  Intended for the
    figure benches' textual output, mirroring the paper's figures.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        raise ValueError("nothing to chart")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        mark = name[0]
        for x, y in values:
            column = int((x - x_low) / x_span * (width - 1))
            row = int((y - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = mark
    lines = [title, ""]
    lines.append(f"{y_high:8.2f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{y_low:8.2f} +" + "-" * width)
    lines.append(
        " " * 10 + f"{x_low:<10g}" + " " * max(0, width - 20) + f"{x_high:>10g}"
    )
    legend = "  ".join(f"{name[0]}={name}" for name in series)
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
