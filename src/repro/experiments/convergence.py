"""Convergence curves: mean best-known cost as a function of work spent.

The tables and figures report solution quality at a handful of time
limits; the underlying trajectories contain the whole anytime profile.
This module aggregates per-run trajectories into a mean scaled-cost
curve over a uniform grid of work units — the data behind plots like the
paper's figures, at arbitrary resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.join_graph import Query
from repro.core.budget import DEFAULT_UNITS_PER_N2
from repro.core.optimizer import optimize
from repro.cost.base import CostModel
from repro.cost.memory import MainMemoryCostModel
from repro.experiments.scaling import OUTLIER_CAP, coerce_outlier
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class ConvergenceCurve:
    """Mean scaled cost sampled on a uniform time-factor grid."""

    method: str
    factors: tuple[float, ...]
    mean_scaled: tuple[float, ...]

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.factors, self.mean_scaled))

    def final(self) -> float:
        return self.mean_scaled[-1]


def convergence_curves(
    queries: list[Query],
    methods: tuple[str, ...],
    max_factor: float = 9.0,
    n_points: int = 24,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    model: CostModel | None = None,
    seed: int = 0,
) -> dict[str, ConvergenceCurve]:
    """One anytime curve per method over ``queries``.

    Each (query, method) pair is optimized once at ``max_factor``; the
    trajectory yields the best-known cost at every grid point.  Costs are
    scaled per query by the best final cost across methods and coerced at
    the outlier cap; a method with no solution yet at a grid point
    contributes the cap.
    """
    if n_points < 2:
        raise ValueError("n_points must be >= 2")
    if model is None:
        model = MainMemoryCostModel()
    factors = tuple(
        max_factor * (index + 1) / n_points for index in range(n_points)
    )
    runs = {
        (query.name, method): optimize(
            query,
            method=method,
            model=model,
            time_factor=max_factor,
            units_per_n2=units_per_n2,
            seed=derive_seed(seed, "convergence", query.name, method),
        )
        for query in queries
        for method in methods
    }
    curves: dict[str, ConvergenceCurve] = {}
    best_final = {
        query.name: min(runs[(query.name, method)].cost for method in methods)
        for query in queries
    }
    for method in methods:
        means = []
        for factor in factors:
            scaled_values = []
            for query in queries:
                n = max(1, query.n_joins)
                units = factor * n * n * units_per_n2
                cost = runs[(query.name, method)].best_cost_within(units)
                if cost is None:
                    scaled_values.append(OUTLIER_CAP)
                else:
                    scaled_values.append(
                        coerce_outlier(cost / best_final[query.name])
                    )
            means.append(sum(scaled_values) / len(scaled_values))
        curves[method] = ConvergenceCurve(
            method=method, factors=factors, mean_scaled=tuple(means)
        )
    return curves
