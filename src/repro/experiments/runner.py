"""Run methods × queries × time limits and aggregate scaled costs.

Each (query, method, replicate) triple is optimized **once**, at the
largest time limit; the improvement trajectory then yields the best-known
cost at every smaller limit for free — the paper's sweep structure.  Costs
are scaled per query by the best cost any compared method achieved at the
largest limit, outliers are coerced to 10, and the scaled costs are
averaged over replicates and queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.catalog.join_graph import Query
from repro.core.budget import DEFAULT_UNITS_PER_N2
from repro.core.optimizer import optimize
from repro.cost.base import CostModel
from repro.cost.memory import MainMemoryCostModel
from repro.experiments.scaling import OUTLIER_CAP, coerce_outlier
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one experimental comparison."""

    methods: tuple[str, ...]
    time_factors: tuple[float, ...] = (1.5, 3.0, 6.0, 9.0)
    model: CostModel = field(default_factory=MainMemoryCostModel)
    units_per_n2: float = DEFAULT_UNITS_PER_N2
    replicates: int = 2
    seed: int = 0
    reference_methods: tuple[str, ...] = ()
    """Methods run only to establish the per-query scaling base (they do
    not appear in the output).  Tables 1 and 2 use this so that pure
    heuristics are scaled against a near-optimal baseline, matching the
    paper's scaled-cost magnitudes."""
    outlier_cap: float = OUTLIER_CAP
    """Scaled costs at or above this value are coerced to it (§6.1's
    trimming rule; 10 in the paper).  Set to ``math.inf`` to ablate the
    rule and see raw means."""
    exact_gap: bool = False
    """Also anchor every feasible query to its exact optimum
    (:func:`repro.core.exact.exact_optimum`) and report mean optimality
    gaps — *true cost / exact optimum* — next to the scaled costs."""
    exact_max_relations: int = 12
    """Feasibility ceiling for the per-query exact pass; queries with
    more relations are skipped by the gap aggregation (scaled costs are
    unaffected)."""

    def __post_init__(self) -> None:
        if not self.methods:
            raise ValueError("at least one method is required")
        if not self.time_factors:
            raise ValueError("at least one time factor is required")
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")

    @property
    def max_factor(self) -> float:
        return max(self.time_factors)

    @property
    def all_methods(self) -> tuple[str, ...]:
        extra = tuple(m for m in self.reference_methods if m not in self.methods)
        return self.methods + extra


@dataclass
class ExperimentResult:
    """Mean scaled costs: ``result.mean_scaled[method][factor]``.

    ``per_query_scaled`` keeps the underlying per-query values (averaged
    over replicates, queries in benchmark order) so methods can be
    compared *paired*, per the SG88 statistical methodology.
    """

    config: ExperimentConfig
    n_queries: int
    mean_scaled: dict[str, dict[float, float]]
    outlier_counts: dict[str, dict[float, int]]
    per_query_scaled: dict[str, dict[float, list[float]]]
    mean_gap: dict[str, float] = field(default_factory=dict)
    """Mean optimality gap per method over the gap-feasible queries
    (replicates averaged; empty unless ``config.exact_gap``)."""
    per_query_gap: dict[str, list[float]] = field(default_factory=dict)
    """Per-method gap series over the gap-feasible queries, in benchmark
    order — the paired-comparison counterpart of ``per_query_scaled``."""
    gap_feasible_queries: int = 0
    """How many queries were small enough for the exact pass."""

    def series(self, method: str) -> list[tuple[float, float]]:
        """The (time factor, mean scaled cost) series for one method."""
        by_factor = self.mean_scaled[method]
        return sorted(by_factor.items())

    def at(self, method: str, factor: float) -> float:
        return self.mean_scaled[method][factor]

    def ranking(self, factor: float) -> list[str]:
        """Methods ordered best-first at one time factor."""
        return sorted(
            self.mean_scaled, key=lambda method: self.mean_scaled[method][factor]
        )

    def confidence_interval(self, method: str, factor: float, confidence=0.95):
        """t-interval for the mean scaled cost of one method."""
        from repro.experiments.statistics import mean_confidence_interval

        return mean_confidence_interval(
            self.per_query_scaled[method][factor], confidence
        )

    def compare(self, method_a: str, method_b: str, factor: float, confidence=0.95):
        """Paired comparison of two methods at one time factor."""
        from repro.experiments.statistics import paired_comparison

        return paired_comparison(
            method_a,
            self.per_query_scaled[method_a][factor],
            method_b,
            self.per_query_scaled[method_b][factor],
            confidence,
        )


def _units_for(query: Query, factor: float, units_per_n2: float) -> float:
    n = max(1, query.n_joins)
    return factor * n * n * units_per_n2


def _all_runs(
    queries: list[Query],
    config: ExperimentConfig,
    workers: int | None,
    failure_log=None,
) -> list[dict[str, list]]:
    """One trajectory-carrying run per (query, method, replicate).

    Every trial is an independent ``optimize()`` call seeded by
    ``derive_seed(config.seed, query.name, method, replicate)``; with
    ``workers`` set, the trials are fanned across a process pool through
    :func:`repro.parallel.map_jobs` — same seeds, same budgets, so the
    aggregate is bit-identical to the serial sweep.  A crashed worker is
    logged to ``failure_log`` (when given) and its trial re-run serially.
    """
    methods = config.all_methods
    triples = [
        (query, method, replicate)
        for query in queries
        for method in methods
        for replicate in range(config.replicates)
    ]
    if workers is None or workers <= 1 or len(triples) <= 1:
        results = [
            optimize(
                query,
                method=method,
                model=config.model,
                time_factor=config.max_factor,
                units_per_n2=config.units_per_n2,
                seed=derive_seed(config.seed, query.name, method, replicate),
            )
            for query, method, replicate in triples
        ]
    else:
        from repro.parallel.orchestrator import OptimizeJob, map_jobs

        jobs = [
            OptimizeJob(
                graph=query.graph,
                method=method,
                model=config.model,
                seed=derive_seed(config.seed, query.name, method, replicate),
                index=index,
                tag=f"{query.name}/{method}/r{replicate}",
                time_factor=config.max_factor,
                units_per_n2=config.units_per_n2,
            )
            for index, (query, method, replicate) in enumerate(triples)
        ]
        outcomes = map_jobs(jobs, workers, failure_log=failure_log)
        results = []
        for (query, method, replicate), outcome in zip(triples, outcomes):
            if outcome.result is None:
                from repro.core.budget import BudgetExhausted

                raise BudgetExhausted(
                    f"{query.name}/{method}/r{replicate}: "
                    f"{outcome.error or 'no plan evaluated'}"
                )
            # Swap the parent's graph object back in (the worker's copy
            # came through pickle; JoinGraph has identity semantics) so
            # trial results compare equal to the serial sweep's.
            results.append(replace(outcome.result, graph=query.graph))
    per_trial = iter(results)
    all_runs: list[dict[str, list]] = []
    for query in queries:
        runs: dict[str, list] = {method: [] for method in methods}
        for method in methods:
            for _replicate in range(config.replicates):
                runs[method].append(next(per_trial))
        all_runs.append(runs)
    return all_runs


def run_experiment(
    queries: list[Query],
    config: ExperimentConfig,
    progress=None,
    workers: int | None = None,
    failure_log=None,
) -> ExperimentResult:
    """Execute the comparison and aggregate the scaled costs.

    ``progress`` is an optional callable ``(done, total)`` invoked after
    each optimized query, for long runs.  ``workers`` fans the
    (query, method, replicate) trials across a process pool; the
    aggregated result is bit-identical to the serial run (see
    :mod:`repro.parallel`).  ``failure_log`` collects worker-crash
    records when parallel execution has to fall back serially.
    """
    accumulator: dict[str, dict[float, list[float]]] = {
        method: {factor: [] for factor in config.time_factors}
        for method in config.methods
    }
    outliers: dict[str, dict[float, int]] = {
        method: {factor: 0 for factor in config.time_factors}
        for method in config.methods
    }
    gap_accumulator: dict[str, list[float]] = {
        method: [] for method in config.methods
    }
    gap_feasible = 0
    all_runs = _all_runs(queries, config, workers, failure_log=failure_log)
    for done, (query, runs) in enumerate(zip(queries, all_runs), start=1):
        if (
            config.exact_gap
            and query.graph.n_relations <= config.exact_max_relations
        ):
            # The exact pass runs once, in the parent process, so gap
            # aggregates inherit the sweep's workers-invariance.
            from repro.core.exact import exact_optimum, optimality_gap

            exact = exact_optimum(
                query.graph,
                config.model,
                max_relations=config.exact_max_relations,
                seed=config.seed,
            )
            gap_feasible += 1
            for method in config.methods:
                gaps = [
                    optimality_gap(result.cost, exact.cost)
                    for result in runs[method]
                ]
                gap_accumulator[method].append(sum(gaps) / len(gaps))
        # Per-query scaling base: best final cost over ALL methods/replicates.
        best = min(
            result.cost for results in runs.values() for result in results
        )
        for method in config.methods:
            for factor in config.time_factors:
                units = _units_for(query, factor, config.units_per_n2)
                scaled_replicates = []
                for result in runs[method]:
                    cost = result.best_cost_within(units)
                    scaled = math.inf if cost is None else cost / best
                    if scaled >= OUTLIER_CAP:
                        outliers[method][factor] += 1
                    scaled_replicates.append(
                        coerce_outlier(scaled, config.outlier_cap)
                    )
                accumulator[method][factor].append(
                    sum(scaled_replicates) / len(scaled_replicates)
                )
        if progress is not None:
            progress(done, len(queries))

    mean_scaled = {
        method: {
            factor: sum(values) / len(values)
            for factor, values in by_factor.items()
        }
        for method, by_factor in accumulator.items()
    }
    mean_gap = {
        method: sum(values) / len(values)
        for method, values in gap_accumulator.items()
        if values
    }
    return ExperimentResult(
        config=config,
        n_queries=len(queries),
        mean_scaled=mean_scaled,
        outlier_counts=outliers,
        per_query_scaled=accumulator,
        mean_gap=mean_gap,
        per_query_gap={
            method: values
            for method, values in gap_accumulator.items()
            if values
        },
        gap_feasible_queries=gap_feasible,
    )
