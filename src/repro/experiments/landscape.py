"""Solution-space landscape analysis (the paper's §7 future work).

The paper closes with: *"The distribution of solution costs in the space
of valid solutions is of interest and is being investigated"*, and its
§6.4 discussion conjectures that the space has *"a large number of local
minima, with a small but significant fraction of them being deep local
minima"*.  This module provides the instruments for that investigation:

* :func:`sample_cost_distribution` — the cost distribution over random
  valid join orders;
* :func:`local_minima_census` — an exhaustive census of local minima
  (and how deep they are) on small graphs, under the search move set;
* :func:`summarize` — descriptive statistics of a cost sample.

Terminology note: a cost *sample* here is a distribution over the
solution space, not a record of one search's path.  For the structured
event log of a single optimizer run (moves, phases, restarts), see the
``repro.obs`` *trace* layer and :doc:`docs/observability.md`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph
from repro.core.moves import MoveSet
from repro.cost.base import CostModel
from repro.plans.validity import random_valid_order, valid_orders
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class LandscapeSummary:
    """Descriptive statistics of a solution-cost sample."""

    n_samples: int
    minimum: float
    maximum: float
    mean: float
    median: float
    fraction_within_2x: float
    fraction_within_10x: float

    @property
    def spread(self) -> float:
        """max/min — how many orders of magnitude the space spans."""
        return self.maximum / self.minimum if self.minimum > 0 else math.inf


def sample_cost_distribution(
    graph: JoinGraph,
    model: CostModel,
    n_samples: int = 1000,
    seed: int = 0,
) -> list[float]:
    """Costs of ``n_samples`` random valid join orders (sorted)."""
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    rng = derive_rng(seed, "landscape", graph.n_relations)
    costs = [
        model.plan_cost(random_valid_order(graph, rng), graph)
        for _ in range(n_samples)
    ]
    costs.sort()
    return costs


def summarize(costs: list[float]) -> LandscapeSummary:
    """Descriptive statistics of a (sorted or unsorted) cost sample."""
    if not costs:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(costs)
    n = len(ordered)
    minimum = ordered[0]
    median = (
        ordered[n // 2]
        if n % 2
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2
    )
    return LandscapeSummary(
        n_samples=n,
        minimum=minimum,
        maximum=ordered[-1],
        mean=sum(ordered) / n,
        median=median,
        fraction_within_2x=sum(1 for c in ordered if c <= 2 * minimum) / n,
        fraction_within_10x=sum(1 for c in ordered if c <= 10 * minimum) / n,
    )


@dataclass(frozen=True)
class MinimaCensus:
    """Exhaustive census of local minima on a small graph."""

    n_valid_orders: int
    n_local_minima: int
    global_minimum: float
    minima_costs: tuple[float, ...]

    @property
    def fraction_minima(self) -> float:
        return self.n_local_minima / self.n_valid_orders

    def deep_minima(self, factor: float = 2.0) -> int:
        """Local minima within ``factor`` of the global minimum."""
        return sum(1 for c in self.minima_costs if c <= factor * self.global_minimum)


def local_minima_census(
    graph: JoinGraph,
    model: CostModel,
    move_set: MoveSet | None = None,
) -> MinimaCensus:
    """Enumerate every valid order and classify local minima.

    A state is a local minimum when no neighbor under the move set has
    strictly lower cost.  Exponential in the number of relations — meant
    for graphs of at most ~8 relations.
    """
    if move_set is None:
        move_set = MoveSet()
    orders = list(valid_orders(graph))
    if not orders:
        raise ValueError("graph has no valid orders")
    costs = {order: model.plan_cost(order, graph) for order in orders}
    minima_costs = []
    for order, cost in costs.items():
        if all(
            costs.get(neighbor, math.inf) >= cost
            for neighbor in move_set.neighbors(order, graph)
        ):
            minima_costs.append(cost)
    minima_costs.sort()
    return MinimaCensus(
        n_valid_orders=len(orders),
        n_local_minima=len(minima_costs),
        global_minimum=min(costs.values()),
        minima_costs=tuple(minima_costs),
    )
