"""Reproduction of the paper's Tables 1, 2, and 3.

Each function generates its benchmark, runs the comparison, and returns an
:class:`ExperimentResult` (Tables 1 and 2) or a per-benchmark matrix
(Table 3).  The ``n_values`` / ``queries_per_n`` parameters default to a
scaled-down benchmark that preserves the tables' shape; pass the paper's
values (``(10, 20, 30, 40, 50)`` / 50) to run at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import DEFAULT_UNITS_PER_N2
from repro.cost.base import CostModel
from repro.cost.memory import MainMemoryCostModel
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.workloads.benchmarks import DEFAULT_SPEC, benchmark_spec, generate_benchmark

#: Time limits shown in Tables 1 and 2 (multiples of N^2).
TABLE_TIME_FACTORS = (1.5, 3.0, 6.0, 9.0)

#: The five methods of Table 3, in the paper's column order.
TABLE3_METHODS = ("IAI", "IAL", "AGI", "KBI", "II")


def _default_queries(n_values, queries_per_n, seed):
    return generate_benchmark(
        DEFAULT_SPEC, n_values=n_values, queries_per_n=queries_per_n, seed=seed
    )


def table1(
    n_values: tuple[int, ...] = (10, 15, 20),
    queries_per_n: int = 6,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    replicates: int = 2,
    seed: int = 0,
    model: CostModel | None = None,
) -> ExperimentResult:
    """Table 1: the five augmentation ``chooseNext`` criteria.

    Pure augmentation (``AUG1``–``AUG5``) at the four table time limits,
    scaled against an IAI reference so magnitudes are comparable to the
    paper's (whose base is the best solution known at ``9 N^2``).
    """
    config = ExperimentConfig(
        methods=("AUG1", "AUG2", "AUG3", "AUG4", "AUG5"),
        time_factors=TABLE_TIME_FACTORS,
        model=model or MainMemoryCostModel(),
        units_per_n2=units_per_n2,
        replicates=replicates,
        seed=seed,
        reference_methods=("IAI",),
    )
    return run_experiment(_default_queries(n_values, queries_per_n, seed), config)


def table2(
    n_values: tuple[int, ...] = (10, 15, 20),
    queries_per_n: int = 6,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    replicates: int = 2,
    seed: int = 0,
    model: CostModel | None = None,
) -> ExperimentResult:
    """Table 2: KBZ spanning-tree weight criteria 3, 4, and 5."""
    config = ExperimentConfig(
        methods=("KBZ3", "KBZ4", "KBZ5"),
        time_factors=TABLE_TIME_FACTORS,
        model=model or MainMemoryCostModel(),
        units_per_n2=units_per_n2,
        replicates=replicates,
        seed=seed,
        reference_methods=("IAI",),
    )
    return run_experiment(_default_queries(n_values, queries_per_n, seed), config)


@dataclass
class Table3Result:
    """Mean scaled cost at ``9 N^2`` per (benchmark, method)."""

    methods: tuple[str, ...]
    rows: dict[int, dict[str, float]]

    def winner(self, benchmark: int) -> str:
        row = self.rows[benchmark]
        return min(row, key=row.get)


def table3(
    benchmarks: tuple[int, ...] = tuple(range(1, 10)),
    n_values: tuple[int, ...] = (10, 15, 20),
    queries_per_n: int = 4,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    replicates: int = 2,
    seed: int = 0,
    model: CostModel | None = None,
    time_factor: float = 9.0,
) -> Table3Result:
    """Table 3: the top five methods across the nine benchmark variations.

    One run per benchmark at the ``9 N^2`` limit (the paper's setting).
    """
    rows: dict[int, dict[str, float]] = {}
    for number in benchmarks:
        spec = benchmark_spec(number)
        queries = generate_benchmark(
            spec, n_values=n_values, queries_per_n=queries_per_n, seed=seed
        )
        config = ExperimentConfig(
            methods=TABLE3_METHODS,
            time_factors=(time_factor,),
            model=model or MainMemoryCostModel(),
            units_per_n2=units_per_n2,
            replicates=replicates,
            seed=seed,
        )
        result = run_experiment(queries, config)
        rows[number] = {
            method: result.at(method, time_factor) for method in TABLE3_METHODS
        }
    return Table3Result(methods=TABLE3_METHODS, rows=rows)
