"""The paper's published numbers, as structured data.

Having the originals in code lets the harness print measured results
next to them and compute a quantitative agreement score: Spearman rank
correlation between the paper's method ordering and the reproduction's,
per artifact.  (Absolute values are not comparable across a 1988 testbed
and this simulator; orderings are.)
"""

from __future__ import annotations

#: Table 1 — augmentation chooseNext criteria, mean scaled costs.
TABLE1: dict[float, dict[str, float]] = {
    1.5: {"AUG1": 6.38, "AUG2": 4.74, "AUG3": 3.09, "AUG4": 5.47, "AUG5": 5.84},
    3.0: {"AUG1": 6.31, "AUG2": 4.51, "AUG3": 2.88, "AUG4": 5.35, "AUG5": 5.69},
    6.0: {"AUG1": 6.14, "AUG2": 4.18, "AUG3": 2.66, "AUG4": 5.25, "AUG5": 5.54},
    9.0: {"AUG1": 6.07, "AUG2": 4.07, "AUG3": 2.64, "AUG4": 5.21, "AUG5": 5.54},
}

#: Table 2 — KBZ spanning-tree weight criteria, mean scaled costs.
TABLE2: dict[float, dict[str, float]] = {
    1.5: {"KBZ3": 5.84, "KBZ4": 6.67, "KBZ5": 6.83},
    3.0: {"KBZ3": 5.81, "KBZ4": 6.59, "KBZ5": 6.71},
    6.0: {"KBZ3": 5.77, "KBZ4": 6.55, "KBZ5": 6.68},
    9.0: {"KBZ3": 5.77, "KBZ4": 6.54, "KBZ5": 6.67},
}

#: Table 3 — nine benchmark variations x top five methods at 9N^2.
TABLE3: dict[int, dict[str, float]] = {
    1: {"IAI": 1.18, "IAL": 1.38, "AGI": 1.35, "KBI": 1.43, "II": 1.43},
    2: {"IAI": 1.35, "IAL": 1.62, "AGI": 1.77, "KBI": 1.68, "II": 2.11},
    3: {"IAI": 1.30, "IAL": 1.55, "AGI": 1.76, "KBI": 1.96, "II": 2.06},
    4: {"IAI": 1.06, "IAL": 1.16, "AGI": 1.13, "KBI": 1.20, "II": 1.24},
    5: {"IAI": 1.51, "IAL": 2.07, "AGI": 1.89, "KBI": 1.87, "II": 2.18},
    6: {"IAI": 1.58, "IAL": 2.02, "AGI": 2.50, "KBI": 2.65, "II": 2.83},
    7: {"IAI": 1.02, "IAL": 1.10, "AGI": 1.06, "KBI": 1.06, "II": 1.04},
    8: {"IAI": 1.23, "IAL": 1.44, "AGI": 1.48, "KBI": 1.59, "II": 1.56},
    9: {"IAI": 1.33, "IAL": 1.56, "AGI": 1.42, "KBI": 1.58, "II": 1.59},
}


def _ranks(values: list[float]) -> list[float]:
    """Fractional ranks (ties averaged)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    index = 0
    while index < len(order):
        tied_end = index
        while (
            tied_end + 1 < len(order)
            and values[order[tied_end + 1]] == values[order[index]]
        ):
            tied_end += 1
        average = (index + tied_end) / 2.0 + 1.0
        for position in range(index, tied_end + 1):
            ranks[order[position]] = average
        index = tied_end + 1
    return ranks


def spearman_rank_correlation(a: list[float], b: list[float]) -> float:
    """Spearman's rho between two paired samples (ties averaged)."""
    if len(a) != len(b):
        raise ValueError("samples must be paired")
    if len(a) < 2:
        raise ValueError("need at least two pairs")
    ranks_a = _ranks(a)
    ranks_b = _ranks(b)
    n = len(a)
    mean = (n + 1) / 2.0
    covariance = sum(
        (ra - mean) * (rb - mean) for ra, rb in zip(ranks_a, ranks_b)
    )
    variance_a = sum((ra - mean) ** 2 for ra in ranks_a)
    variance_b = sum((rb - mean) ** 2 for rb in ranks_b)
    if variance_a == 0 or variance_b == 0:
        return 0.0
    return covariance / (variance_a * variance_b) ** 0.5


def ordering_agreement(
    paper_row: dict[str, float], measured_row: dict[str, float]
) -> float:
    """Spearman rho between a paper row and a measured row.

    Only methods present in both rows are compared; 1.0 means identical
    ordering, 0 means unrelated, negative means reversed.
    """
    methods = sorted(set(paper_row) & set(measured_row))
    if len(methods) < 2:
        raise ValueError("need at least two shared methods to compare")
    return spearman_rank_correlation(
        [paper_row[m] for m in methods],
        [measured_row[m] for m in methods],
    )
