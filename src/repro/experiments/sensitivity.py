"""Sensitivity of plan quality to cardinality-estimation errors.

The optimizer only ever sees *estimated* statistics.  This analysis
perturbs a query's catalog statistics by random factors up to a given
magnitude, optimizes under the perturbed statistics, and prices the
resulting join order under the *true* statistics — measuring how much
plan quality degrades as estimates get worse.  (A question the paper
does not study, but one any adopter of its methods faces.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph, Query
from repro.core.budget import DEFAULT_UNITS_PER_N2
from repro.core.optimizer import optimize
from repro.cost.base import CostModel
from repro.cost.memory import MainMemoryCostModel
from repro.robustness.estimates import LOG_UNIFORM, ErrorModel
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive


def perturb_graph(
    graph: JoinGraph, rng: random.Random, max_error_factor: float
) -> JoinGraph:
    """A copy of ``graph`` with statistics perturbed up to the factor.

    Thin shim over :class:`repro.robustness.estimates.ErrorModel` with
    the ``loguniform`` distribution, which is exactly this function's
    historical semantics: every base cardinality and distinct-value
    count multiplied by an independent factor log-uniform in
    ``[1/f, f]``, distinct counts capped by their relation's perturbed
    cardinality.  Kept as the public entry point because its signature
    (an explicit ``random.Random``) predates the seeded model.
    """
    check_positive("max_error_factor", max_error_factor)
    if max_error_factor < 1.0:
        raise ValueError("max_error_factor must be >= 1")
    model = ErrorModel(
        q=max_error_factor, seed=0, distribution=LOG_UNIFORM
    )
    return model.perturb_with_rng(graph, rng)


@dataclass(frozen=True)
class SensitivityPoint:
    """Plan-quality degradation at one error magnitude."""

    error_factor: float
    mean_degradation: float
    worst_degradation: float
    n_trials: int


def sensitivity_analysis(
    query: Query,
    error_factors: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0),
    n_trials: int = 5,
    method: str = "IAI",
    model: CostModel | None = None,
    time_factor: float = 3.0,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    seed: int = 0,
) -> list[SensitivityPoint]:
    """Degradation curve: true cost of plans chosen under wrong statistics.

    For each error factor, ``n_trials`` perturbed catalogs are drawn; the
    plan optimized under each is re-priced under the true statistics and
    divided by the cost of the plan optimized under the true statistics.
    A ratio of 1.0 means estimation error did not change plan quality.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    if model is None:
        model = MainMemoryCostModel()
    graph = query.graph
    reference = optimize(
        query,
        method=method,
        model=model,
        time_factor=time_factor,
        units_per_n2=units_per_n2,
        seed=seed,
    )
    reference_cost = model.plan_cost(reference.order, graph)

    points = []
    for error_factor in error_factors:
        degradations = []
        for trial in range(n_trials):
            rng = derive_rng(seed, "sensitivity", error_factor, trial)
            perturbed = perturb_graph(graph, rng, error_factor)
            chosen = optimize(
                perturbed,
                method=method,
                model=model,
                time_factor=time_factor,
                units_per_n2=units_per_n2,
                seed=seed + trial,
            )
            true_cost = model.plan_cost(chosen.order, graph)
            degradations.append(true_cost / reference_cost)
        points.append(
            SensitivityPoint(
                error_factor=error_factor,
                mean_degradation=sum(degradations) / len(degradations),
                worst_degradation=max(degradations),
                n_trials=n_trials,
            )
        )
    return points
