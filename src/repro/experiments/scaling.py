"""The scaled-cost methodology of the paper's §6.1.

For each query, the cost obtained by a method at a time limit is *scaled*
by dividing by the best solution cost obtained (by any compared method)
at the largest time limit (``9 N^2`` in the paper).  A scaled cost of at
least :data:`OUTLIER_CAP` (10) is an *outlying value* — the method failed
on that query — and is coerced to exactly 10 so that a single catastrophe
cannot dominate the mean: "once a solution is considered poor, we are not
much interested ... in how poor it is."
"""

from __future__ import annotations

import math

#: Scaled costs at or above this value are outliers, coerced to the cap.
OUTLIER_CAP = 10.0


def coerce_outlier(scaled: float, cap: float = OUTLIER_CAP) -> float:
    """Coerce an outlying scaled cost to the cap (paper's trimming rule)."""
    if math.isnan(scaled):
        raise ValueError("scaled cost is NaN")
    return min(scaled, cap)


def scale_costs(
    costs: dict[str, float], best: float, cap: float = OUTLIER_CAP
) -> dict[str, float]:
    """Scale a method→cost map by ``best`` and coerce outliers.

    A method with no solution (cost ``inf``) scales to the cap.
    """
    if not best > 0:
        raise ValueError(f"scaling base must be positive, got {best}")
    return {
        method: coerce_outlier(cost / best, cap)
        for method, cost in costs.items()
    }


def mean(values: list[float]) -> float:
    """Arithmetic mean (the paper's aggregate after trimming)."""
    if not values:
        raise ValueError("mean of empty list")
    return sum(values) / len(values)
