"""Reproduction of the paper's Figures 4, 5, 6, and 7.

Each figure function returns an
:class:`~repro.experiments.runner.ExperimentResult` whose per-method series
(mean scaled cost vs time factor) are the figure's curves.  Defaults are
scaled down from the paper's 250/500-query benchmarks; pass the paper's
parameters for a full-scale run.
"""

from __future__ import annotations

from repro.core.budget import DEFAULT_UNITS_PER_N2
from repro.core.combinations import PAPER_METHODS, TOP_FIVE_METHODS
from repro.cost.base import CostModel
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark

#: Time-limit grid of the full-range figures (multiples of N^2).
FIGURE_TIME_FACTORS = (0.3, 0.75, 1.5, 3.0, 6.0, 9.0)

#: Finer small-limit grid of Figure 6; 9.0 anchors the scaling base.
SMALL_TIME_FACTORS = (0.3, 0.6, 0.9, 1.2, 1.5, 1.8, 2.4, 9.0)


def _run(
    methods: tuple[str, ...],
    time_factors: tuple[float, ...],
    model: CostModel,
    n_values: tuple[int, ...],
    queries_per_n: int,
    units_per_n2: float,
    replicates: int,
    seed: int,
) -> ExperimentResult:
    queries = generate_benchmark(
        DEFAULT_SPEC, n_values=n_values, queries_per_n=queries_per_n, seed=seed
    )
    config = ExperimentConfig(
        methods=methods,
        time_factors=time_factors,
        model=model,
        units_per_n2=units_per_n2,
        replicates=replicates,
        seed=seed,
    )
    return run_experiment(queries, config)


def figure4(
    n_values: tuple[int, ...] = (10, 15, 20),
    queries_per_n: int = 4,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    replicates: int = 2,
    seed: int = 0,
    model: CostModel | None = None,
) -> ExperimentResult:
    """Figure 4: all nine methods on the default benchmark.

    Paper scale: ``n_values=(10, 20, 30, 40, 50)``, ``queries_per_n=50``.
    """
    return _run(
        PAPER_METHODS,
        FIGURE_TIME_FACTORS,
        model or MainMemoryCostModel(),
        n_values,
        queries_per_n,
        units_per_n2,
        replicates,
        seed,
    )


def figure5(
    n_values: tuple[int, ...] = (10, 25, 40),
    queries_per_n: int = 4,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    replicates: int = 2,
    seed: int = 0,
    model: CostModel | None = None,
) -> ExperimentResult:
    """Figure 5: the top five methods on the larger benchmark.

    Paper scale: ``n_values=(10, 20, ..., 100)``, ``queries_per_n=50``.
    """
    return _run(
        TOP_FIVE_METHODS,
        FIGURE_TIME_FACTORS,
        model or MainMemoryCostModel(),
        n_values,
        queries_per_n,
        units_per_n2,
        replicates,
        seed,
    )


def figure6(
    n_values: tuple[int, ...] = (10, 15, 20),
    queries_per_n: int = 6,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    replicates: int = 2,
    seed: int = 0,
    model: CostModel | None = None,
) -> ExperimentResult:
    """Figure 6: IAI vs AGI vs II at small time limits.

    The interesting artifact is the crossover: AGI is the method of choice
    at the smallest limits; IAI overtakes it as time grows (around
    ``1.8 N^2`` in the paper).
    """
    return _run(
        ("IAI", "AGI", "II"),
        SMALL_TIME_FACTORS,
        model or MainMemoryCostModel(),
        n_values,
        queries_per_n,
        units_per_n2,
        replicates,
        seed,
    )


def figure7(
    n_values: tuple[int, ...] = (10, 15, 20),
    queries_per_n: int = 4,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    replicates: int = 2,
    seed: int = 0,
    model: CostModel | None = None,
) -> ExperimentResult:
    """Figure 7: the top five methods under the disk cost model.

    The paper's point is that the method ordering is unchanged when the
    main-memory model is swapped for the disk-based one.
    """
    return _run(
        TOP_FIVE_METHODS,
        FIGURE_TIME_FACTORS,
        model or DiskCostModel(),
        n_values,
        queries_per_n,
        units_per_n2,
        replicates,
        seed,
    )
