"""Statistical comparison of optimization methods (SG88 methodology).

The paper defers its statistical techniques to [SG88]; the essence is
that methods are compared *paired per query* (every method sees the same
queries), so differences should be judged on the per-query paired
deltas, not on the two means alone.  This module provides:

* :func:`mean_confidence_interval` — a t-distribution confidence
  interval for a sample mean;
* :func:`paired_comparison` — the paired mean difference between two
  methods with its confidence interval and a significance verdict.

Implemented with scipy when available, falling back to a small built-in
t-quantile table otherwise (the library proper has no hard dependencies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _t_quantile(degrees: int, confidence: float) -> float:
    """Two-sided t quantile; scipy when present, else a 95% table."""
    try:
        from scipy import stats

        return float(stats.t.ppf(0.5 + confidence / 2.0, degrees))
    except ImportError:  # pragma: no cover - scipy is present in CI
        if abs(confidence - 0.95) > 1e-9:
            raise ValueError(
                "without scipy only 95% confidence is supported"
            ) from None
        table = {
            1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
            6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
            15: 2.131, 20: 2.086, 30: 2.042, 60: 2.000, 120: 1.980,
        }
        for cutoff, value in sorted(table.items()):
            if degrees <= cutoff:
                return value
        return 1.960


@dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with its two-sided confidence interval."""

    mean: float
    low: float
    high: float
    confidence: float
    n: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0


def mean_confidence_interval(
    values: list[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """t-interval for the mean of ``values`` (n >= 2 required)."""
    n = len(values)
    if n < 2:
        raise ValueError("confidence interval needs at least two values")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = _t_quantile(n - 1, confidence) * math.sqrt(variance / n)
    return ConfidenceInterval(
        mean=mean, low=mean - half, high=mean + half, confidence=confidence, n=n
    )


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired comparison between two methods.

    ``delta`` is mean(a - b): negative means method ``a`` is cheaper.
    The difference is *significant* when the interval excludes zero.
    """

    method_a: str
    method_b: str
    delta: ConfidenceInterval

    @property
    def significant(self) -> bool:
        return not self.delta.contains(0.0)

    @property
    def better(self) -> str | None:
        """The significantly better method, or None when tied."""
        if not self.significant:
            return None
        return self.method_a if self.delta.mean < 0 else self.method_b

    def __str__(self) -> str:
        verdict = self.better or "no significant difference"
        return (
            f"{self.method_a} - {self.method_b}: "
            f"{self.delta.mean:+.3f} "
            f"[{self.delta.low:+.3f}, {self.delta.high:+.3f}] -> {verdict}"
        )


def paired_comparison(
    method_a: str,
    values_a: list[float],
    method_b: str,
    values_b: list[float],
    confidence: float = 0.95,
) -> PairedComparison:
    """Paired mean-difference comparison over per-query values."""
    if len(values_a) != len(values_b):
        raise ValueError(
            f"paired samples differ in length: {len(values_a)} vs {len(values_b)}"
        )
    deltas = [a - b for a, b in zip(values_a, values_b)]
    if all(abs(d) < 1e-15 for d in deltas):
        # Degenerate but legitimate: identical per-query results.
        interval = ConfidenceInterval(0.0, 0.0, 0.0, confidence, len(deltas))
        return PairedComparison(method_a, method_b, interval)
    return PairedComparison(
        method_a, method_b, mean_confidence_interval(deltas, confidence)
    )
