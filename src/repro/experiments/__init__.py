"""Experiment harness reproducing the paper's evaluation (§6).

* :mod:`repro.experiments.scaling` — the scaled-cost methodology (§6.1):
  scale by the best cost at the largest time limit, coerce outliers to 10.
* :mod:`repro.experiments.runner` — run methods × queries × time limits.
* :mod:`repro.experiments.tables` — Tables 1, 2, and 3.
* :mod:`repro.experiments.figures` — Figures 4, 5, 6, and 7.
* :mod:`repro.experiments.report` — plain-text rendering of results.
* :mod:`repro.experiments.robustness` — seeded workloads for the
  cardinality-robustness (regret) harness.
"""

from repro.experiments.scaling import OUTLIER_CAP, coerce_outlier, scale_costs
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.experiments.tables import table1, table2, table3
from repro.experiments.figures import figure4, figure5, figure6, figure7
from repro.experiments.convergence import ConvergenceCurve, convergence_curves
from repro.experiments.landscape import (
    local_minima_census,
    sample_cost_distribution,
    summarize,
)
from repro.experiments.sensitivity import (
    SensitivityPoint,
    perturb_graph,
    sensitivity_analysis,
)
from repro.experiments.robustness import (
    robustness_experiment,
    robustness_workload,
)
from repro.experiments.statistics import (
    mean_confidence_interval,
    paired_comparison,
)
from repro.experiments.report import render_matrix, render_series

__all__ = [
    "OUTLIER_CAP",
    "coerce_outlier",
    "scale_costs",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "table1",
    "table2",
    "table3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "local_minima_census",
    "sample_cost_distribution",
    "summarize",
    "ConvergenceCurve",
    "convergence_curves",
    "SensitivityPoint",
    "perturb_graph",
    "sensitivity_analysis",
    "mean_confidence_interval",
    "paired_comparison",
    "robustness_experiment",
    "robustness_workload",
    "render_matrix",
    "render_series",
]
