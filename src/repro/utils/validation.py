"""Small argument-checking helpers used across the library.

All of them raise ``ValueError`` with a message naming the offending
parameter, so call sites stay one-liners.
"""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1`` and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 < value <= 1`` and return it."""
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
    return value
