"""Shared utilities: deterministic RNG derivation and argument validation."""

from repro.utils.rng import derive_rng, derive_seed
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "derive_rng",
    "derive_seed",
    "check_fraction",
    "check_positive",
    "check_probability",
]
