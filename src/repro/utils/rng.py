"""Deterministic random-number-stream derivation.

Every stochastic component of the library receives an explicit
``random.Random`` instance.  Experiments derive independent, reproducible
streams from a root seed plus a path of string/int keys, so that any single
cell of any table (one query, one method, one replicate) can be regenerated
in isolation without replaying the whole experiment.

The derivation feeds a **type-tagged, length-framed** encoding of the key
path into SHA-256.  Each key contributes ``tag ":" len(payload) ":"
payload``, so no concatenation of two distinct key paths can produce the
same byte stream: ``("worker", 12)`` and ``("worker1", 2)`` frame as
``s:6:worker i:2:12`` versus ``s:7:worker1 i:1:2``.  Earlier revisions
hashed ``repr`` of the keys, which made the stream depend on repr
formatting (fragile across types whose reprs coincide, and outright
non-deterministic for objects whose default repr embeds a memory address —
fatal once seeds are derived inside pool worker processes).  Unsupported
key types now raise ``TypeError`` instead of silently hashing their repr.
"""

from __future__ import annotations

import hashlib
import random

_MASK_64 = (1 << 64) - 1

#: Version tag mixed into every derivation, so future encoding revisions
#: can never collide with the current one.
_ENCODING_VERSION = b"repro-rng-v2\x00"


def _frame(tag: str, payload: str) -> bytes:
    """One length-framed component: ``tag:len:payload`` in UTF-8."""
    data = payload.encode("utf-8")
    return tag.encode("ascii") + b":" + str(len(data)).encode("ascii") + b":" + data


def _encode_key(key: object) -> bytes:
    """A canonical, injective byte encoding of one key.

    Supported: ``str``, ``int``, ``bool``, ``float``, ``bytes``, ``None``,
    and (nested) tuples of these.  Each type gets its own tag, so ``12``,
    ``"12"``, ``12.0``, and ``True``/``1`` all derive distinct streams.
    """
    if isinstance(key, bool):  # before int: bool is an int subclass
        return _frame("b", "1" if key else "0")
    if isinstance(key, int):
        return _frame("i", str(key))
    if isinstance(key, str):
        return _frame("s", key)
    if isinstance(key, float):
        # hex() is an exact, locale-independent round-trip for floats.
        return _frame("f", key.hex())
    if isinstance(key, bytes):
        return _frame("y", key.hex())
    if key is None:
        return _frame("n", "")
    if isinstance(key, tuple):
        inner = b"".join(_encode_key(item) for item in key)
        return (
            b"t:" + str(len(key)).encode("ascii") + b":(" + inner + b")"
        )
    raise TypeError(
        f"cannot derive a stable stream from key {key!r} of type "
        f"{type(key).__name__}; use str/int/float/bytes/None or tuples "
        "of them"
    )


def derive_seed(root_seed: int, *keys: object) -> int:
    """Derive a stable 64-bit seed from a root seed and a key path.

    Stable across processes, platforms, and Python versions (unlike
    ``hash()``), and injective over the supported key types: distinct key
    paths — including paths whose naive string concatenations coincide —
    always hash distinct byte streams.
    """
    digest = hashlib.sha256()
    digest.update(_ENCODING_VERSION)
    digest.update(_frame("i", str(int(root_seed))))
    for key in keys:
        digest.update(_encode_key(key))
    return int.from_bytes(digest.digest()[:8], "big") & _MASK_64


def derive_rng(root_seed: int, *keys: object) -> random.Random:
    """Return a ``random.Random`` seeded deterministically from a key path."""
    return random.Random(derive_seed(root_seed, *keys))
