"""Deterministic random-number-stream derivation.

Every stochastic component of the library receives an explicit
``random.Random`` instance.  Experiments derive independent, reproducible
streams from a root seed plus a path of string/int keys, so that any single
cell of any table (one query, one method, one replicate) can be regenerated
in isolation without replaying the whole experiment.
"""

from __future__ import annotations

import hashlib
import random

_MASK_64 = (1 << 64) - 1


def derive_seed(root_seed: int, *keys: object) -> int:
    """Derive a stable 64-bit seed from a root seed and a key path.

    The derivation hashes the textual representation of the key path, so it
    is stable across processes and Python versions (unlike ``hash()``).
    """
    material = repr((int(root_seed), tuple(repr(k) for k in keys)))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_64


def derive_rng(root_seed: int, *keys: object) -> random.Random:
    """Return a ``random.Random`` seeded deterministically from a key path."""
    return random.Random(derive_seed(root_seed, *keys))
