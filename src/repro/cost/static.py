"""A wrapper disabling distinct-value propagation (the classic estimator).

The library's default estimator propagates distinct-value caps through
intermediate results (see :mod:`repro.cost.cardinality`), which makes a
plan's *suffix* cost depend on its prefix *order* — realistic, but it
breaks the Bellman principle that exact dynamic programming relies on
(two prefixes over the same relations can leave different caps behind).

:class:`StaticCostModel` wraps any cost model and prices plans under the
classic System-R estimator instead: every join's selectivity is the base
``J = 1/max(D_i, D_j)``, so intermediate sizes are determined by the
*set* of joined relations alone.  Estimated sizes are **not clamped** at
one tuple here — the clamp (kept in the propagating estimator) would
itself make sizes order-dependent and break subset-determinism.  In this
world subset DP is exact — which is why
:mod:`repro.core.dynamic_programming` uses it — and every other method
can be evaluated under the same wrapper for an apples-to-apples
optimality-gap measurement.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.cost.base import CostModel, CostOverflowError, PlanCostDetail
from repro.cost.cardinality import combined_selectivity
from repro.plans.join_order import JoinOrder


def _unclamped_result(
    outer_size: float,
    inner_size: float,
    predicates: Sequence[JoinPredicate],
) -> float:
    """Expected result size without the one-tuple floor.

    Clamping here would make sizes order-dependent and break the
    subset-determinism that exact DP relies on; overflow is instead
    rejected at the plan level, where ``plan_cost``/``plan_cost_detail``
    raise :class:`CostOverflowError` on any non-finite total.
    """
    # detlint: ignore[OVF001] -- deliberately unclamped for subset-determinism; plan_cost rejects non-finite totals
    return outer_size * inner_size * combined_selectivity(predicates)


class StaticCostModel(CostModel):
    """Prices plans with the wrapped model, sans distinct propagation."""

    def __init__(self, inner: CostModel) -> None:
        self.inner = inner
        self.name = f"static-{inner.name}"

    def join_cost(
        self, outer_size: float, inner_size: float, result_size: float
    ) -> float:
        return self.inner.join_cost(outer_size, inner_size, result_size)

    def plan_cost(self, order: JoinOrder, graph: JoinGraph) -> float:
        placed = [order[0]]
        outer_size = graph.cardinality(order[0])
        total = 0.0
        for position in range(1, len(order)):
            vertex = order[position]
            predicates = graph.edges_between(placed, vertex)
            inner_size = graph.cardinality(vertex)
            result = _unclamped_result(outer_size, inner_size, predicates)
            # detlint: ignore[PURE001] -- reaches the test-only fault injector
            total += self.inner.join_cost(outer_size, inner_size, result)
            placed.append(vertex)
            outer_size = result
        if not math.isfinite(total):
            raise CostOverflowError(
                f"{self.name} cost model produced non-finite plan cost "
                f"{total!r} for order {order}"
            )
        return total

    def plan_cost_detail(self, order: JoinOrder, graph: JoinGraph) -> PlanCostDetail:
        placed = [order[0]]
        outer_size = graph.cardinality(order[0])
        join_costs: list[float] = []
        prefix_sizes: list[float] = []
        for position in range(1, len(order)):
            vertex = order[position]
            predicates = graph.edges_between(placed, vertex)
            inner_size = graph.cardinality(vertex)
            result = _unclamped_result(outer_size, inner_size, predicates)
            cost = self.inner.join_cost(outer_size, inner_size, result)
            if not math.isfinite(cost):
                raise CostOverflowError(
                    f"{self.name} cost model produced non-finite join cost "
                    f"{cost!r} at position {position} of {order}"
                )
            join_costs.append(cost)
            prefix_sizes.append(result)
            placed.append(vertex)
            outer_size = result
        return PlanCostDetail(
            order=order,
            join_costs=tuple(join_costs),
            prefix_sizes=tuple(prefix_sizes),
        )

    def __repr__(self) -> str:
        return f"StaticCostModel({self.inner!r})"
