"""Main-memory hash-join cost model (the paper's [Swa89a] family).

The paper's memory-resident model prices the CPU work of a hash join:
building a hash table on the inner relation, probing it with the outer, and
constructing result tuples.  We use the canonical per-tuple form

    cost = build * |inner| + probe * |outer| + output * |result|

which is the structure [Swa89a] validates (its constants are
machine-specific; the defaults below preserve the relative magnitudes:
building is a little dearer than probing, and producing an output tuple —
copying both sides — dearer still).
"""

from __future__ import annotations

from repro.cost.base import CostModel
from repro.utils.validation import check_positive


class MainMemoryCostModel(CostModel):
    """CPU-operation cost of an in-memory hash join."""

    name = "memory"

    def __init__(
        self,
        build_cost: float = 1.2,
        probe_cost: float = 1.0,
        output_cost: float = 1.5,
    ) -> None:
        self.build_cost = check_positive("build_cost", build_cost)
        self.probe_cost = check_positive("probe_cost", probe_cost)
        self.output_cost = check_positive("output_cost", output_cost)

    def join_cost(
        self, outer_size: float, inner_size: float, result_size: float
    ) -> float:
        return (
            self.build_cost * inner_size
            + self.probe_cost * outer_size
            + self.output_cost * result_size
        )

    def __repr__(self) -> str:
        return (
            f"MainMemoryCostModel(build={self.build_cost}, "
            f"probe={self.probe_cost}, output={self.output_cost})"
        )
