"""Additional join methods (the paper's §7 future work).

The paper restricts itself to the hash join and notes: *"Our work can be
extended by incorporating join methods other than the hash join method."*
This module provides that extension:

* :class:`NestedLoopCostModel` — tuple-at-a-time nested loops; cost
  ``outer * inner`` work plus result construction.
* :class:`SortMergeCostModel` — sort both operands then merge; cost
  ``n log n`` on each side plus a merge pass.  (Its cost is *not* of the
  ``n1 * g(n2)`` form KBZ's rank theory requires — exactly the paper's
  caveat for the KBZ heuristic.)
* :class:`MultiMethodCostModel` — per join, charge the cheapest of a set
  of methods: the optimizer then effectively performs join-method
  selection alongside join ordering, since the plan cost already reflects
  the best per-join choice.  :meth:`MultiMethodCostModel.chosen_methods`
  reports which method won each join of a plan.

All three plug into every optimizer unchanged — the search algorithms
only see ``plan_cost``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.catalog.join_graph import JoinGraph
from repro.cost.base import CostModel
from repro.cost.cardinality import PlanEstimator
from repro.plans.join_order import JoinOrder
from repro.utils.validation import check_positive


class NestedLoopCostModel(CostModel):
    """Tuple-at-a-time nested-loops join (no index)."""

    name = "nested-loop"

    def __init__(self, compare_cost: float = 0.02, output_cost: float = 1.5) -> None:
        self.compare_cost = check_positive("compare_cost", compare_cost)
        self.output_cost = check_positive("output_cost", output_cost)

    def join_cost(
        self, outer_size: float, inner_size: float, result_size: float
    ) -> float:
        return (
            # detlint: ignore[OVF001] -- operands arrive clamped to MAX_CARDINALITY, and plan_cost rejects non-finite totals
            self.compare_cost * outer_size * inner_size
            + self.output_cost * result_size
        )


class SortMergeCostModel(CostModel):
    """Sort-merge join: sort both sides, then a single merge pass.

    The sort term ``n log2 n`` makes the cost depend on the *outer* size
    non-linearly — the form KBZ's rank derivation cannot accommodate
    (the paper's §4.2 caveat).
    """

    name = "sort-merge"

    def __init__(
        self,
        sort_cost: float = 1.0,
        merge_cost: float = 1.0,
        output_cost: float = 1.5,
    ) -> None:
        self.sort_cost = check_positive("sort_cost", sort_cost)
        self.merge_cost = check_positive("merge_cost", merge_cost)
        self.output_cost = check_positive("output_cost", output_cost)

    @staticmethod
    def _n_log_n(size: float) -> float:
        return size * math.log2(max(size, 2.0))

    def join_cost(
        self, outer_size: float, inner_size: float, result_size: float
    ) -> float:
        return (
            self.sort_cost * (self._n_log_n(outer_size) + self._n_log_n(inner_size))
            + self.merge_cost * (outer_size + inner_size)
            + self.output_cost * result_size
        )


class MultiMethodCostModel(CostModel):
    """Per-join choice of the cheapest method from a fixed set.

    With this model the optimizer's search over join orders implicitly
    performs join-method selection as well: each join is priced at the
    best available method, so an order is preferred exactly when its best
    per-join implementations are cheapest overall.
    """

    name = "multi-method"

    def __init__(self, methods: Sequence[CostModel] | None = None) -> None:
        if methods is None:
            from repro.cost.memory import MainMemoryCostModel

            methods = (
                MainMemoryCostModel(),
                NestedLoopCostModel(),
                SortMergeCostModel(),
            )
        if not methods:
            raise ValueError("at least one join method is required")
        self.methods = tuple(methods)

    def join_cost(
        self, outer_size: float, inner_size: float, result_size: float
    ) -> float:
        return min(
            method.join_cost(outer_size, inner_size, result_size)
            for method in self.methods
        )

    def chosen_methods(self, order: JoinOrder, graph: JoinGraph) -> list[str]:
        """The winning method name for each join of ``order``."""
        estimator = PlanEstimator(graph, order[0])
        chosen: list[str] = []
        for position in range(1, len(order)):
            step = estimator.step(order[position])
            winner = min(
                self.methods,
                key=lambda m: m.join_cost(
                    step.outer_size, step.inner_size, step.result_size
                ),
            )
            chosen.append(winner.name)
        return chosen
