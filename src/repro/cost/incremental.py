"""Incremental plan evaluation: prefix caching with bound pruning.

Every neighbor the combinatorial search visits differs from the current
order only from some position onward — a swap at positions ``(i, j)``
leaves the prefix before ``min(i, j)`` untouched, and so does an insert.
Re-deriving that unchanged prefix through
:meth:`~repro.cost.base.CostModel.plan_cost` is where the II/SA walks
spend most of their time.  This module removes the redundancy:

* :class:`QueryContext` precompiles one query's catalog — relation
  cardinalities, adjacency, and per-pair distinct-value counts flattened
  into index-keyed tuples — so the inner costing loop performs no dict or
  string lookups and never touches predicate objects.
* :class:`IncrementalEvaluator` keeps per-position *prefix state* for an
  anchor order (cumulative cost, intermediate size, and the
  distinct-value caps of the propagating estimator) and prices a
  candidate by recomputing only the suffix after the longest prefix it
  shares with the anchor.  An ``upper_bound`` makes the walk abort the
  moment its running total exceeds the bound — the incumbent's cost in
  iterative improvement, the accept-threshold in simulated annealing.

**Exactness.**  The suffix walk replicates the arithmetic of
:class:`~repro.cost.cardinality.PlanEstimator` and the base
:meth:`~repro.cost.base.CostModel.plan_cost` operation for operation, in
the same order, so a full (unaborted) evaluation returns the *bitwise
identical* float the full evaluator returns.  The differential harness in
``tests/test_cost_incremental.py`` enforces this along random walks.

**Eligibility.**  The engine reproduces the semantics of the *base*
``plan_cost`` (propagating estimator + sum of ``join_cost``).  Models
that override ``plan_cost`` — :class:`~repro.cost.static.StaticCostModel`
(different estimator) and the fault-injection wrappers — must not be
routed through it; :func:`supports_incremental` is the gate the search
layer uses.

**Bound pruning contract.**  Aborts are decision-safe only because join
costs are non-negative: once the running total exceeds ``upper_bound``,
the final total can only be larger, so a strictly-less-than acceptance
test must reject.  Models with negative join costs are not eligible (the
stock models all price joins positively).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.catalog.join_graph import JoinGraph
from repro.cost.base import CostModel
from repro.cost.cardinality import (
    MAX_CARDINALITY,
    CostOverflowError,
    clamp_cardinality,
)
from repro.cost.memory import MainMemoryCostModel

__all__ = [
    "QueryContext",
    "IncrementalEvaluator",
    "PrefixState",
    "supports_incremental",
    "start_state",
    "extend_state",
    "dominates",
]


def supports_incremental(model: CostModel) -> bool:
    """True when ``model`` inherits the base ``plan_cost`` unchanged.

    A model that overrides ``plan_cost`` (a different estimator, a fault
    injector bypassing the overflow guard) defines its own plan semantics
    that the incremental walk would silently disagree with.
    """
    return type(model).plan_cost is CostModel.plan_cost


class QueryContext:
    """One query's catalog, precompiled for the incremental inner loop.

    ``adjacency[k]`` is a tuple of ``(neighbor, neighbor_distinct,
    own_distinct)`` triples in the same order as
    ``graph.adjacency(k).items()`` — preserving that order keeps the
    selectivity product bitwise identical to the full estimator's.
    """

    __slots__ = (
        "graph",
        "model",
        "n_relations",
        "cardinalities",
        "adjacency",
        "degrees",
        "join_cost",
        "_memory_constants",
    )

    def __init__(self, graph: JoinGraph, model: CostModel) -> None:
        if not supports_incremental(model):
            raise ValueError(
                f"cost model {model!r} overrides plan_cost; the incremental "
                "engine would disagree with its semantics"
            )
        self.graph = graph
        self.model = model
        n = graph.n_relations
        self.n_relations = n
        self.cardinalities = [
            relation.cardinality for relation in graph.relations
        ]
        self.adjacency: list[tuple[tuple[int, float, float], ...]] = []
        self.degrees: list[int] = []
        for relation in range(n):
            entries = tuple(
                (
                    neighbor,
                    predicate.distinct_values(neighbor),
                    predicate.distinct_values(relation),
                )
                for neighbor, predicate in graph.adjacency(relation).items()
            )
            self.adjacency.append(entries)
            self.degrees.append(len(entries))
        self.join_cost = model.join_cost
        # Fast path for the default model: inlining the three-term formula
        # saves a Python call per join.  The expression replicates
        # MainMemoryCostModel.join_cost term for term, so results stay
        # bitwise identical.  Exact-type check: a subclass may override.
        self._memory_constants: tuple[float, float, float] | None = None
        if type(model) is MainMemoryCostModel:
            self._memory_constants = (
                model.build_cost,
                model.probe_cost,
                model.output_cost,
            )


class IncrementalEvaluator:
    """Prefix-cached plan costing against an *anchor* order.

    Usage: :meth:`rebase` on the walk's current order, then
    :meth:`evaluate` each candidate (optionally with ``upper_bound``),
    and :meth:`commit` when a candidate is accepted — the candidate's
    states, computed during its evaluation, become the new anchor without
    any re-walk.  The engine is pure costing: budget charging, best-plan
    tracking, and trajectory recording stay in
    :class:`repro.core.state.DeltaEvaluator`.
    """

    def __init__(self, graph: JoinGraph, model: CostModel) -> None:
        self.context = QueryContext(graph, model)
        n = self.context.n_relations
        # Anchor state: one entry per order position.
        self._positions: tuple[int, ...] | None = None
        self._sizes: list[float] = []
        self._costs: list[float] = []  # cumulative cost through position p
        self._caps: list[dict[int, float]] = []
        self._unplaced: list[dict[int, int]] = []
        self._total = 0.0
        # Pending candidate (last successful evaluate), committable.
        self._pending: tuple | None = None
        # Version-stamped placed markers avoid an O(n) clear per candidate.
        self._placed_stamp = [0] * n
        self._stamp = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def anchor(self) -> tuple[int, ...] | None:
        """The order whose prefix states are cached (None before rebase)."""
        return self._positions

    @property
    def anchor_cost(self) -> float:
        """Total cost of the anchor order."""
        if self._positions is None:
            raise ValueError("no anchor order has been evaluated yet")
        return self._total

    def rebase(self, order: Sequence[int]) -> tuple[float, int]:
        """Make ``order`` the anchor; returns ``(cost, joins_evaluated)``.

        Reuses whatever prefix the new anchor shares with the old one, so
        re-anchoring after a small change is itself incremental.
        """
        cost, joins = self._walk(tuple(order), None, None)
        assert cost is not None  # unbounded walks never abort
        if self._pending is not None:
            # A walk of the anchor itself leaves nothing pending.
            self.commit()
        return cost, joins

    def evaluate(
        self,
        order: Sequence[int],
        upper_bound: float | None = None,
        prefix_hint: int | None = None,
    ) -> tuple[float | None, int]:
        """Price ``order`` against the anchor's cached prefix states.

        Returns ``(cost, joins_evaluated)``; ``cost`` is ``None`` when the
        running total exceeded ``upper_bound`` (the candidate is then not
        committable).  ``prefix_hint`` caps the prefix-sharing scan — an
        advisory bound (e.g. a move's first changed position), never
        trusted beyond the actual element-wise comparison, so a stale
        hint can cost speed but not correctness.
        """
        return self._walk(tuple(order), upper_bound, prefix_hint)

    def commit(self, order: Sequence[int] | None = None) -> None:
        """Adopt the last fully evaluated candidate as the new anchor.

        ``order``, when given, asserts which candidate the caller means —
        a mismatch (commit after an intervening evaluate) raises rather
        than silently anchoring the wrong order.  Committing the anchor
        itself is a no-op: evaluating an order identical to the anchor
        leaves nothing pending (there was nothing to recompute), yet the
        caller's accept-the-candidate flow is still satisfied.
        """
        pending = self._pending
        if pending is None:
            if order is not None and tuple(order) == self._positions:
                return
            raise ValueError(
                "nothing to commit: no candidate has been fully evaluated "
                "since the last commit"
            )
        positions, shared, sizes, costs, caps, unplaced, total = pending
        if order is not None and tuple(order) != positions:
            raise ValueError(
                f"commit order mismatch: last evaluated {positions}, "
                f"asked to commit {tuple(order)}"
            )
        del self._sizes[shared:]
        del self._costs[shared:]
        del self._caps[shared:]
        del self._unplaced[shared:]
        self._sizes.extend(sizes)
        self._costs.extend(costs)
        self._caps.extend(caps)
        self._unplaced.extend(unplaced)
        self._positions = positions
        self._total = total
        self._pending = None

    def prime(self, order: Sequence[int]) -> None:
        """Ensure ``order`` is the anchor; no-op when it already is."""
        positions = tuple(order)
        if positions != self._positions:
            self.rebase(positions)

    def joins_to_evaluate(self, order: Sequence[int]) -> int:
        """Joins a (full, unaborted) evaluation of ``order`` would walk."""
        positions = tuple(order)
        shared = self._shared_prefix(positions, None)
        if shared == len(positions):
            return 0
        return len(positions) - max(1, shared)

    # ------------------------------------------------------------------
    # The walk
    # ------------------------------------------------------------------

    def _shared_prefix(
        self, positions: tuple[int, ...], prefix_hint: int | None
    ) -> int:
        anchor = self._positions
        if anchor is None:
            return 0
        limit = min(len(anchor), len(positions))
        if prefix_hint is not None and prefix_hint < limit:
            limit = prefix_hint
        shared = 0
        while shared < limit and anchor[shared] == positions[shared]:
            shared += 1
        return shared

    def _walk(
        self,
        positions: tuple[int, ...],
        upper_bound: float | None,
        prefix_hint: int | None,
    ) -> tuple[float | None, int]:
        context = self.context
        n = len(positions)
        if n != context.n_relations:
            raise ValueError(
                f"order over {n} relations does not match graph with "
                f"{context.n_relations}"
            )
        shared = self._shared_prefix(positions, prefix_hint)
        if shared == n:
            # Identical to the anchor: nothing to recompute or commit.
            self._pending = None
            return self._total, 0

        cardinalities = context.cardinalities
        adjacency = context.adjacency
        join_cost = context.join_cost
        memory = context._memory_constants
        if memory is not None:
            build_cost, probe_cost, output_cost = memory

        suffix_sizes: list[float] = []
        suffix_costs: list[float] = []
        suffix_caps: list[dict[int, float]] = []
        suffix_unplaced: list[dict[int, int]] = []

        if shared == 0:
            first = positions[0]
            size = clamp_cardinality(
                cardinalities[first], f"relation {first}"
            )
            running = 0.0
            caps: dict[int, float] = {}
            unplaced: dict[int, int] = {}
            degree = context.degrees[first]
            if degree:
                caps[first] = size
                unplaced[first] = degree
            suffix_sizes.append(size)
            suffix_costs.append(0.0)
            suffix_caps.append(caps.copy())
            suffix_unplaced.append(unplaced.copy())
            start = 1
        else:
            size = self._sizes[shared - 1]
            running = self._costs[shared - 1]
            caps = self._caps[shared - 1].copy()
            unplaced = self._unplaced[shared - 1].copy()
            start = shared

        # Mark the prefix as placed using a fresh stamp (O(prefix), no
        # O(n) clear).
        self._stamp += 1
        stamp = self._stamp
        placed = self._placed_stamp
        for position in range(start):
            placed[positions[position]] = stamp

        joins = 0
        for position in range(start, n):
            inner = positions[position]
            selectivity = 1.0
            open_inner = 0
            for neighbor, outer_distinct, inner_distinct in adjacency[inner]:
                if placed[neighbor] != stamp:
                    open_inner += 1
                    continue
                cap = caps.get(neighbor)
                if cap is not None and cap < outer_distinct:
                    outer_distinct = cap
                larger = max(outer_distinct, inner_distinct, 1.0)
                selectivity *= 1.0 / larger
                # The outer side of this edge has one fewer unplaced edge.
                count = unplaced.get(neighbor, 0) - 1
                if count <= 0:
                    unplaced.pop(neighbor, None)
                    caps.pop(neighbor, None)
                else:
                    unplaced[neighbor] = count

            inner_size = cardinalities[inner]
            result = size * inner_size * selectivity
            if not (1.0 <= result <= MAX_CARDINALITY):
                result = clamp_cardinality(
                    result, f"joining relation {inner}"
                )

            if open_inner:
                unplaced[inner] = open_inner
                caps[inner] = inner_size if inner_size < result else result
            for relation, cap in caps.items():
                if cap > result:
                    caps[relation] = result

            if memory is not None:
                running += (
                    build_cost * inner_size
                    + probe_cost * size
                    + output_cost * result
                )
            else:
                running += join_cost(size, inner_size, result)
            joins += 1
            if upper_bound is not None and running > upper_bound:
                # Every remaining join can only add cost, so the total
                # already exceeds the bound: a strictly-less acceptance
                # test must reject this candidate.  Abort before
                # snapshotting — the candidate can never be committed.
                self._pending = None
                return None, joins
            placed[inner] = stamp
            size = result

            suffix_sizes.append(size)
            suffix_costs.append(running)
            suffix_caps.append(caps.copy())
            suffix_unplaced.append(unplaced.copy())

        if not math.isfinite(running):
            raise CostOverflowError(
                f"{context.model.name} cost model produced non-finite plan "
                f"cost {running!r} for order {positions}"
            )
        self._pending = (
            positions,
            shared,
            suffix_sizes,
            suffix_costs,
            suffix_caps,
            suffix_unplaced,
            running,
        )
        return running, joins


# ----------------------------------------------------------------------
# Standalone prefix states (the branch-and-bound interface)
# ----------------------------------------------------------------------
#
# The anchor-relative engine above serves *trajectory* search: II/SA walk
# one order at a time.  A best-first branch-and-bound instead holds many
# incomparable prefixes alive at once, so it needs the walk's state as a
# value it can stash in a frontier and extend out of order.  PrefixState
# is exactly one ``_walk`` step's snapshot; ``extend_state`` replicates
# the step arithmetic operation for operation, so a chain of extensions
# over a full order yields the bitwise-identical cost ``plan_cost``
# returns (enforced by tests/test_core_exact.py).


class PrefixState:
    """The propagating walk's state after placing a prefix of relations.

    ``mask`` is the placed-relation bitmask (order-independent), ``size``
    the current intermediate-result cardinality, ``cost`` the cumulative
    plan cost so far, and ``caps``/``unplaced`` the distinct-value caps
    and open-edge counts of :class:`~repro.cost.cardinality.PlanEstimator`.
    Treat instances as immutable: ``extend_state`` copies the dicts.
    """

    __slots__ = ("mask", "size", "cost", "caps", "unplaced")

    def __init__(
        self,
        mask: int,
        size: float,
        cost: float,
        caps: dict[int, float],
        unplaced: dict[int, int],
    ) -> None:
        self.mask = mask
        self.size = size
        self.cost = cost
        self.caps = caps
        self.unplaced = unplaced


def start_state(context: QueryContext, first: int) -> PrefixState:
    """The walk's state after placing ``first`` as the outermost relation.

    Mirrors the first-relation initialisation of the incremental walk
    (and of :class:`~repro.cost.cardinality.PlanEstimator`) exactly.
    """
    size = clamp_cardinality(
        context.cardinalities[first], f"relation {first}"
    )
    caps: dict[int, float] = {}
    unplaced: dict[int, int] = {}
    degree = context.degrees[first]
    if degree:
        caps[first] = size
        unplaced[first] = degree
    return PrefixState(1 << first, size, 0.0, caps, unplaced)


def extend_state(
    context: QueryContext, state: PrefixState, inner: int
) -> PrefixState:
    """``state`` with relation ``inner`` joined next.

    Replicates one iteration of the incremental walk's inner loop — same
    operations, same order — so extension chains stay bitwise identical
    to ``plan_cost``.  Raises
    :class:`~repro.cost.cardinality.CostOverflowError` exactly where the
    full walk's clamp would.
    """
    mask = state.mask
    caps = state.caps.copy()
    unplaced = state.unplaced.copy()
    size = state.size
    selectivity = 1.0
    open_inner = 0
    for neighbor, outer_distinct, inner_distinct in context.adjacency[inner]:
        if not (mask >> neighbor) & 1:
            open_inner += 1
            continue
        cap = caps.get(neighbor)
        if cap is not None and cap < outer_distinct:
            outer_distinct = cap
        larger = max(outer_distinct, inner_distinct, 1.0)
        selectivity *= 1.0 / larger
        count = unplaced.get(neighbor, 0) - 1
        if count <= 0:
            unplaced.pop(neighbor, None)
            caps.pop(neighbor, None)
        else:
            unplaced[neighbor] = count

    inner_size = context.cardinalities[inner]
    result = size * inner_size * selectivity
    if not (1.0 <= result <= MAX_CARDINALITY):
        result = clamp_cardinality(result, f"joining relation {inner}")

    if open_inner:
        unplaced[inner] = open_inner
        caps[inner] = inner_size if inner_size < result else result
    for relation, cap in caps.items():
        if cap > result:
            caps[relation] = result

    memory = context._memory_constants
    if memory is not None:
        build_cost, probe_cost, output_cost = memory
        cost = state.cost + (
            build_cost * inner_size
            + probe_cost * size
            + output_cost * result
        )
    else:
        cost = state.cost + context.join_cost(size, inner_size, result)
    return PrefixState(mask | (1 << inner), result, cost, caps, unplaced)


def dominates(a: PrefixState, b: PrefixState) -> bool:
    """True when prefix ``a`` renders prefix ``b`` (same mask) redundant.

    Sound for *bitwise* minimality — not merely mathematical minimality —
    because every downstream operation of the propagating walk is
    float-monotone in the state components it reads: the selectivity
    product reads caps through ``min``-like clamping in a fixed
    (adjacency) iteration order, sizes feed multiplications by positive
    factors, and both stock models' ``join_cost`` are monotone in outer
    and result size.  With equal masks the caps key sets coincide (cap
    presence depends only on which relations are placed); a state with
    pointwise ≤ cost, ≤ size, and ≥ caps therefore completes every suffix
    at a pointwise ≤ cost, computed through the identical float
    expressions.  Callers must only apply this under the base propagating
    semantics — :class:`~repro.cost.static.StaticCostModel` walks the
    *placed list* in order, so its sizes are not mask-determined and no
    analogous dominance holds.
    """
    if a.cost > b.cost or a.size > b.size:
        return False
    if len(a.caps) != len(b.caps):
        return False
    b_caps = b.caps
    for relation, cap in a.caps.items():
        other = b_caps.get(relation)
        if other is None or cap < other:
            return False
    return True
