"""Cost models: cardinality estimation and the two hash-join cost models.

The paper validates its results under two models: a main-memory model (its
[Swa89a]) and a disk-based model (similar to its [Bra84]).  Both are
implemented here behind the :class:`CostModel` interface.  Only the hash
join method is used, as in the paper.
"""

from repro.cost.base import CostModel, PlanCostDetail
from repro.cost.cardinality import (
    CostOverflowError,
    MAX_CARDINALITY,
    PlanEstimator,
    StepEstimate,
    clamp_cardinality,
    combined_selectivity,
    join_result_cardinality,
    prefix_cardinalities,
    walk_plan,
)
from repro.cost.incremental import (
    IncrementalEvaluator,
    QueryContext,
    supports_incremental,
)
from repro.cost.memory import MainMemoryCostModel
from repro.cost.disk import DiskCostModel
from repro.cost.bounds import lower_bound
from repro.cost.methods import (
    MultiMethodCostModel,
    NestedLoopCostModel,
    SortMergeCostModel,
)
from repro.cost.static import StaticCostModel
from repro.cost.vectorized import (
    ArrayContext,
    batch_plan_cost,
    supports_vectorized,
)

__all__ = [
    "CostModel",
    "CostOverflowError",
    "MAX_CARDINALITY",
    "clamp_cardinality",
    "PlanCostDetail",
    "PlanEstimator",
    "StepEstimate",
    "walk_plan",
    "IncrementalEvaluator",
    "QueryContext",
    "supports_incremental",
    "MainMemoryCostModel",
    "DiskCostModel",
    "NestedLoopCostModel",
    "SortMergeCostModel",
    "MultiMethodCostModel",
    "StaticCostModel",
    "combined_selectivity",
    "join_result_cardinality",
    "prefix_cardinalities",
    "lower_bound",
    "ArrayContext",
    "batch_plan_cost",
    "supports_vectorized",
]
