"""Cardinality estimation with distinct-value propagation.

Joining relation ``j`` into an intermediate result ``S`` of size ``|S|``
yields an estimated

    |S ⋈ j| = |S| * N_j * prod(J'_ij  over predicates linking j to S)

with base join selectivity ``J_ij = 1 / max(D_i, D_j)``.

**Distinct-value propagation.**  A column of an intermediate result cannot
have more distinct values than the intermediate has tuples.  So when a
small intermediate is produced early, the distinct counts of all columns
it carries are *capped* at its size, and a later join through such a
column sees an **effective** selectivity

    J'_ij = 1 / max(min(D_i, cap_i), D_j)      >=  J_ij

where ``cap_i`` is the smallest intermediate size since relation ``i``
entered the plan.  This is the effect the paper leans on to explain why
the min-selectivity criterion wins its Table 1: consuming the
high-distinct (small ``J``) predicates early keeps distinct counts — and
hence sizes — small *throughout* the plan, while greedily minimising the
immediate result shrinks the caps and inflates every later join.

:class:`PlanEstimator` is the single walker all cost models and plan
builders share; the static helpers (no propagation) remain for tests and
for the heuristics' own per-edge reasoning, which the paper defines on
base-relation statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.plans.join_order import JoinOrder

#: Ceiling on any estimated cardinality.  Chosen so that the product of two
#: clamped sizes (and hence any per-join cost term) still fits comfortably
#: in a float: 1e150 squared is 1e300 < DBL_MAX.  Estimates this large carry
#: no ordering information anyway — every plan that reaches the clamp is
#: equally hopeless.
MAX_CARDINALITY = 1e150


class CostOverflowError(OverflowError):
    """A cardinality or cost computation left the finite float range.

    Raised instead of silently propagating ``inf``/``NaN`` so that callers
    (and the resilient optimizer's fallback chain) can distinguish a broken
    estimate from a merely enormous one.
    """


def clamp_cardinality(estimate: float, context: str = "estimate") -> float:
    """Clamp ``estimate`` into ``[1, MAX_CARDINALITY]``; reject non-finite.

    The lower clamp preserves the library-wide "at least one tuple"
    convention; the upper clamp keeps downstream arithmetic finite.  A NaN
    or infinite input means a statistic upstream was already corrupt, which
    clamping would mask — that raises :class:`CostOverflowError` instead.
    """
    if not math.isfinite(estimate):
        raise CostOverflowError(
            f"non-finite cardinality {context}: {estimate!r}"
        )
    if estimate > MAX_CARDINALITY:
        return MAX_CARDINALITY
    if estimate < 1.0:
        return 1.0
    return estimate


def combined_selectivity(predicates: Sequence[JoinPredicate]) -> float:
    """Product of base selectivities (1.0 when empty: a cross product)."""
    selectivity = 1.0
    for predicate in predicates:
        selectivity *= predicate.selectivity
    return selectivity


def join_result_cardinality(
    outer_size: float,
    inner_size: float,
    predicates: Sequence[JoinPredicate],
) -> float:
    """Static estimate (no propagation) of one join's result size."""
    estimate = outer_size * inner_size * combined_selectivity(predicates)
    return clamp_cardinality(estimate, "join result")


@dataclass(frozen=True)
class StepEstimate:
    """Sizes around one join while walking a plan left to right."""

    inner: int
    predicates: tuple[JoinPredicate, ...]
    outer_size: float
    inner_size: float
    result_size: float

    @property
    def is_cross_product(self) -> bool:
        return not self.predicates


class PlanEstimator:
    """Left-to-right size estimation with distinct-value capping.

    Create it with the first relation of the order, then call
    :meth:`step` once per subsequent relation.  Caps are maintained only
    for *open* relations (placed relations that still have predicates to
    unplaced ones), keeping each step near-linear in the frontier size.
    """

    def __init__(self, graph: JoinGraph, first: int) -> None:
        self.graph = graph
        self.placed: list[int] = [first]
        self.size: float = clamp_cardinality(
            graph.cardinality(first), f"relation {first}"
        )
        self._caps: dict[int, float] = {}
        self._unplaced_neighbors: dict[int, int] = {}
        self._placed_set = {first}
        self._cardinalities = [
            relation.cardinality for relation in graph.relations
        ]
        remaining = graph.degree(first)
        if remaining:
            self._caps[first] = self.size
            self._unplaced_neighbors[first] = remaining

    def effective_selectivity(self, predicates: Sequence[JoinPredicate], inner: int) -> float:
        """Product of capped selectivities for joining ``inner`` now."""
        selectivity = 1.0
        for predicate in predicates:
            outer_side = predicate.other(inner)
            outer_distinct = min(
                predicate.distinct_values(outer_side),
                self._caps.get(outer_side, float("inf")),
            )
            inner_distinct = predicate.distinct_values(inner)
            selectivity *= 1.0 / max(outer_distinct, inner_distinct, 1.0)
        return selectivity

    def step(self, inner: int) -> StepEstimate:
        """Join ``inner`` into the running intermediate; update caps."""
        placed_set = self._placed_set
        if inner in placed_set:
            raise ValueError(f"relation {inner} already placed")
        caps = self._caps
        unplaced_neighbors = self._unplaced_neighbors
        selectivity = 1.0
        predicates: list[JoinPredicate] = []
        open_inner = 0
        for neighbor, predicate in self.graph.adjacency(inner).items():
            if neighbor not in placed_set:
                open_inner += 1
                continue
            predicates.append(predicate)
            if neighbor == predicate.left:
                outer_distinct = predicate.left_distinct
                inner_distinct = predicate.right_distinct
            else:
                outer_distinct = predicate.right_distinct
                inner_distinct = predicate.left_distinct
            cap = caps.get(neighbor)
            if cap is not None and cap < outer_distinct:
                outer_distinct = cap
            larger = max(outer_distinct, inner_distinct, 1.0)
            selectivity *= 1.0 / larger
            # The outer side of this predicate has one fewer unplaced edge.
            count = unplaced_neighbors.get(neighbor, 0) - 1
            if count <= 0:
                unplaced_neighbors.pop(neighbor, None)
                caps.pop(neighbor, None)
            else:
                unplaced_neighbors[neighbor] = count

        inner_size = self._cardinalities[inner]
        outer_size = self.size
        result = outer_size * inner_size * selectivity
        if not (1.0 <= result <= MAX_CARDINALITY):
            # Slow path: clamp overflowing estimates, reject NaN/inf.
            result = clamp_cardinality(result, f"joining relation {inner}")

        if open_inner:
            unplaced_neighbors[inner] = open_inner
            caps[inner] = min(inner_size, result)
        # The new intermediate caps every open column at its size.
        for relation, cap in caps.items():
            if cap > result:
                caps[relation] = result

        self.placed.append(inner)
        placed_set.add(inner)
        self.size = result
        return StepEstimate(
            inner=inner,
            predicates=tuple(predicates),
            outer_size=outer_size,
            inner_size=inner_size,
            result_size=result,
        )


def walk_plan(order: JoinOrder, graph: JoinGraph) -> list[StepEstimate]:
    """All step estimates of a full order (propagating estimator)."""
    estimator = PlanEstimator(graph, order[0])
    return [estimator.step(order[position]) for position in range(1, len(order))]


def prefix_cardinalities(order: JoinOrder, graph: JoinGraph) -> list[float]:
    """Estimated sizes of every prefix of the order (with propagation).

    Element 0 is the first relation's cardinality; element ``k`` is the
    intermediate after ``k`` joins.  The list has ``len(order)`` entries.
    """
    estimator = PlanEstimator(graph, order[0])
    sizes = [estimator.size]
    for position in range(1, len(order)):
        sizes.append(estimator.step(order[position]).result_size)
    return sizes
