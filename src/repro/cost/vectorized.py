"""Vectorized batch plan costing: a struct-of-arrays hot path.

The scalar evaluators (:meth:`~repro.cost.base.CostModel.plan_cost` and the
prefix-cached :class:`~repro.cost.incremental.IncrementalEvaluator`) price
one candidate at a time, walking Python objects join by join.  The search
methods, however, naturally produce *batches* of candidates priced against
the same incumbent — an II rejection streak, an SA chain's proposals, a
local-improvement window's permutations.  This module prices such a batch
in one array sweep per join position instead of one object walk per plan.

**ArrayContext** compiles one ``(graph, model)`` pair into flat arrays:

========================  =====================================================
``cards[r]``              raw base cardinality of relation ``r`` (float64)
``first_sizes[r]``        clamped start size (``NaN`` when the raw value is
                          non-finite — the scalar walk would raise there)
``nbr[r, s]``             ``s``-th neighbor of ``r``, in the exact
                          ``graph.adjacency(r).items()`` order the scalar
                          estimator multiplies selectivities in
``d_out[r, s]``           predicate distinct count on the neighbor's side
``d_in[r, s]``            predicate distinct count on ``r``'s side
``slot_valid[r, s]``      whether slot ``s`` exists for ``r`` (rows are padded
                          to the maximum degree; padded slots multiply the
                          selectivity by exactly ``1.0``, a bit-exact identity)
========================  =====================================================

For the disk model, per-relation ``inner_pages[r]`` and ``passes[r]`` are
precomputed *with the scalar model's own methods* (the inner operand of an
outer-linear plan is always a base relation), so page rounding and the
``log``-based pass count agree with the scalar walk to the last bit.

**Parity contract.**  ``batch_plan_cost(orders)[b]`` is bitwise equal to
``model.plan_cost(orders[b], graph)`` for every plan on which the scalar
walk succeeds: identical multiplication order (the slot loop multiplies
selectivity factors column by column, never via an axis reduction, because
reduction order is unspecified), identical clamp behaviour (the in-range
test mirrors ``1.0 <= result <= MAX_CARDINALITY`` before the slow path),
and identical distinct-value cap propagation (a dense ``[B, N]`` cap matrix
is read-equivalent to the scalar estimator's sparse dict: a cap the scalar
pops — or never registers — belongs to a relation all of whose neighbors
are placed, which no later join can read).

**Masked saturation.**  Where the scalar walk raises
:class:`~repro.cost.cardinality.CostOverflowError` (non-finite cardinality,
non-finite running total), the batch kernel instead *flags* the row and
sanitizes its lane so NaN/inf never contaminates the other rows of the
batch; flagged rows report ``+inf``.  Callers that need the genuine
exception (the evaluator layer does) re-dispatch flagged rows to the
scalar oracle.

numpy is an optional dependency (the ``[vector]`` extra).  Without it —
or for cost models other than the two built-in ones — ``batch_costs``
falls back to a per-row scalar ``plan_cost`` loop with the same
``(costs, saturated)`` interface, so callers never need to care.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.catalog.join_graph import JoinGraph
from repro.cost.base import CostModel
from repro.cost.cardinality import MAX_CARDINALITY, CostOverflowError
from repro.cost.disk import DiskCostModel
from repro.cost.incremental import supports_incremental
from repro.cost.memory import MainMemoryCostModel

try:  # pragma: no cover - exercised via the monkeypatched fallback tests
    import numpy
except ImportError:  # pragma: no cover - the [vector] extra is optional
    numpy = None  # type: ignore[assignment]

#: Whether the vectorized kernel is available at all.
HAVE_NUMPY = numpy is not None

#: Array annotations stay ``Any`` so the module typechecks without numpy.
FloatArray = Any
BoolArray = Any

__all__ = [
    "ArrayContext",
    "HAVE_NUMPY",
    "batch_plan_cost",
    "supports_vectorized",
]


def supports_vectorized(model: CostModel) -> bool:
    """Whether ``model`` is priced by the numpy kernel (not the fallback).

    The kernel inlines the two built-in models' ``join_cost`` arithmetic,
    so it requires their *exact* types — a subclass could override
    ``join_cost`` — plus numpy itself.  Ineligible models still work
    through :meth:`ArrayContext.batch_costs`; they just take the scalar
    per-row loop.
    """
    return HAVE_NUMPY and type(model) in (MainMemoryCostModel, DiskCostModel)


class ArrayContext:
    """Flat-array compilation of one ``(graph, model)`` pair.

    Build it once per search; :meth:`batch_costs` then prices whole
    candidate batches.  Only models eligible for incremental evaluation
    (those that keep the base ``plan_cost`` walk) are accepted — a model
    that overrides ``plan_cost`` defines its own plan semantics, which no
    shared kernel can reproduce.
    """

    def __init__(self, graph: JoinGraph, model: CostModel) -> None:
        if not supports_incremental(model):
            raise ValueError(
                f"cost model {model!r} overrides plan_cost and cannot be "
                "batch-costed; price it plan by plan instead"
            )
        self.graph = graph
        self.model = model
        self.n_relations = graph.n_relations
        #: True when batches run through the numpy kernel; False routes
        #: every batch through the scalar per-row fallback.
        self.vectorized = supports_vectorized(model)
        if self.vectorized:
            self._compile()

    # ------------------------------------------------------------------
    # Compilation

    def _compile(self) -> None:
        assert numpy is not None
        np = numpy
        graph, model = self.graph, self.model
        n = self.n_relations
        cards = [float(graph.cardinality(index)) for index in range(n)]
        self._cards = np.array(cards, dtype=np.float64)
        finite = np.isfinite(self._cards)
        with np.errstate(invalid="ignore"):
            self._first_sizes = np.where(
                finite, np.clip(self._cards, 1.0, MAX_CARDINALITY), np.nan
            )
        width = max((graph.degree(index) for index in range(n)), default=1)
        width = max(width, 1)
        self._width = width
        self._nbr = np.zeros((n, width), dtype=np.intp)
        self._d_out = np.ones((n, width), dtype=np.float64)
        self._d_in = np.ones((n, width), dtype=np.float64)
        self._slot_valid = np.zeros((n, width), dtype=bool)
        for index in range(n):
            adjacency = graph.adjacency(index)
            for slot, (neighbor, predicate) in enumerate(adjacency.items()):
                self._nbr[index, slot] = neighbor
                if neighbor == predicate.left:
                    self._d_out[index, slot] = predicate.left_distinct
                    self._d_in[index, slot] = predicate.right_distinct
                else:
                    self._d_out[index, slot] = predicate.right_distinct
                    self._d_in[index, slot] = predicate.left_distinct
                self._slot_valid[index, slot] = True
        if type(model) is MainMemoryCostModel:
            self._kind = "memory"
            self._build = model.build_cost
            self._probe = model.probe_cost
            self._output = model.output_cost
        else:
            assert type(model) is DiskCostModel
            self._kind = "disk"
            self._tuples_per_page = model.tuples_per_page
            self._memory_pages = float(model.memory_pages)
            self._io_cost = model.io_cost
            self._cpu_weight = model.cpu_weight
            # The inner operand of an outer-linear join is always a base
            # relation: its page count and partition passes depend only on
            # the catalog, so both are precomputed here *with the scalar
            # model's own methods* — the kernel never re-derives them.
            inner_pages = [
                model.pages(card) if math.isfinite(card) else 1.0
                for card in cards
            ]
            self._inner_pages = np.array(inner_pages, dtype=np.float64)
            self._passes = np.array(
                [float(model.partition_passes(pages)) for pages in inner_pages],
                dtype=np.float64,
            )

    # ------------------------------------------------------------------
    # Batch pricing

    def batch_costs(
        self, orders: Sequence[Sequence[int]], validate: bool = True
    ) -> tuple[Any, Any]:
        """Price every row of ``orders``; return ``(costs, saturated)``.

        ``costs[b]`` equals ``model.plan_cost(orders[b], graph)`` bit for
        bit wherever the scalar walk succeeds; rows on which the scalar
        walk would raise :class:`CostOverflowError` carry ``saturated[b]
        == True`` and ``costs[b] == inf`` instead (masked saturation — a
        poisoned row never contaminates its batchmates).  With numpy both
        returns are arrays (float64[B], bool[B]); the fallback returns
        plain lists with the same semantics.

        ``validate=True`` checks each row is a permutation of the graph's
        relations; internal callers that construct rows from known-valid
        :class:`~repro.plans.join_order.JoinOrder` objects skip it.
        """
        if self.vectorized:
            return self._batch_costs_numpy(orders, validate)
        return self._batch_costs_python(orders, validate)

    def batch_plan_cost(self, orders: Sequence[Sequence[int]]) -> Any:
        """Costs only; saturated rows report ``+inf`` (see module docs)."""
        costs, _saturated = self.batch_costs(orders, validate=True)
        return costs

    def _batch_costs_python(
        self, orders: Sequence[Sequence[int]], validate: bool
    ) -> tuple[list[float], list[bool]]:
        """Scalar fallback: per-row ``plan_cost`` with exception masking.

        Parity with the oracle holds by construction; only the masked
        saturation of :class:`CostOverflowError` is layered on top.
        """
        graph, model = self.graph, self.model
        expected = frozenset(range(self.n_relations))
        costs: list[float] = []
        saturated: list[bool] = []
        for row in orders:
            positions = tuple(row)
            if validate and (
                len(positions) != self.n_relations
                or set(positions) != expected
            ):
                raise ValueError(
                    f"order {positions!r} is not a permutation of "
                    f"0..{self.n_relations - 1}"
                )
            try:
                cost = model.plan_cost(positions, graph)  # type: ignore[arg-type]
            except CostOverflowError:
                costs.append(math.inf)
                saturated.append(True)
            else:
                costs.append(cost)
                saturated.append(False)
        return costs, saturated

    def _batch_costs_numpy(
        self, orders: Sequence[Sequence[int]], validate: bool
    ) -> tuple[Any, Any]:
        assert numpy is not None
        np = numpy
        n = self.n_relations
        if len(orders) == 0:
            # An empty list has no second axis to shape-check against.
            return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=bool)
        array = np.asarray(
            [tuple(row) for row in orders]
            if not isinstance(orders, np.ndarray)
            else orders,
            dtype=np.intp,
        )
        if array.ndim != 2 or array.shape[1] != n:
            raise ValueError(
                f"orders must be [B, {n}]-shaped; got {array.shape}"
            )
        if validate and not bool(
            (np.sort(array, axis=1) == np.arange(n, dtype=np.intp)).all()
        ):
            raise ValueError(
                f"every row must be a permutation of 0..{n - 1}"
            )
        batch = array.shape[0]
        if batch == 0:
            empty = np.zeros(0, dtype=np.float64)
            return empty, np.zeros(0, dtype=bool)
        with np.errstate(
            over="ignore", invalid="ignore", divide="ignore"
        ):
            return self._kernel(np, array, batch, n)

    def _kernel(
        self, np: Any, orders: Any, batch: int, n: int
    ) -> tuple[Any, Any]:
        """One sweep per join position over the whole batch.

        Mirrors :class:`~repro.cost.cardinality.PlanEstimator` + the
        model's ``join_cost`` line by line; see the module docstring for
        why each construct is bit-exact.
        """
        rows = np.arange(batch)
        first = orders[:, 0]
        size = self._first_sizes[first].copy()
        saturated = np.isnan(size)
        if saturated.any():
            size[saturated] = 1.0
        caps = np.full((batch, n), np.inf, dtype=np.float64)
        caps[rows, first] = size
        placed = np.zeros((batch, n), dtype=bool)
        placed[rows, first] = True
        total = np.zeros(batch, dtype=np.float64)
        disk = self._kind == "disk"
        for position in range(1, n):
            inner = orders[:, position]
            # Selectivity: gather this position's adjacency rows once,
            # then multiply factors column by column (left to right, like
            # the scalar loop — reduction order must not be left to an
            # axis reduction, whose association is unspecified).
            neighbors = self._nbr[inner]
            d_out = self._d_out[inner]
            use = self._slot_valid[inner] & placed[rows[:, None], neighbors]
            capped = np.minimum(caps[rows[:, None], neighbors], d_out)
            larger = np.maximum(
                np.maximum(capped, self._d_in[inner]), 1.0
            )
            factor = np.where(use, 1.0 / larger, 1.0)
            sel = np.ones(batch, dtype=np.float64)
            for slot in range(self._width):
                sel = sel * factor[:, slot]
            inner_size = self._cards[inner]
            outer_size = size
            result = outer_size * inner_size * sel
            in_range = (1.0 <= result) & (result <= MAX_CARDINALITY)
            if not in_range.all():
                # Slow path, exactly like the scalar estimator: clamp
                # overflowing finite estimates, flag NaN/inf rows (where
                # the scalar raises CostOverflowError) and sanitize their
                # lanes so they cannot poison the rest of the batch.
                finite = np.isfinite(result)
                saturated |= ~finite
                result = np.clip(result, 1.0, MAX_CARDINALITY)
                result[~finite] = 1.0
            if disk:
                cost = self._disk_cost(np, outer_size, inner_size, result, inner)
            else:
                cost = (
                    self._build * inner_size
                    + self._probe * outer_size
                    + self._output * result
                )
            total = total + cost
            caps[rows, inner] = np.where(
                inner_size < result, inner_size, result
            )
            np.minimum(caps, result[:, None], out=caps)
            placed[rows, inner] = True
            size = result
        # plan_cost's closing check: a non-finite *total* (the costs were
        # finite join by join but their sum overflowed) also raises.
        saturated |= ~np.isfinite(total)
        costs = np.where(saturated, np.inf, total)
        return costs, saturated

    def _disk_cost(
        self, np: Any, outer_size: Any, inner_size: Any, result: Any, inner: Any
    ) -> Any:
        """Vector transcription of :meth:`DiskCostModel.join_cost`."""
        outer_pages = np.maximum(
            1.0, np.ceil(outer_size / self._tuples_per_page)
        )
        inner_pages = self._inner_pages[inner]
        passes = self._passes[inner]
        io = (2.0 * passes + 1.0) * (outer_pages + inner_pages)
        result_pages = np.maximum(
            1.0, np.ceil(result / self._tuples_per_page)
        )
        io = io + np.where(
            result_pages > self._memory_pages, 2.0 * result_pages, 0.0
        )
        cpu = self._cpu_weight * (outer_size + inner_size + result)
        return self._io_cost * io + cpu


def batch_plan_cost(
    orders: Sequence[Sequence[int]], graph: JoinGraph, model: CostModel
) -> Any:
    """Price a batch of orders in one call (builds a throwaway context).

    Returns ``float64[B]`` (a list without numpy): element ``b`` is
    bitwise equal to ``model.plan_cost(orders[b], graph)``, except that
    rows on which the scalar walk raises
    :class:`~repro.cost.cardinality.CostOverflowError` report ``+inf``.
    Callers pricing many batches against one graph should build an
    :class:`ArrayContext` once and call :meth:`ArrayContext.batch_costs`.
    """
    return ArrayContext(graph, model).batch_plan_cost(orders)
