"""The cost-model interface shared by both hash-join models.

A cost model prices one hash join given the operand and result sizes; plan
cost is the sum over the joins of an outer-linear tree, with intermediate
sizes supplied by the propagating
:class:`~repro.cost.cardinality.PlanEstimator`.  Cost models are pure:
budget accounting happens in :mod:`repro.core.state`, which wraps plan
evaluation with charging.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph
from repro.cost.cardinality import CostOverflowError, PlanEstimator
from repro.plans.join_order import JoinOrder

__all__ = ["CostModel", "CostOverflowError", "PlanCostDetail"]


@dataclass(frozen=True)
class PlanCostDetail:
    """Per-join breakdown of a plan's cost.

    ``join_costs[k]`` is the cost of the ``k``-th join (joining the relation
    at order position ``k + 1``); ``prefix_sizes[k]`` is the estimated size
    of the intermediate after that join.  ``prefix_costs`` are cumulative.
    """

    order: JoinOrder
    join_costs: tuple[float, ...]
    prefix_sizes: tuple[float, ...]

    @property
    def total(self) -> float:
        return sum(self.join_costs)

    @property
    def prefix_costs(self) -> tuple[float, ...]:
        cumulative: list[float] = []
        running = 0.0
        for cost in self.join_costs:
            running += cost
            cumulative.append(running)
        return tuple(cumulative)


class CostModel(ABC):
    """Prices hash joins.  Subclasses define :meth:`join_cost`."""

    name: str = "abstract"

    @abstractmethod
    def join_cost(
        self, outer_size: float, inner_size: float, result_size: float
    ) -> float:
        """Cost of one hash join with the given estimated sizes."""

    def plan_cost(self, order: JoinOrder, graph: JoinGraph) -> float:
        """Total cost of the outer-linear plan given by ``order``.

        Raises :class:`CostOverflowError` if any join's cost (or the
        running total) leaves the finite float range — a symptom of a
        broken cost model or corrupted statistics, never of a merely
        expensive plan (cardinalities are clamped upstream).
        """
        estimator = PlanEstimator(graph, order[0])
        total = 0.0
        for position in range(1, len(order)):
            step = estimator.step(order[position])
            # detlint: ignore[PURE001] -- reaches the test-only fault injector
            total += self.join_cost(
                step.outer_size, step.inner_size, step.result_size
            )
        if not math.isfinite(total):
            raise CostOverflowError(
                f"{self.name} cost model produced non-finite plan cost "
                f"{total!r} for order {order}"
            )
        return total

    def plan_cost_detail(self, order: JoinOrder, graph: JoinGraph) -> PlanCostDetail:
        """Like :meth:`plan_cost` but keeps the per-join breakdown."""
        estimator = PlanEstimator(graph, order[0])
        join_costs: list[float] = []
        prefix_sizes: list[float] = []
        for position in range(1, len(order)):
            step = estimator.step(order[position])
            cost = self.join_cost(
                step.outer_size, step.inner_size, step.result_size
            )
            if not math.isfinite(cost):
                raise CostOverflowError(
                    f"{self.name} cost model produced non-finite join cost "
                    f"{cost!r} at position {position} of {order}"
                )
            join_costs.append(cost)
            prefix_sizes.append(step.result_size)
        return PlanCostDetail(
            order=order,
            join_costs=tuple(join_costs),
            prefix_sizes=tuple(prefix_sizes),
        )

    def __str__(self) -> str:
        return self.name
