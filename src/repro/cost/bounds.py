"""Lower bounds on the optimal plan cost.

The paper's optimizers may stop early when the current best solution is
sufficiently close to a lower bound on the optimum.  The bound here is
cheap and admissible for both cost models:

* every relation except (at most) one must appear as the *inner* of some
  hash join, so the total cost is at least the sum of the cheapest possible
  per-inner charges, dropping the most expensive one;
* every join's result is at least one tuple, so the per-join output charge
  contributes at least ``N`` times the model's cost of a single-tuple join
  on minimal operands.

The bound is deliberately loose — its role is the stopping rule, not
pruning — and is exact on single-join queries for the memory model.
"""

from __future__ import annotations

from repro.catalog.join_graph import JoinGraph
from repro.cost.base import CostModel


def lower_bound(graph: JoinGraph, model: CostModel) -> float:
    """An admissible lower bound on the cost of any valid plan.

    Works for any :class:`CostModel` by pricing, for each relation, the
    cheapest join it could possibly take part in as the inner operand (with
    a one-tuple outer and a one-tuple result), summing those charges over
    all relations but the largest contributor.
    """
    if graph.n_relations < 2:
        return 0.0
    per_inner = [
        model.join_cost(1.0, graph.cardinality(k), 1.0)
        for k in range(graph.n_relations)
    ]
    return sum(per_inner) - max(per_inner)


def is_close_to_bound(cost: float, bound: float, tolerance: float = 1.05) -> bool:
    """True when ``cost`` is within ``tolerance`` of the lower bound.

    With ``tolerance = 1.05`` a plan costing at most 5% above the bound is
    considered good enough to stop the optimizer early.
    """
    if bound <= 0:
        return False
    return cost <= bound * tolerance
