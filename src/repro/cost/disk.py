"""Disk-based hash-join cost model (the paper's "similar to [Bra84]").

Bratbergsengen's cost formulas count page I/Os for hash-partitioned joins
(Grace hash join).  Joining an outer of ``P_o`` pages with an inner of
``P_i`` pages with ``M`` pages of memory:

* **In-memory join** (``P_i <= M``): read both operands once —
  ``P_o + P_i`` I/Os.
* **Partitioned join**: each partitioning pass reads and writes both
  operands; the final pass reads them once.  With a fanout of ``M - 1``
  buckets per pass, ``ceil(log_{M-1}(P_i / M))`` passes are needed —
  ``(2 * passes + 1) * (P_o + P_i)`` I/Os.

On top of the I/O count, a small CPU term (same shape as the memory model,
scaled down) keeps plans with equal I/O but different result sizes ordered;
intermediate results larger than memory are charged a write-out and a
re-read by the next join.
"""

from __future__ import annotations

import math

from repro.cost.base import CostModel
from repro.utils.validation import check_positive


class DiskCostModel(CostModel):
    """Page-I/O cost of a Grace hash join plus a small CPU term."""

    name = "disk"

    def __init__(
        self,
        memory_pages: int = 64,
        tuples_per_page: float = 32.0,
        io_cost: float = 1.0,
        cpu_weight: float = 0.01,
    ) -> None:
        self.memory_pages = int(check_positive("memory_pages", memory_pages))
        if self.memory_pages < 2:
            raise ValueError("memory_pages must be at least 2 for partitioning")
        self.tuples_per_page = check_positive("tuples_per_page", tuples_per_page)
        self.io_cost = check_positive("io_cost", io_cost)
        self.cpu_weight = check_positive("cpu_weight", cpu_weight)

    def pages(self, tuples: float) -> float:
        """Pages needed to hold ``tuples`` tuples (at least one).

        Normalized to float64: ``math.ceil`` returns an arbitrary-precision
        ``int``, whose exact integer arithmetic silently diverges from the
        vectorized kernel's float64 above 2**53 — a regime where page
        counts carry no ordering information anyway (cardinalities are
        clamped long before costs matter there).
        """
        return max(1.0, float(math.ceil(tuples / self.tuples_per_page)))

    def partition_passes(self, inner_pages: float) -> int:
        """Number of partitioning passes needed for the inner operand."""
        if inner_pages <= self.memory_pages:
            return 0
        fanout = self.memory_pages - 1
        return max(1, math.ceil(math.log(inner_pages / self.memory_pages, fanout)))

    def join_cost(
        self, outer_size: float, inner_size: float, result_size: float
    ) -> float:
        outer_pages = self.pages(outer_size)
        inner_pages = self.pages(inner_size)
        passes = self.partition_passes(inner_pages)
        io = (2 * passes + 1) * (outer_pages + inner_pages)
        result_pages = self.pages(result_size)
        if result_pages > self.memory_pages:
            # Materialise the intermediate: write it out and charge the
            # re-read here (the next join's outer arrives from disk).
            io += 2 * result_pages
        cpu = self.cpu_weight * (outer_size + inner_size + result_size)
        return self.io_cost * io + cpu

    def __repr__(self) -> str:
        return (
            f"DiskCostModel(memory_pages={self.memory_pages}, "
            f"tuples_per_page={self.tuples_per_page})"
        )
