"""Calibrate cost-model constants from engine measurements ([Swa89a]).

The paper's main-memory model comes from Swami's *validated* cost model:
constants measured on a real system.  This module reproduces that
methodology against the bundled execution engine: run hash joins over a
grid of operand sizes, measure them, and least-squares fit the
``build/probe/output`` constants of
:class:`~repro.cost.memory.MainMemoryCostModel`.

The measurement function is injectable, so tests can validate the fit
against synthetic timings with known ground truth, and users can plug in
wall-clock timing of any engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cost.memory import MainMemoryCostModel
from repro.engine.operators import hash_join
from repro.engine.table import Table
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class JoinObservation:
    """One measured hash join: sizes and elapsed cost."""

    outer_size: float
    inner_size: float
    result_size: float
    measured: float


#: Default grid of (outer, inner) sizes; matches stay plentiful so the
#: output term is identifiable.
DEFAULT_GRID: tuple[tuple[int, int], ...] = (
    (500, 500),
    (2000, 500),
    (500, 2000),
    (2000, 2000),
    (4000, 1000),
    (1000, 4000),
    (4000, 4000),
    (8000, 2000),
)


def _build_table(name: str, rows: int, distinct: int, seed: int) -> Table:
    rng = derive_rng(seed, "calibration", name, rows)
    return Table.from_dict(
        name, {f"{name}_key": [rng.randrange(distinct) for _ in range(rows)]}
    )


def measure_hash_join(outer_size: int, inner_size: int, seed: int = 0) -> JoinObservation:
    """Run one engine hash join and time it (wall clock)."""
    distinct = max(2, min(outer_size, inner_size) // 4)
    outer = _build_table("o", outer_size, distinct, seed)
    inner = _build_table("i", inner_size, distinct, seed + 1)
    start = time.perf_counter()
    result = hash_join(outer, inner, [("o_key", "i_key")])
    elapsed = time.perf_counter() - start
    return JoinObservation(
        outer_size=float(outer_size),
        inner_size=float(inner_size),
        result_size=float(result.n_rows),
        measured=elapsed,
    )


def fit_constants(
    observations: Sequence[JoinObservation],
) -> tuple[float, float, float]:
    """Least-squares fit of (build, probe, output) from observations.

    Solves ``measured ≈ build*inner + probe*outer + output*result`` by
    normal equations (no numpy dependency needed at this size); constants
    are floored at a tiny positive value since the model requires
    positive coefficients.
    """
    if len(observations) < 3:
        raise ValueError("need at least three observations to fit three constants")
    # Normal equations A^T A x = A^T b for A = [inner, outer, result].
    rows = [
        (o.inner_size, o.outer_size, o.result_size, o.measured)
        for o in observations
    ]
    ata = [[0.0] * 3 for _ in range(3)]
    atb = [0.0] * 3
    for inner, outer, result, measured in rows:
        features = (inner, outer, result)
        for i in range(3):
            atb[i] += features[i] * measured
            for j in range(3):
                ata[i][j] += features[i] * features[j]
    solution = _solve_3x3(ata, atb)
    floor = 1e-12
    return tuple(max(value, floor) for value in solution)  # type: ignore[return-value]


def _solve_3x3(matrix: list[list[float]], vector: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting for a 3x3 system."""
    a = [row[:] + [v] for row, v in zip(matrix, vector)]
    n = 3
    for column in range(n):
        pivot = max(range(column, n), key=lambda r: abs(a[r][column]))
        if abs(a[pivot][column]) < 1e-30:
            raise ValueError("singular system: observations are degenerate")
        a[column], a[pivot] = a[pivot], a[column]
        for row in range(column + 1, n):
            factor = a[row][column] / a[column][column]
            for k in range(column, n + 1):
                a[row][k] -= factor * a[column][k]
    solution = [0.0] * n
    for row in range(n - 1, -1, -1):
        residual = a[row][n] - sum(
            a[row][k] * solution[k] for k in range(row + 1, n)
        )
        solution[row] = residual / a[row][row]
    return solution


def calibrate_memory_model(
    grid: Sequence[tuple[int, int]] = DEFAULT_GRID,
    measure: Callable[[int, int], JoinObservation] | None = None,
    repeats: int = 3,
    scale: float = 1e6,
) -> MainMemoryCostModel:
    """Fit a :class:`MainMemoryCostModel` from engine measurements.

    ``measure`` defaults to :func:`measure_hash_join`; each grid point is
    measured ``repeats`` times and the minimum kept (standard practice
    against scheduling noise).  ``scale`` converts seconds into
    comfortable cost units (microseconds by default) — only the *ratios*
    of the constants affect optimization decisions.
    """
    if measure is None:
        measure = measure_hash_join
    observations = []
    for outer_size, inner_size in grid:
        samples = [measure(outer_size, inner_size) for _ in range(repeats)]
        best = min(samples, key=lambda o: o.measured)
        observations.append(
            JoinObservation(
                best.outer_size,
                best.inner_size,
                best.result_size,
                best.measured * scale,
            )
        )
    build, probe, output = fit_constants(observations)
    return MainMemoryCostModel(
        build_cost=build, probe_cost=probe, output_cost=output
    )
