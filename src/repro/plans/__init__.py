"""Plan representation: join orders (permutations) and outer-linear trees.

The paper restricts the search to *outer linear join trees*: every join has
a base relation as its inner operand, so each tree is equivalent to a
permutation of the relations.  :class:`JoinOrder` is that permutation;
:class:`JoinTree` is the tree view used for display and execution.
"""

from repro.plans.join_order import JoinOrder
from repro.plans.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.plans.bushy import (
    BushyTree,
    bushy_cost,
    is_valid_bushy,
    linear_to_bushy,
    random_bushy_tree,
)
from repro.plans.validity import (
    is_valid_order,
    first_invalid_position,
    random_valid_order,
    valid_orders,
)

__all__ = [
    "JoinOrder",
    "JoinTree",
    "JoinTreeNode",
    "build_join_tree",
    "BushyTree",
    "bushy_cost",
    "is_valid_bushy",
    "linear_to_bushy",
    "random_bushy_tree",
    "is_valid_order",
    "first_invalid_position",
    "random_valid_order",
    "valid_orders",
]
