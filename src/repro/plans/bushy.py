"""Bushy join trees (the paper's §2 open problem).

The paper restricts its search to outer linear join trees "based on the
assumption that a significant fraction of the join trees with low
processing cost is to be found in the space of outer linear join trees.
The validation of this assumption is an open problem."  This module
provides the instruments to test that assumption: general (bushy) join
trees, their cost under the library's cost models, a random generator,
the classic transformation move set, and an iterative-improvement search
over the bushy space.

Sizes use the *static* estimator (a subtree's estimated size depends
only on its relation set), so a tree's cost is the sum of
``model.join_cost(left_size, right_size, result_size)`` over its
internal nodes — the same per-join pricing the linear plans get, with
the left operand in the outer role.

Terminology note: a *walk* over the bushy space is a search, not a
trace.  "Trace" in this codebase means the ``repro.obs`` structured
event log of an optimizer run (see :doc:`docs/observability.md`); the
bushy improvement search emits no such events — it is an experimental
instrument outside the traced optimizer stack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.catalog.join_graph import JoinGraph
from repro.cost.base import CostModel
from repro.cost.cardinality import combined_selectivity
from repro.plans.join_order import JoinOrder


@dataclass(frozen=True)
class BushyTree:
    """A binary join tree; leaves are relation indices.

    ``left``/``right`` are ``None`` on leaves (then ``relation`` is set).
    Trees are immutable; transformations build new trees sharing
    untouched subtrees.
    """

    relation: int | None = None
    left: "BushyTree | None" = None
    right: "BushyTree | None" = None

    def __post_init__(self) -> None:
        if (self.relation is None) == (self.left is None):
            raise ValueError("a node is either a leaf or has two children")
        if (self.left is None) != (self.right is None):
            raise ValueError("internal nodes need both children")

    @property
    def is_leaf(self) -> bool:
        return self.relation is not None

    @property
    def relations(self) -> frozenset[int]:
        if self.is_leaf:
            return frozenset((self.relation,))
        return self.left.relations | self.right.relations

    def leaves(self) -> Iterator[int]:
        if self.is_leaf:
            yield self.relation
        else:
            yield from self.left.leaves()
            yield from self.right.leaves()

    def internal_nodes(self) -> Iterator["BushyTree"]:
        """Every internal node, parents before children."""
        if not self.is_leaf:
            yield self
            yield from self.left.internal_nodes()
            yield from self.right.internal_nodes()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def is_left_deep(self) -> bool:
        """True when every right child is a leaf (outer linear shape)."""
        if self.is_leaf:
            return True
        return self.right.is_leaf and self.left.is_left_deep()

    def render(self, graph: JoinGraph | None = None) -> str:
        if self.is_leaf:
            if graph is None:
                return f"R{self.relation}"
            return graph.relation(self.relation).name
        return f"({self.left.render(graph)} |><| {self.right.render(graph)})"


def leaf(relation: int) -> BushyTree:
    return BushyTree(relation=relation)


def join(left_tree: BushyTree, right_tree: BushyTree) -> BushyTree:
    return BushyTree(left=left_tree, right=right_tree)


def linear_to_bushy(order: JoinOrder) -> BushyTree:
    """The left-deep tree equivalent to an outer-linear order."""
    tree = leaf(order[0])
    for position in range(1, len(order)):
        tree = join(tree, leaf(order[position]))
    return tree


def is_valid_bushy(tree: BushyTree, graph: JoinGraph) -> bool:
    """No internal node is a cross product (within a connected graph)."""
    for node in tree.internal_nodes():
        left_set = node.left.relations
        crossing = any(
            graph.has_edge(a, b)
            for b in node.right.relations
            for a in left_set
        )
        if not crossing:
            return False
    return True


def _crossing_predicates(graph, left_set, right_set):
    predicates = []
    for vertex in right_set:
        for neighbor, predicate in graph.adjacency(vertex).items():
            if neighbor in left_set:
                predicates.append(predicate)
    return predicates


def tree_sizes(tree: BushyTree, graph: JoinGraph) -> dict[BushyTree, float]:
    """Static estimated size of every subtree (keyed by node identity)."""
    sizes: dict[int, float] = {}

    def visit(node: BushyTree) -> float:
        if node.is_leaf:
            size = graph.cardinality(node.relation)
        else:
            left_size = visit(node.left)
            right_size = visit(node.right)
            predicates = _crossing_predicates(
                graph, node.left.relations, node.right.relations
            )
            size = left_size * right_size * combined_selectivity(predicates)
        sizes[id(node)] = size
        return size

    visit(tree)
    return {node: sizes[id(node)] for node in _all_nodes(tree)}


def _all_nodes(tree: BushyTree) -> Iterator[BushyTree]:
    yield tree
    if not tree.is_leaf:
        yield from _all_nodes(tree.left)
        yield from _all_nodes(tree.right)


def bushy_cost(tree: BushyTree, graph: JoinGraph, model: CostModel) -> float:
    """Total cost of a bushy tree under ``model`` (static sizes)."""

    def visit(node: BushyTree) -> tuple[float, float]:
        if node.is_leaf:
            return graph.cardinality(node.relation), 0.0
        left_size, left_cost = visit(node.left)
        right_size, right_cost = visit(node.right)
        predicates = _crossing_predicates(
            graph, node.left.relations, node.right.relations
        )
        result = left_size * right_size * combined_selectivity(predicates)
        cost = (
            left_cost
            + right_cost
            + model.join_cost(left_size, right_size, result)
        )
        return result, cost

    return visit(tree)[1]


def random_bushy_tree(graph: JoinGraph, rng: random.Random) -> BushyTree:
    """A random valid bushy tree, by random connected forest merging.

    Maintains a forest of subtrees (initially the leaves) and repeatedly
    merges a random pair of subtrees linked by at least one join
    predicate, so the result never contains a cross product.  Requires a
    connected graph.
    """
    if not graph.is_connected:
        raise ValueError("random_bushy_tree requires a connected graph")
    forest: list[BushyTree] = [leaf(i) for i in range(graph.n_relations)]
    component_of = list(range(graph.n_relations))

    def mergeable() -> list[tuple[int, int]]:
        pairs = set()
        for predicate in graph.predicates:
            a = component_of[predicate.left]
            b = component_of[predicate.right]
            if a != b:
                pairs.add((min(a, b), max(a, b)))
        return sorted(pairs)

    while len({c for c in component_of}) > 1:
        a, b = rng.choice(mergeable())
        tree_a = forest[a]
        tree_b = forest[b]
        if rng.random() < 0.5:
            tree_a, tree_b = tree_b, tree_a
        merged = join(tree_a, tree_b)
        forest[a] = merged
        for index, component in enumerate(component_of):
            if component == b:
                component_of[index] = a
    return forest[component_of[0]]
