"""Outer-linear join trees.

A join order maps one-to-one onto an *outer linear join tree*: the first
relation is the leftmost leaf; each subsequent relation is the inner (right)
operand of the next join, whose outer (left) operand is the tree built so
far.  The tree view carries the estimated cardinality of every intermediate
result and is what the execution engine interprets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.plans.join_order import JoinOrder


@dataclass(frozen=True)
class JoinTreeNode:
    """One join in an outer-linear tree.

    ``inner`` is the base relation joined at this step; ``predicates`` are
    the join predicates connecting it to the outer side (empty for a cross
    product); ``outer_cardinality`` / ``result_cardinality`` are the
    estimated sizes of the operand and the produced intermediate.
    """

    inner: int
    predicates: tuple[JoinPredicate, ...]
    outer_cardinality: float
    inner_cardinality: float
    result_cardinality: float

    @property
    def is_cross_product(self) -> bool:
        return not self.predicates


@dataclass(frozen=True)
class JoinTree:
    """An outer-linear join tree over a join graph."""

    graph: JoinGraph
    order: JoinOrder
    nodes: tuple[JoinTreeNode, ...]

    @property
    def result_cardinality(self) -> float:
        """Estimated cardinality of the final result."""
        if not self.nodes:
            return self.graph.cardinality(self.order[0])
        return self.nodes[-1].result_cardinality

    @property
    def n_cross_products(self) -> int:
        return sum(1 for node in self.nodes if node.is_cross_product)

    def intermediate_cardinalities(self) -> list[float]:
        """Estimated sizes of all intermediate results, join by join."""
        return [node.result_cardinality for node in self.nodes]

    def __str__(self) -> str:
        names = [self.graph.relation(i).name for i in self.order]
        text = names[0]
        for name, node in zip(names[1:], self.nodes):
            operator = "x" if node.is_cross_product else "|><|"
            text = f"({text} {operator} {name})"
        return text

    def explain(self) -> str:
        """A multi-line EXPLAIN-style rendering with estimated sizes."""
        lines = [f"JoinTree over {self.graph}"]
        first = self.order[0]
        lines.append(
            f"  scan {self.graph.relation(first).name}"
            f"  (est. {self.graph.cardinality(first):.1f} tuples)"
        )
        for node in self.nodes:
            operator = "cross product" if node.is_cross_product else "hash join"
            lines.append(
                f"  {operator} with {self.graph.relation(node.inner).name}"
                f"  (inner {node.inner_cardinality:.1f}, "
                f"outer {node.outer_cardinality:.1f} "
                f"-> {node.result_cardinality:.1f} tuples)"
            )
        return "\n".join(lines)


def build_join_tree(order: JoinOrder, graph: JoinGraph) -> JoinTree:
    """Materialise the outer-linear tree for ``order``.

    Intermediate cardinalities come from the propagating estimator
    (:class:`~repro.cost.cardinality.PlanEstimator`), matching exactly
    what the cost models price.
    """
    from repro.cost.cardinality import walk_plan

    nodes = tuple(
        JoinTreeNode(
            inner=step.inner,
            predicates=step.predicates,
            outer_cardinality=step.outer_size,
            inner_cardinality=step.inner_size,
            result_cardinality=step.result_size,
        )
        for step in walk_plan(order, graph)
    )
    return JoinTree(graph=graph, order=order, nodes=nodes)
