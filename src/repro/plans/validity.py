"""Validity of join orders: no cross products within a component.

A join order is *valid* when every relation after the first joins (via at
least one predicate) with some relation earlier in the order.  For join
graphs with several connected components the paper postpones cross products
to the very end; a valid order for such a graph lists each component
contiguously, and validity is judged within each component's segment.
"""

from __future__ import annotations

import random
from itertools import permutations
from typing import Iterator

from repro.catalog.join_graph import JoinGraph
from repro.plans.join_order import JoinOrder


def first_invalid_position(order: JoinOrder, graph: JoinGraph) -> int | None:
    """Position of the first relation introducing a premature cross product.

    Returns ``None`` for a valid order.  A relation at position ``p`` is
    acceptable if it joins with an earlier relation, or if it is the first
    relation of its connected component *and* its component's predecessors
    in the order are all from fully placed components (which is implied by
    every earlier relation of its component appearing before it — for the
    common single-component case this reduces to plain connectivity).
    """
    positions = order.positions
    if len(positions) != graph.n_relations:
        raise ValueError(
            f"order over {len(positions)} relations does not match graph "
            f"with {graph.n_relations}"
        )
    if len(graph.components) == 1:
        # Fast path for the common connected case: each relation after the
        # first must be adjacent to the already placed set.
        seen = {positions[0]}
        for position in range(1, len(positions)):
            relation = positions[position]
            if seen.isdisjoint(graph.adjacency(relation)):
                return position
            seen.add(relation)
        return None
    component_of = {}
    for component_id, component in enumerate(graph.components):
        for vertex in component:
            component_of[vertex] = component_id
    seen: set[int] = set()
    started: set[int] = set()
    open_component: int | None = None
    remaining_in_open = 0
    for position, relation in enumerate(positions):
        component_id = component_of[relation]
        if component_id in started:
            # Must continue the currently open component and connect to it.
            if component_id != open_component:
                return position
            if not any(n in seen for n in graph.neighbors(relation)):
                return position
            remaining_in_open -= 1
            if remaining_in_open == 0:
                open_component = None
        else:
            # Starting a new component is only legal when none is open.
            if open_component is not None:
                return position
            started.add(component_id)
            remaining_in_open = len(graph.components[component_id]) - 1
            open_component = component_id if remaining_in_open else None
        seen.add(relation)
    return None


def is_valid_order(order: JoinOrder, graph: JoinGraph) -> bool:
    """True when the order introduces no premature cross product."""
    return first_invalid_position(order, graph) is None


def random_valid_order(graph: JoinGraph, rng: random.Random) -> JoinOrder:
    """Sample a uniform-ish random valid order (the random state generator).

    Within each component the order is grown by repeatedly picking a random
    relation among those adjacent to the already placed set, matching the
    generator the paper's II/SA use for start states.  Components are
    emitted in a random order, each contiguously.
    """
    positions: list[int] = []
    components = list(graph.components)
    rng.shuffle(components)
    for component in components:
        component_list = list(component)
        first = rng.choice(component_list)
        placed = {first}
        positions.append(first)
        frontier = {n for n in graph.neighbors(first) if n in component}
        while len(placed) < len(component_list):
            candidates = sorted(frontier - placed)
            nxt = rng.choice(candidates)
            placed.add(nxt)
            positions.append(nxt)
            frontier.update(
                n for n in graph.neighbors(nxt) if n in component and n not in placed
            )
    return JoinOrder(positions)


def valid_orders(graph: JoinGraph) -> Iterator[JoinOrder]:
    """Enumerate every valid order (exponential — tests and tiny graphs only)."""
    for permutation in permutations(range(graph.n_relations)):
        order = JoinOrder(permutation)
        if is_valid_order(order, graph):
            yield order


def count_valid_orders(graph: JoinGraph) -> int:
    """Number of valid orders (exponential — tests and tiny graphs only)."""
    return sum(1 for _ in valid_orders(graph))
