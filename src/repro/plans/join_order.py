"""Join orders: immutable permutations of relation indices.

A :class:`JoinOrder` is the solution representation for the whole library.
It is a thin immutable wrapper around a tuple of relation indices with the
perturbation primitives (swap, insert) the move set is built from.
"""

from __future__ import annotations

from typing import Iterator, Sequence


class JoinOrder:
    """An immutable permutation of the relation indices of a join graph.

    Position 0 is the first (leftmost, outermost) relation; each subsequent
    relation is the inner operand of the next join.
    """

    __slots__ = ("_positions", "_hash")

    def __init__(self, positions: Sequence[int]) -> None:
        self._positions = tuple(positions)
        if len(set(self._positions)) != len(self._positions):
            raise ValueError(f"join order has duplicates: {self._positions}")
        self._hash = hash(self._positions)

    @property
    def positions(self) -> tuple[int, ...]:
        return self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def __iter__(self) -> Iterator[int]:
        return iter(self._positions)

    def __getitem__(self, index: int) -> int:
        return self._positions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinOrder):
            return NotImplemented
        return self._positions == other._positions

    def __hash__(self) -> int:
        return self._hash

    def index(self, relation: int) -> int:
        """Position of ``relation`` within the order."""
        return self._positions.index(relation)

    # ------------------------------------------------------------------
    # Perturbations (each returns a new JoinOrder)
    # ------------------------------------------------------------------

    def swap(self, i: int, j: int) -> "JoinOrder":
        """Exchange the relations at positions ``i`` and ``j``."""
        positions = list(self._positions)
        positions[i], positions[j] = positions[j], positions[i]
        return JoinOrder(positions)

    def insert(self, source: int, target: int) -> "JoinOrder":
        """Remove the relation at ``source`` and reinsert it at ``target``."""
        positions = list(self._positions)
        relation = positions.pop(source)
        positions.insert(target, relation)
        return JoinOrder(positions)

    def replace_segment(self, start: int, segment: Sequence[int]) -> "JoinOrder":
        """Return a copy with ``segment`` written at positions ``start..``.

        The segment must be a permutation of the relations currently in that
        window (checked by the duplicate guard in the constructor).
        """
        positions = list(self._positions)
        positions[start : start + len(segment)] = list(segment)
        return JoinOrder(positions)

    def prefix(self, length: int) -> tuple[int, ...]:
        """The first ``length`` relations."""
        return self._positions[:length]

    def __repr__(self) -> str:
        return f"JoinOrder({list(self._positions)})"

    def __str__(self) -> str:
        return "(" + " ".join(str(p) for p in self._positions) + ")"
